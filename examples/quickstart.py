#!/usr/bin/env python3
"""Quickstart: define a graph, write GEDs, validate, chase, reason.

Walks through the core API in five steps:

1. build a property graph (the paper's two-capitals inconsistency);
2. write a GED and find its violations;
3. run the chase to merge duplicate entities via a GKey;
4. check satisfiability of a rule set (Theorem 2);
5. check implication and synthesize an axiom-system proof (Theorems 4/7).

Run:  python examples/quickstart.py
"""

from repro import GED, Graph, Pattern, VariableLiteral, make_gkey
from repro.axioms import ProofChecker, prove
from repro.chase import chase
from repro.reasoning import build_model, find_violations, implies, is_satisfiable


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A property graph: schemaless nodes with labels and attributes.
    # ------------------------------------------------------------------
    g = Graph()
    g.add_node("finland", "country", name="Finland")
    g.add_node("helsinki", "city", name="Helsinki")
    g.add_node("spb", "city", name="Saint Petersburg")
    g.add_edge("finland", "capital", "helsinki")
    g.add_edge("finland", "capital", "spb")
    print(f"graph: {g.num_nodes} nodes, {g.num_edges} edges")

    # ------------------------------------------------------------------
    # 2. A GED (the paper's ϕ2): a country's capitals share one name.
    # ------------------------------------------------------------------
    q2 = Pattern(
        {"x": "country", "y": "city", "z": "city"},
        [("x", "capital", "y"), ("x", "capital", "z")],
    )
    phi2 = GED(q2, [], [VariableLiteral("y", "name", "z", "name")], name="one-capital-name")
    violations = find_violations(g, [phi2])
    print(f"\nϕ2 violations: {len(violations)}")
    for violation in violations:
        print(f"  {violation}")

    # ------------------------------------------------------------------
    # 3. Entity resolution via the chase: a GKey identifies duplicate
    #    city entities by name, and the chase merges them.
    # ------------------------------------------------------------------
    dup = Graph()
    dup.add_node("c1", "city", name="Helsinki")
    dup.add_node("c2", "city", name="Helsinki")
    city_key = make_gkey(Pattern({"x": "city"}), "x", value_attrs={"x": ["name"]})
    result = chase(dup, [city_key])
    print(f"\nchase valid: {result.consistent}; "
          f"nodes after coercion: {result.graph.num_nodes} (was 2)")

    # ------------------------------------------------------------------
    # 4. Satisfiability (Theorem 2): do the rules make sense together?
    # ------------------------------------------------------------------
    sigma = [phi2, city_key]
    print(f"\nΣ satisfiable: {is_satisfiable(sigma)}")
    model = build_model(sigma)
    print(f"witness model: {model.num_nodes} nodes, {model.num_edges} edges")

    # ------------------------------------------------------------------
    # 5. Implication (Theorem 4) + a machine-checked proof (Theorem 7).
    # ------------------------------------------------------------------
    flipped = GED(q2, [], [VariableLiteral("z", "name", "y", "name")])
    print(f"\nΣ implies the symmetric rule: {implies(sigma, flipped)}")
    proof = prove(sigma, flipped)
    ProofChecker(sigma).check_concludes(proof, flipped)
    print(f"synthesized A_GED proof with {len(proof)} lines, "
          f"rules used: {sorted(proof.rules_used())}")
    print("\nfirst lines of the proof:")
    for line in proof.lines[:4]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
