#!/usr/bin/env python3
"""The axiom system A_GED at work (Section 6, Table 2, Example 8).

Derives Armstrong-style rules (augmentation, transitivity) from the
six primitive rules, synthesizes a complete proof for the paper's
Example 7 implication, and walks the independence witnesses.

Run:  python examples/axiom_proofs.py
"""

from repro import paper
from repro.axioms import (
    Proof,
    ProofChecker,
    RULES,
    augmentation,
    premise,
    prove,
    transitivity,
    witnesses,
)
from repro.deps import ConstantLiteral, GED
from repro.patterns import Pattern
from repro.reasoning import implies


def main() -> None:
    print("the six rules of A_GED (Table 2):")
    for name, statement in RULES.items():
        print(f"  {name}: {statement}")

    # ------------------------------------------------------------------
    # Example 8(b): augmentation, derived from the primitives.
    # ------------------------------------------------------------------
    q = Pattern({"x": "a"})
    rule = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "B", 2)])
    extra = [ConstantLiteral("x", "C", 3)]
    proof = Proof(premises=[rule])
    src = premise(proof, rule)
    augmentation(proof, src, extra)
    ProofChecker([rule]).check(proof)
    print(f"\naugmentation X→Y ⊢ XZ→YZ: {len(proof)} primitive lines, "
          f"rules {sorted(proof.rules_used())}")
    print(f"  conclusion: {proof.conclusion}")

    # ------------------------------------------------------------------
    # Example 8(c): transitivity.
    # ------------------------------------------------------------------
    xy = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "B", 2)])
    yz = GED(q, [ConstantLiteral("x", "B", 2)], [ConstantLiteral("x", "C", 3)])
    proof = Proof(premises=[xy, yz])
    l1, l2 = premise(proof, xy), premise(proof, yz)
    transitivity(proof, l1, l2)
    ProofChecker([xy, yz]).check(proof)
    print(f"\ntransitivity X→Y, Y→Z ⊢ X→Z: {len(proof)} primitive lines")
    print(f"  conclusion: {proof.conclusion}")

    # ------------------------------------------------------------------
    # Example 7: a full synthesized proof from the chase trace.
    # ------------------------------------------------------------------
    sigma, phi = paper.example7_sigma(), paper.example7_phi()
    assert implies(sigma, phi)
    proof = prove(sigma, phi)
    ProofChecker(sigma).check_concludes(proof, phi)
    print(f"\nExample 7: Σ |= ϕ — synthesized proof, {len(proof)} lines, "
          f"rules {sorted(proof.rules_used())}")
    print("  last three lines:")
    for line in proof.lines[-3:]:
        print(f"    {line}")

    # ------------------------------------------------------------------
    # Independence (Theorem 7 part 3): one witness per rule.
    # ------------------------------------------------------------------
    print("\nindependence witnesses (each proof must use its rule):")
    for w in witnesses():
        p = prove(list(w.sigma), w.phi)
        ProofChecker(list(w.sigma)).check_concludes(p, w.phi)
        used = w.rule in p.rules_used()
        print(f"  {w.rule}: proof of {len(p)} lines, uses {w.rule}: {used}")
        assert used


if __name__ == "__main__":
    main()
