#!/usr/bin/env python3
"""Relational FDs / CFDs / EGDs as GEDs (Section 3, special case (5)).

Represents relation tuples as graph nodes and shows that the classical
relational dependencies become GEDs: violations found by relational
semantics and by GED validation coincide.

Run:  python examples/relational_dependencies.py
"""

from repro.deps import CFD, EGD, FD
from repro.graph import Relation, relations_to_graph
from repro.reasoning import find_violations, validates


def main() -> None:
    employees = Relation("emp", ["name", "dept", "floor", "country", "area_code"])
    rows = [
        ["ada", "cs", 3, "uk", "131"],
        ["bob", "cs", 3, "uk", "131"],
        ["eve", "ee", 2, "uk", "141"],
        ["mal", "cs", 4, "uk", "131"],   # violates dept -> floor
        ["sam", "ee", 2, "nl", "141"],   # violates the CFD below
    ]
    for row in rows:
        employees.insert(row)
    graph = relations_to_graph([employees])
    print(f"relation emp: {len(employees)} tuples -> graph with {graph.num_nodes} nodes")

    # -- FD: dept -> floor ------------------------------------------------
    fd = FD("emp", ["dept"], ["floor"])
    encoded = fd.encode()
    print(f"\nFD {fd}")
    print(f"  relational check: {fd.holds_on(employees)}")
    print(f"  GED check:        {validates(graph, encoded)}")
    outcome = validates(graph, encoded)
    assert fd.holds_on(employees) == outcome
    assert outcome is False
    culprits = {
        v.assignment["t1"] for v in find_violations(graph, encoded)
    } | {v.assignment["t2"] for v in find_violations(graph, encoded)}
    print(f"  violating tuples: {sorted(culprits)}")

    # -- CFD: area_code 141 -> country uk (constants in the tableau) ------
    cfd = CFD("emp", {"area_code": "141"}, {"country": "uk"})
    print("\nCFD emp(area_code=141 -> country=uk)")
    print(f"  relational check: {cfd.holds_on(employees)}")
    print(f"  GED check:        {validates(graph, cfd.encode())}")
    outcome = validates(graph, cfd.encode())
    assert cfd.holds_on(employees) == outcome
    assert outcome is False

    # -- EGD: same dept joins imply equal floors (FD as an EGD) -----------
    egd = EGD(
        [("emp", {"dept": "d", "floor": "f1"}), ("emp", {"dept": "d", "floor": "f2"})],
        ("f1", "f2"),
    )
    print("\nEGD emp(d, f1) ∧ emp(d, f2) -> f1 = f2")
    print(f"  relational check: {egd.holds_on({'emp': employees})}")
    print(f"  GED check:        {validates(graph, egd.encode())}")
    outcome = validates(graph, egd.encode())
    assert egd.holds_on({"emp": employees}) == outcome
    assert outcome is False

    # -- a clean instance passes everywhere --------------------------------
    clean = Relation("emp", ["name", "dept", "floor", "country", "area_code"])
    for row in rows[:3]:
        clean.insert(row)
    clean_graph = relations_to_graph([clean])
    assert fd.holds_on(clean) and validates(clean_graph, fd.encode())
    assert cfd.holds_on(clean) and validates(clean_graph, cfd.encode())
    print("\nclean 3-tuple instance satisfies FD, CFD and EGD under both semantics")


if __name__ == "__main__":
    main()
