"""Trace contexts: propagation, assembly, and the rendered tree."""

import json

import pytest

from repro.telemetry import metrics, spans, trace
from repro.telemetry.report import format_trace


@pytest.fixture(autouse=True)
def _clean_telemetry():
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    yield
    metrics.disable()
    metrics.reset()
    spans.clear_spans()


class TestTraceContext:
    def test_round_trips_through_dict(self):
        ctx = trace.TraceContext("abc123", "dead-beef:7")
        assert trace.TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_parent_ref_omitted_when_absent(self):
        assert trace.TraceContext("abc123").to_dict() == {"trace_id": "abc123"}

    def test_junk_payloads_decode_to_none(self):
        # A malformed trace field from a foreign client must never
        # fail the update frame that carries it.
        for junk in (None, 42, "str", [], {}, {"trace_id": ""}, {"trace_id": 9}):
            assert trace.TraceContext.from_dict(junk) is None

    def test_non_string_parent_ref_is_dropped_not_fatal(self):
        ctx = trace.TraceContext.from_dict({"trace_id": "t", "parent_ref": 3})
        assert ctx == trace.TraceContext("t", None)

    def test_context_is_picklable(self):
        import pickle

        ctx = trace.TraceContext("t1", "p:1")
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestPropagation:
    def test_no_active_trace_means_no_refs_on_spans(self):
        metrics.enable()
        with spans.span("plain"):
            pass
        (record,) = spans.drain_spans()
        assert "trace_id" not in record and "ref" not in record

    def test_spans_under_tracing_carry_linked_refs(self):
        metrics.enable()
        ctx = trace.start_trace()
        with trace.tracing(ctx):
            with spans.span("outer"):
                with spans.span("inner"):
                    pass
        inner, outer = spans.drain_spans()
        assert outer["trace_id"] == inner["trace_id"] == ctx.trace_id
        assert inner["parent_ref"] == outer["ref"]
        assert outer["ref"].startswith(trace.process_tag() + ":")
        assert "parent_ref" not in outer  # root context has no parent

    def test_propagation_context_points_at_innermost_open_span(self):
        metrics.enable()
        with trace.tracing(trace.start_trace()):
            with spans.span("dispatcher") as dispatcher:
                shipped = trace.propagation_context()
        assert shipped.parent_ref == trace.make_ref(dispatcher.span_id)

    def test_propagation_context_none_outside_a_trace(self):
        assert trace.propagation_context() is None

    def test_tracing_none_is_a_noop(self):
        with trace.tracing(None) as installed:
            assert installed is None
            assert trace.current_trace() is None

    def test_tracing_restores_previous_context(self):
        first = trace.start_trace()
        second = trace.start_trace()
        with trace.tracing(first):
            with trace.tracing(second):
                assert trace.current_trace() is second
            assert trace.current_trace() is first
        assert trace.current_trace() is None

    def test_record_span_hangs_off_shipped_context(self):
        metrics.enable()
        ctx = trace.TraceContext("t1", "remote:5")
        spans.record_span("serve.push", 0.002, trace=ctx, frame="delta")
        (record,) = spans.drain_spans()
        assert record["trace_id"] == "t1"
        assert record["parent_ref"] == "remote:5"
        assert record["attrs"] == {"frame": "delta"}

    def test_remint_changes_process_tag(self):
        # Forked pool workers re-mint via os.register_at_fork; the ref
        # prefix must change or worker refs could collide with the
        # coordinator's inside one trace.
        before = trace.process_tag()
        trace._remint_proc_tag()
        after = trace.process_tag()
        assert before != after
        assert trace.ref_process(trace.make_ref(9)) == after


class TestAssembly:
    def _span(self, name, ref, parent_ref=None, trace_id="t1", ts=0.0, dur=0.001):
        record = {
            "type": "span",
            "name": name,
            "span_id": 1,
            "parent_id": None,
            "ref": ref,
            "trace_id": trace_id,
            "ts": ts,
            "duration_s": dur,
        }
        if parent_ref is not None:
            record["parent_ref"] = parent_ref
        return record

    def test_rebuilds_cross_process_tree(self):
        records = [
            self._span("serve.batch", "aa:1", ts=1.0, dur=0.01),
            self._span("serve.validate", "aa:2", "aa:1", ts=1.001),
            self._span("stream.shard", "bb:1", "aa:1", ts=1.002),
        ]
        forests = trace.assemble_traces(records)
        (root,) = forests["t1"]
        assert root.name == "serve.batch"
        assert [child.name for child in root.children] == [
            "serve.validate",
            "stream.shard",
        ]

    def test_orphan_parent_ref_becomes_root_not_lost(self):
        # The parent was dropped by the ring buffer or its process
        # died: the child must stay diagnosable.
        forests = trace.assemble_traces(
            [self._span("stream.shard", "bb:1", "gone:9")]
        )
        assert [r.name for r in forests["t1"]] == ["stream.shard"]

    def test_untraced_and_non_span_records_are_skipped(self):
        forests = trace.assemble_traces(
            [
                {"type": "metrics", "snapshot": {}},
                {"type": "span", "name": "local", "ts": 0.0},
                {"type": "slow_plan", "name": "x", "trace_id": "t1"},
            ]
        )
        assert forests == {}

    def test_self_seconds_subtracts_direct_children(self):
        records = [
            self._span("parent", "aa:1", ts=1.0, dur=0.010),
            self._span("child", "aa:2", "aa:1", ts=1.001, dur=0.004),
        ]
        (root,) = trace.assemble_traces(records)["t1"]
        assert root.self_seconds() == pytest.approx(0.006)


class TestFormatTrace:
    def test_marks_foreign_process_and_attributes_self_time(self):
        records = [
            {
                "type": "span", "name": "serve.batch", "ref": "aa:1",
                "trace_id": "t1", "ts": 1.0, "duration_s": 0.01,
                "attrs": {"size": 2},
            },
            {
                "type": "span", "name": "stream.shard", "ref": "bb:1",
                "parent_ref": "aa:1", "trace_id": "t1", "ts": 1.001,
                "duration_s": 0.004,
            },
        ]
        (roots,) = trace.assemble_traces(records).values()
        text = format_trace("t1", roots)
        assert "trace t1" in text
        assert "serve.batch" in text and "[size=2]" in text
        assert "@bb" in text  # the cross-process marker
        assert "where the milliseconds went" in text

    def test_includes_slow_plan_blocks(self):
        records = [
            {
                "type": "span", "name": "serve.batch", "ref": "aa:1",
                "trace_id": "t1", "ts": 1.0, "duration_s": 0.01,
            }
        ]
        (roots,) = trace.assemble_traces(records).values()
        plan = {
            "type": "slow_plan", "name": "resident-age", "seconds": 0.005,
            "explain": "step 1: scan c", "trace_id": "t1",
        }
        text = format_trace("t1", roots, slow_plans=[plan])
        assert "slow plan: resident-age" in text
        assert "step 1: scan c" in text


class TestWorkerPiggyback:
    def test_collected_snapshot_ships_spans_and_coordinator_absorbs(self):
        metrics.enable()
        ctx = trace.TraceContext("t1", "coord:3")
        with metrics.collecting() as registry:
            with trace.tracing(ctx), spans.span("engine.batch", units=2):
                metrics.sink().incr("plan.compiles")
        snapshot = spans.collected_snapshot(registry)
        assert [r["name"] for r in snapshot["spans"]] == ["engine.batch"]
        assert snapshot["spans"][0]["parent_ref"] == "coord:3"

        # The coordinator side: merge ignores the extra key, absorb
        # lands the spans in the local buffer.
        metrics.sink().merge(snapshot)
        spans.absorb_remote(snapshot)
        assert metrics.snapshot()["counters"]["plan.compiles"] == 1
        assert [r["name"] for r in spans.drain_spans()] == ["engine.batch"]

    def test_worker_snapshot_round_trips_through_json(self):
        # The piggyback channel must survive pickling and the NDJSON
        # export path without loss.
        metrics.enable()
        with metrics.collecting() as registry:
            with trace.tracing(trace.TraceContext("t1")), spans.span("w"):
                pass
        snapshot = spans.collected_snapshot(registry)
        restored = json.loads(json.dumps(snapshot))
        assert restored["spans"][0]["trace_id"] == "t1"
