"""Incremental NDJSON export: per-batch flush leaves usable traces."""

import json

import pytest

from repro.telemetry import metrics, slowlog, spans


@pytest.fixture(autouse=True)
def _clean_export():
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    slowlog.clear_slow_plans()
    yield
    spans.close_export()  # never leak an open handle across tests
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    slowlog.clear_slow_plans()


def _lines(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line]


class TestIncrementalExport:
    def test_flush_appends_per_batch_and_close_adds_metrics(self, tmp_path):
        metrics.enable()
        path = tmp_path / "run.ndjson"
        spans.open_export(str(path))

        with spans.span("batch-1"):
            pass
        assert spans.flush_export() == 1
        # The file is already usable mid-run — this is the property a
        # killed server depends on.
        assert [r["name"] for r in _lines(path)] == ["batch-1"]

        with spans.span("batch-2"):
            pass
        assert spans.flush_export() == 1
        total = spans.close_export()
        records = _lines(path)
        assert total == 3
        assert [r.get("name") for r in records[:2]] == ["batch-1", "batch-2"]
        assert records[-1]["type"] == "metrics"

    def test_flush_without_open_export_is_a_noop(self):
        metrics.enable()
        with spans.span("x"):
            pass
        assert spans.flush_export() == 0
        # the span stays buffered for a later one-shot export
        assert len(spans.drain_spans()) == 1

    def test_close_without_open_export_returns_zero(self):
        assert spans.close_export() == 0

    def test_flush_carries_slow_plans_too(self, tmp_path):
        metrics.enable()
        path = tmp_path / "run.ndjson"
        spans.open_export(str(path))
        slowlog.record_slow_plan("ged", 0.02, "explain text")
        assert spans.flush_export() == 1
        spans.close_export()
        types = [r["type"] for r in _lines(path)]
        assert types == ["slow_plan", "metrics"]

    def test_reopen_truncates(self, tmp_path):
        metrics.enable()
        path = tmp_path / "run.ndjson"
        spans.open_export(str(path))
        with spans.span("old"):
            pass
        spans.flush_export()
        spans.close_export()

        spans.open_export(str(path))
        with spans.span("new"):
            pass
        spans.flush_export()
        spans.close_export()
        names = [r.get("name") for r in _lines(path) if r["type"] == "span"]
        assert names == ["new"]

    def test_one_shot_export_still_works(self, tmp_path):
        # PR 6's export_ndjson contract: spans then one metrics line.
        metrics.enable()
        with spans.span("only"):
            pass
        path = tmp_path / "oneshot.ndjson"
        assert spans.export_ndjson(str(path)) == 2
        records = _lines(path)
        assert records[0]["name"] == "only"
        assert records[1]["type"] == "metrics"
