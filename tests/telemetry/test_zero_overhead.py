"""The observability contract: telemetry never perturbs results.

Every validation backend — and the streaming ledger — must produce a
byte-identical violation stream with telemetry enabled and disabled,
with and without an attached index.  Telemetry counts the work; it must
never change it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.engine import shutdown_pools
from repro.graph.generators import random_labeled_graph
from repro.graph.update import GraphUpdate
from repro.indexing import attach_index, detach_index
from repro.parallel import parallel_find_violations
from repro.streaming import ViolationLedger
from repro.workloads import bounded_rule_set, validation_workload

BACKENDS = ("serial", "thread", "process", "engine", "fragment")


@pytest.fixture(autouse=True)
def _clean_telemetry_and_pools():
    telemetry.disable()
    telemetry.reset()
    telemetry.clear_spans()
    yield
    shutdown_pools()
    telemetry.disable()
    telemetry.reset()
    telemetry.clear_spans()


def _run(graph, sigma, backend, enabled):
    if enabled:
        telemetry.reset()
        telemetry.enable()
    try:
        return parallel_find_violations(graph, sigma, workers=3, backend=backend)
    finally:
        telemetry.disable()


class TestValidationBackends:
    @pytest.mark.parametrize("indexed", [False, True])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_enabled_equals_disabled(self, backend, indexed):
        graph = validation_workload(120, rng=13)
        if indexed:
            attach_index(graph)
        else:
            detach_index(graph)
        sigma = bounded_rule_set()
        off = _run(graph, sigma, backend, enabled=False)
        on = _run(graph, sigma, backend, enabled=True)
        assert on.violations == off.violations, f"{backend} perturbed by telemetry"
        # and the profiled run did actually count the matching work
        assert telemetry.snapshot()["counters"].get("plan.frames_expanded", 0) > 0

    def test_fragment_backend_attributes_frames_per_fragment(self):
        graph = validation_workload(120, rng=13)
        detach_index(graph)
        sigma = bounded_rule_set()
        _run(graph, sigma, "fragment", enabled=True)
        counters = telemetry.snapshot()["counters"]
        per_fragment = {
            name: value
            for name, value in counters.items()
            if name.startswith("fragment.frames_expanded.")
        }
        assert per_fragment, "no per-fragment frame attribution collected"
        assert counters.get("fragment.pivots.local", 0) > 0


class TestStreamingLedger:
    def _stream(self, enabled):
        graph = validation_workload(60, rng=7)
        detach_index(graph)
        sigma = bounded_rule_set()
        update = GraphUpdate(
            nodes=(("telem_new", "user", (("score", 1),)),),
            edges=(("telem_new", "follows", sorted(graph.node_ids)[0]),),
        )
        if enabled:
            telemetry.reset()
            telemetry.enable()
        try:
            with ViolationLedger(graph, sigma) as ledger:
                ledger.bootstrap()
                delta = ledger.refresh(update)
                return delta.to_dict(), [str(v) for v in ledger.violations()]
        finally:
            telemetry.disable()

    def test_ledger_delta_identical_on_off(self):
        delta_off, final_off = self._stream(enabled=False)
        delta_on, final_on = self._stream(enabled=True)
        # wall clock differs run to run; everything else must not
        delta_off.pop("wall_seconds")
        delta_on.pop("wall_seconds")
        assert delta_on == delta_off
        assert final_on == final_off
        counters = telemetry.snapshot()["counters"]
        assert counters.get("stream.batches") == 1


class TestPropertyByteIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        indexed=st.booleans(),
        backend=st.sampled_from(["serial", "thread", "fragment"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_graphs(self, seed, indexed, backend):
        graph = random_labeled_graph(
            10,
            0.3,
            node_labels=["user", "item", "shop"],
            edge_labels=["buys", "sells"],
            attribute_names=["score", "region"],
            attribute_values=[1, 2],
            rng=seed,
        )
        if indexed:
            attach_index(graph)
        sigma = bounded_rule_set()
        off = _run(graph, sigma, backend, enabled=False)
        on = _run(graph, sigma, backend, enabled=True)
        assert on.violations == off.violations
