"""The metrics core: registry semantics, the null sink, merging."""

import pickle

import pytest

from repro.telemetry import metrics


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


class TestHistogram:
    def test_le_bounds_are_inclusive(self):
        h = metrics.Histogram((1, 2, 4))
        for value in (0, 1, 2, 3, 4, 5):
            h.observe(value)
        # 0 and 1 -> le=1; 2 -> le=2; 3 and 4 -> le=4; 5 -> +Inf
        assert h.counts == [2, 1, 2, 1]
        assert h.count == 6
        assert h.sum == 15

    def test_to_dict_round_trip_is_plain_and_pickleable(self):
        h = metrics.Histogram((1, 2))
        h.observe(1)
        payload = h.to_dict()
        assert payload == {"bounds": [1, 2], "counts": [1, 0, 0], "sum": 1.0, "count": 1}
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_merge_adds_elementwise(self):
        a = metrics.Histogram((1, 2))
        b = metrics.Histogram((1, 2))
        a.observe(0)
        b.observe(3)
        b.observe(2)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        a2 = metrics.Histogram((1, 2))
        a2.observe(0)
        a2.merge(b.to_dict())  # dict form (worker snapshot) merges too
        assert a2.counts == [1, 1, 1]

    def test_merge_rejects_bound_mismatch(self):
        a = metrics.Histogram((1, 2))
        b = metrics.Histogram((1, 2, 4))
        with pytest.raises(ValueError, match="bound mismatch"):
            a.merge(b)


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = metrics.MetricsRegistry()
        reg.incr("a")
        reg.incr("a", 4)
        reg.gauge("g", 1.5)
        reg.gauge("g", 2.5)
        reg.observe("h", 3, bounds=(1, 2, 4))
        assert reg.counter_value("a") == 5
        assert reg.counter_value("missing") == 0
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h"]["counts"] == [0, 0, 1, 0]

    def test_merge_semantics(self):
        coordinator = metrics.MetricsRegistry()
        coordinator.incr("c", 1)
        coordinator.gauge("g", 1.0)
        coordinator.observe("h", 1, bounds=(1, 2))
        worker = metrics.MetricsRegistry()
        worker.incr("c", 2)
        worker.incr("other", 7)
        worker.gauge("g", 9.0)
        worker.observe("h", 2, bounds=(1, 2))
        coordinator.merge(worker.snapshot())
        assert coordinator.counter_value("c") == 3  # counters sum
        assert coordinator.counter_value("other") == 7
        assert coordinator.gauges["g"] == 9.0  # last writer wins
        assert coordinator.histograms["h"].counts == [1, 1, 0]  # buckets add

    def test_merge_is_order_independent_for_counters(self):
        snaps = []
        for value in (1, 10, 100):
            reg = metrics.MetricsRegistry()
            reg.incr("c", value)
            reg.observe("h", value, bounds=(1, 2))
            snaps.append(reg.snapshot())
        forward = metrics.MetricsRegistry()
        backward = metrics.MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_snapshot_is_pickleable(self):
        reg = metrics.MetricsRegistry()
        reg.incr("a")
        reg.observe("h", 1)
        snap = reg.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestModuleState:
    def test_disabled_by_default_and_null_sink_is_inert(self):
        assert not metrics.enabled()
        sink = metrics.sink()
        assert sink is metrics.NULL
        sink.incr("x")
        sink.gauge("g", 1)
        sink.observe("h", 1)
        sink.merge({"counters": {"x": 5}})
        assert sink.counter_value("x") == 0
        assert sink.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enable_routes_to_persistent_registry(self):
        metrics.enable()
        try:
            assert metrics.enabled()
            metrics.sink().incr("x")
            assert metrics.snapshot()["counters"] == {"x": 1}
        finally:
            metrics.disable()
        # disabled again: writes vanish, the registry keeps its state
        metrics.sink().incr("x")
        assert metrics.snapshot()["counters"] == {"x": 1}
        metrics.reset()
        assert metrics.snapshot()["counters"] == {}

    def test_merge_snapshot_targets_active_sink(self):
        metrics.merge_snapshot({"counters": {"x": 3}})  # disabled: dropped
        assert metrics.snapshot()["counters"] == {}
        metrics.enable()
        try:
            metrics.merge_snapshot({"counters": {"x": 3}})
        finally:
            metrics.disable()
        assert metrics.snapshot()["counters"] == {"x": 3}

    def test_collecting_swaps_in_a_fresh_registry_and_restores(self):
        metrics.enable()
        try:
            metrics.sink().incr("outer")
            with metrics.collecting() as fresh:
                metrics.sink().incr("inner")
                assert metrics.sink() is fresh
            assert fresh.counter_value("inner") == 1
            assert fresh.counter_value("outer") == 0
            assert metrics.sink() is metrics.registry()
            assert metrics.snapshot()["counters"] == {"outer": 1}
        finally:
            metrics.disable()

    def test_collecting_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with metrics.collecting():
                raise RuntimeError("boom")
        assert metrics.sink() is metrics.NULL
