"""tools/bench_history.py: schema validation and per-metric diffs."""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_history  # noqa: E402

from benchmarks._emit import bench_payload  # noqa: E402


def good_payload(**meta):
    return bench_payload(
        "engine",
        [
            {"backend": "serial", "workers": 1, "wall_s": 0.5, "violations": 3},
            {"backend": "engine", "workers": 4, "wall_s": 0.2, "violations": 3},
        ],
        meta=meta or None,
    )


class TestValidatePayload:
    def test_emit_output_is_clean(self):
        assert bench_history.validate_payload(good_payload(), "x.json") == []

    def test_missing_top_level_key(self):
        payload = good_payload()
        del payload["records"]
        problems = bench_history.validate_payload(payload, "x.json")
        assert any("records" in p for p in problems)

    def test_format_version_drift_fails(self):
        payload = good_payload()
        payload["format"] = 2
        problems = bench_history.validate_payload(payload, "x.json")
        assert any("format" in p for p in problems)

    def test_missing_meta_provenance_fails(self):
        payload = good_payload()
        del payload["meta"]["git_sha"]
        problems = bench_history.validate_payload(payload, "x.json")
        assert any("git_sha" in p for p in problems)

    def test_non_dict_record_fails(self):
        payload = good_payload()
        payload["records"].append([1, 2, 3])
        problems = bench_history.validate_payload(payload, "x.json")
        assert any("records[2]" in p for p in problems)

    def test_non_object_payload_fails(self):
        assert bench_history.validate_payload([], "x.json")


class TestValidateBaseline:
    def test_committed_baseline_is_clean(self):
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        assert bench_history.validate_baseline(baseline, "baseline.json") == []

    def test_section_without_thresholds_fails(self):
        baseline = {"thresholds": {"x": 1.0}, "serve": {"workload": {}}}
        problems = bench_history.validate_baseline(baseline, "b.json")
        assert any("serve" in p for p in problems)

    def test_non_numeric_threshold_fails(self):
        baseline = {"thresholds": {"x": "fast"}}
        problems = bench_history.validate_baseline(baseline, "b.json")
        assert any("x is not numeric" in p for p in problems)


class TestDiff:
    def test_matched_records_get_per_metric_deltas(self):
        old = good_payload()
        new = json.loads(json.dumps(old))
        new["records"][1]["wall_s"] = 0.1
        lines = bench_history.diff_payloads(old, new)
        text = "\n".join(lines)
        assert "backend=engine" in text
        assert "wall_s: 0.2 -> 0.1 (-50.0%)" in text
        assert "violations: 3 -> 3 (+0.0%)" in text

    def test_one_sided_records_are_flagged(self):
        old = good_payload()
        new = json.loads(json.dumps(old))
        new["records"].pop()
        new["records"].append(
            {"backend": "fragment", "workers": 4, "wall_s": 0.3}
        )
        text = "\n".join(bench_history.diff_payloads(old, new))
        assert "- only in old:" in text and "backend=engine" in text
        assert "+ only in new:" in text and "backend=fragment" in text

    def test_added_and_dropped_metrics_are_flagged(self):
        old = good_payload()
        new = json.loads(json.dumps(old))
        del new["records"][0]["violations"]
        new["records"][0]["matches"] = 40
        text = "\n".join(bench_history.diff_payloads(old, new))
        assert "violations: dropped (was 3)" in text
        assert "matches: added (40)" in text

    def test_int_config_fields_diff_as_metrics(self):
        # The identity/metric split is structural: strings and booleans
        # name the row, every number is compared.  An int-valued knob
        # like workers therefore shows as a delta on the same row — the
        # records still pair up by their string labels.
        old = good_payload()
        new = json.loads(json.dumps(old))
        new["records"][1]["workers"] = 8
        text = "\n".join(bench_history.diff_payloads(old, new))
        assert "workers: 4 -> 8" in text


class TestCommands:
    def test_check_clean_files(self, tmp_path, capsys):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(good_payload()))
        code = bench_history.main(
            [
                "check",
                "--baseline", str(REPO_ROOT / "benchmarks" / "baseline.json"),
                str(path),
            ]
        )
        assert code == 0
        assert "2 file(s) clean" in capsys.readouterr().out

    def test_check_fails_on_drift(self, tmp_path, capsys):
        payload = good_payload()
        payload["format"] = 99
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(payload))
        assert bench_history.main(["check", str(path)]) == 1
        assert "format" in capsys.readouterr().err

    def test_check_fails_on_unreadable_file(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        assert bench_history.main(["check", str(path)]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_diff_command_output(self, tmp_path, capsys):
        old_path = tmp_path / "old.json"
        old_path.write_text(json.dumps(good_payload()))
        new = good_payload()
        new["records"][0]["wall_s"] = 0.25
        new_path = tmp_path / "new.json"
        new_path.write_text(json.dumps(new))
        assert bench_history.main(["diff", str(old_path), str(new_path)]) == 0
        out = capsys.readouterr().out
        assert "bench engine:" in out
        assert "wall_s: 0.5 -> 0.25 (-50.0%)" in out

    def test_diff_refuses_invalid_payloads(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"bench": "x"}))
        good = tmp_path / "good.json"
        good.write_text(json.dumps(good_payload()))
        assert bench_history.main(["diff", str(bad), str(good)]) == 1
