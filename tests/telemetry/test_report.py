"""Derived stats, the text report, and the Prometheus formatter."""

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.report import derived_stats, format_text


def _snapshot():
    reg = MetricsRegistry()
    reg.incr("fragment.pivots.local", 90)
    reg.incr("fragment.pivots.escalated", 10)
    reg.incr("engine.pool.warm_hits", 3)
    reg.incr("engine.pool.cold_builds", 1)
    reg.incr("fragment.frames_expanded.fragment0", 35)
    reg.incr("fragment.frames_expanded.fragment1", 26)
    reg.incr("plan.frames_expanded", 61)
    reg.incr("index.hits", 8)
    reg.incr("index.misses", 2)
    reg.incr("fragment.route.ops_routed", 25)
    reg.incr("fragment.route.ops_full", 100)
    reg.gauge("fragment.border_replica_share", 0.125)
    reg.gauge("engine.lpt_imbalance", 1.25)
    reg.observe("plan.frame_candidates", 4)
    return reg.snapshot()


class TestDerivedStats:
    def test_ratios(self):
        derived = derived_stats(_snapshot())
        assert derived["escalated_pivot_share"] == 0.1
        assert derived["warm_pool_hit_rate"] == 0.75
        assert derived["border_replica_share"] == 0.125
        assert derived["per_fragment_frames_expanded"] == {
            "fragment0": 35,
            "fragment1": 26,
        }
        assert derived["frames_expanded"] == 61
        assert derived["index_hit_rate"] == 0.8
        assert derived["routing_ops_saved"] == 0.75
        assert derived["lpt_imbalance"] == 1.25

    def test_unmeasured_is_none_not_zero(self):
        derived = derived_stats({"counters": {}, "gauges": {}, "histograms": {}})
        assert derived["escalated_pivot_share"] is None
        assert derived["warm_pool_hit_rate"] is None
        assert derived["index_hit_rate"] is None
        assert derived["routing_ops_saved"] is None
        assert derived["per_fragment_frames_expanded"] == {}


class TestFormatText:
    def test_headlines_and_sections(self):
        text = format_text(_snapshot())
        assert "escalated-pivot share:   10.0%" in text
        assert "warm-pool hit rate:      75.0%" in text
        assert "border-replica share:    12.5%" in text
        assert "routing ops saved:       75.0%" in text
        assert "  fragment0: 35" in text
        assert "== counters ==" in text
        assert "== histograms ==" in text

    def test_empty_snapshot_renders_na(self):
        text = format_text({"counters": {}, "gauges": {}, "histograms": {}})
        assert "escalated-pivot share:   n/a" in text
        assert "(none)" in text


class TestPrometheus:
    def test_exposition_format(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_fragment_pivots_local counter" in text
        assert "repro_fragment_pivots_local 90" in text
        assert "repro_fragment_border_replica_share 0.125" in text
        # cumulative buckets with an inclusive +Inf terminal
        assert 'repro_plan_frame_candidates_bucket{le="4.0"} 1' in text
        assert 'repro_plan_frame_candidates_bucket{le="+Inf"} 1' in text
        assert "repro_plan_frame_candidates_count 1" in text
        assert text.endswith("\n")

    def test_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.incr("fragment.frames_expanded.fragment0", 4)
        text = render_prometheus(reg.snapshot())
        assert "repro_fragment_frames_expanded_fragment0 4" in text
