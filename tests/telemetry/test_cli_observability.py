"""The CLI observability surface: stats, --telemetry, observed explain."""

import json

import pytest

from repro import paper, telemetry
from repro.cli import main
from repro.deps.io import ged_to_dict
from repro.engine import shutdown_pools
from repro.graph import GraphBuilder
from repro.graph.io import UpdateLogWriter, graph_to_json
from repro.graph.update import GraphUpdate
from repro.reasoning.incremental import apply_update


@pytest.fixture(autouse=True)
def _clean_telemetry_and_pools():
    telemetry.disable()
    telemetry.reset()
    telemetry.clear_spans()
    yield
    shutdown_pools()
    telemetry.disable()
    telemetry.reset()
    telemetry.clear_spans()


def _dirty_graph():
    return (
        GraphBuilder()
        .node("fin", "country")
        .node("hel", "city", name="Helsinki")
        .node("spb", "city", name="Saint Petersburg")
        .edge("fin", "capital", "hel")
        .edge("fin", "capital", "spb")
        .build()
    )


@pytest.fixture
def kb_files(tmp_path):
    graph_path = tmp_path / "kb.json"
    graph_path.write_text(graph_to_json(_dirty_graph()))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps([ged_to_dict(paper.phi2())]))
    return graph_path, rules_path


class TestStats:
    def test_fragment_backend_reports_headline_stats(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        code = main(
            ["stats", "--graph", str(graph_path), "--rules", str(rules_path),
             "--backend", "fragment", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 1  # dirty graph, same contract as pvalidate
        # the acceptance headline block
        assert "escalated-pivot share:" in out
        assert "warm-pool hit rate:" in out
        assert "border-replica share:" in out
        assert "per-fragment frames expanded:" in out
        assert "fragment.pivots.local" in out
        # per-fragment frame attribution actually collected
        assert "fragment.frames_expanded.fragment" in out

    def test_json_format(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        code = main(
            ["stats", "--graph", str(graph_path), "--rules", str(rules_path),
             "--backend", "serial", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["backend"] == "serial"
        assert payload["snapshot"]["counters"]["plan.frames_expanded"] > 0
        assert "escalated_pivot_share" in payload["derived"]

    def test_prom_format(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        main(
            ["stats", "--graph", str(graph_path), "--rules", str(rules_path),
             "--backend", "serial", "--format", "prom"]
        )
        out = capsys.readouterr().out
        assert "# TYPE repro_plan_frames_expanded counter" in out
        assert "repro_validate_runs 1" in out

    def test_stats_leaves_telemetry_disabled(self, kb_files):
        graph_path, rules_path = kb_files
        main(["stats", "--graph", str(graph_path), "--rules", str(rules_path)])
        assert not telemetry.enabled()


class TestTelemetryFlag:
    def test_pvalidate_exports_ndjson(self, kb_files, tmp_path, capsys):
        graph_path, rules_path = kb_files
        target = tmp_path / "run.ndjson"
        code = main(
            ["pvalidate", "--graph", str(graph_path), "--rules", str(rules_path),
             "--backend", "fragment", "--telemetry", f"ndjson:{target}"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "violation" in captured.out  # normal output unchanged
        assert str(target) in captured.err
        lines = [json.loads(line) for line in target.read_text().splitlines()]
        span_names = {line["name"] for line in lines if line["type"] == "span"}
        assert "cli.pvalidate" in span_names and "pvalidate" in span_names
        (metrics_line,) = [line for line in lines if line["type"] == "metrics"]
        counters = metrics_line["snapshot"]["counters"]
        assert counters["validate.runs"] == 1
        assert counters["plan.frames_expanded"] > 0
        assert not telemetry.enabled()  # flag cleans up after itself

    def test_bad_spec_exits_2(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        code = main(
            ["validate", "--graph", str(graph_path), "--rules", str(rules_path),
             "--telemetry", "csv:out.csv"]
        )
        assert code == 2
        assert "ndjson:<path>" in capsys.readouterr().err


class TestStreamSummary:
    def _log(self, tmp_path):
        base = _dirty_graph()
        log_path = tmp_path / "updates.jsonl"
        writer = UpdateLogWriter(log_path)
        writer.write_base(base)
        update = GraphUpdate(
            nodes=(("tpe", "city", (("name", "Tampere"),)),),
            edges=(("fin", "capital", "tpe"),),
        )
        apply_update(base, update)
        writer.append(update, base)
        writer.close()
        return log_path

    @pytest.mark.parametrize("backend", ["serial", "fragment"])
    def test_summary_carries_routing_and_escalation_counts(
        self, kb_files, tmp_path, capsys, backend
    ):
        _, rules_path = kb_files
        log_path = self._log(tmp_path)
        main(
            ["stream", "--log", str(log_path), "--rules", str(rules_path),
             "--backend", backend, "--workers", "2"]
        )
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        (summary,) = [line for line in lines if line["type"] == "summary"]
        assert {"routed_ops", "full_ops", "escalated_nodes"} <= set(summary)
        if backend == "fragment":
            assert summary["routed_ops"] > 0
            assert summary["full_ops"] >= summary["routed_ops"]
        else:
            assert summary["routed_ops"] == 0


class TestObservedExplain:
    def test_observed_annotations_render_actual_counts(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        code = main(
            ["explain", "--graph", str(graph_path), "--rules", str(rules_path),
             "--observed"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[obs. " in out
        assert "frame(s)" in out and "row probe(s)" in out
        assert "not executed" not in out  # every step of phi2's plan ran
        assert not telemetry.enabled()

    def test_default_explain_is_unannotated(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        main(["explain", "--graph", str(graph_path), "--rules", str(rules_path)])
        assert "[obs. " not in capsys.readouterr().out


class TestTraceCommand:
    def _export(self, kb_files, tmp_path):
        """A real --telemetry export to render (engine pool = worker spans)."""
        graph_path, rules_path = kb_files
        target = tmp_path / "run.ndjson"
        main(
            ["pvalidate", "--graph", str(graph_path), "--rules", str(rules_path),
             "--backend", "engine", "--workers", "2",
             "--telemetry", f"ndjson:{target}"]
        )
        return target

    def test_renders_indented_tree_with_attribution(self, kb_files, tmp_path, capsys):
        target = self._export(kb_files, tmp_path)
        capsys.readouterr()
        code = main(["trace", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("trace ")
        assert "cli.pvalidate" in out
        # indentation shows causality; shares and ms on every line
        assert "    pvalidate" in out
        assert "ms" in out and "%" in out
        assert "where the milliseconds went (self time):" in out
        # the pool workers' spans landed in the same tree, marked with
        # their foreign process tag
        assert "engine.batch" in out
        assert "  @" in out

    def test_trace_id_prefix_filter(self, kb_files, tmp_path, capsys):
        target = self._export(kb_files, tmp_path)
        records = [json.loads(line) for line in target.read_text().splitlines()]
        trace_id = next(r["trace_id"] for r in records if "trace_id" in r)
        capsys.readouterr()
        assert main(["trace", str(target), "--trace-id", trace_id[:6]]) == 0
        assert trace_id in capsys.readouterr().out

        assert main(["trace", str(target), "--trace-id", "zzzzzz"]) == 1
        assert "no traced spans" in capsys.readouterr().err

    def test_untraced_export_exits_1(self, tmp_path, capsys):
        target = tmp_path / "empty.ndjson"
        target.write_text(json.dumps({"type": "metrics", "snapshot": {}}) + "\n")
        assert main(["trace", str(target)]) == 1
        assert "no traced spans" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["trace", "/nonexistent/run.ndjson"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_slow_plans_render_inside_their_trace(self, kb_files, tmp_path, capsys):
        graph_path, rules_path = kb_files
        target = tmp_path / "slow.ndjson"
        main(
            ["pvalidate", "--graph", str(graph_path), "--rules", str(rules_path),
             "--backend", "serial", "--slow-plan-ms", "0",
             "--telemetry", f"ndjson:{target}"]
        )
        capsys.readouterr()
        assert main(["trace", str(target)]) == 0
        out = capsys.readouterr().out
        assert "slow plan:" in out
        assert "match plan" in out  # the captured explain text, indented
