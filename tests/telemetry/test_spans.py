"""Spans: null when disabled, nested when enabled, NDJSON export."""

import io
import json

import pytest

from repro.telemetry import metrics, spans


@pytest.fixture(autouse=True)
def _clean_telemetry():
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    yield
    metrics.disable()
    metrics.reset()
    spans.clear_spans()


class TestSpanLifecycle:
    def test_disabled_returns_shared_null_span(self):
        a = spans.span("x")
        b = spans.span("y", attr=1)
        assert a is b  # one shared object, nothing allocated or recorded
        with a:
            pass
        assert spans.drain_spans() == []

    def test_enabled_records_nesting_and_attrs(self):
        metrics.enable()
        with spans.span("outer", backend="serial"):
            with spans.span("inner"):
                pass
        inner, outer = spans.drain_spans()
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"backend": "serial"}
        assert "attrs" not in inner
        assert inner["duration_s"] >= 0.0

    def test_error_inside_span_is_flagged_and_not_swallowed(self):
        metrics.enable()
        with pytest.raises(RuntimeError):
            with spans.span("failing"):
                raise RuntimeError("boom")
        (record,) = spans.drain_spans()
        assert record["error"] is True

    def test_buffer_is_bounded(self, monkeypatch):
        metrics.enable()
        monkeypatch.setattr(spans, "MAX_SPANS", 2)
        for _ in range(4):
            with spans.span("s"):
                pass
        assert len(spans.drain_spans()) == 2
        assert metrics.snapshot()["counters"]["telemetry.spans_dropped"] == 2


class TestExport:
    def test_export_ndjson_spans_then_metrics_line(self):
        metrics.enable()
        metrics.sink().incr("c", 3)
        with spans.span("run"):
            pass
        buffer = io.StringIO()
        lines_written = spans.export_ndjson(buffer)
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines_written == len(lines) == 2
        assert lines[0]["type"] == "span" and lines[0]["name"] == "run"
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["snapshot"]["counters"] == {"c": 3}
        # the span buffer drained; the registry did not
        assert spans.drain_spans() == []
        assert metrics.snapshot()["counters"] == {"c": 3}

    def test_export_to_path(self, tmp_path):
        metrics.enable()
        with spans.span("run"):
            pass
        target = tmp_path / "trace.ndjson"
        assert spans.export_ndjson(str(target)) == 2
        assert len(target.read_text().splitlines()) == 2
