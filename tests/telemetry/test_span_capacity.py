"""Span buffer capacity: env/runtime configurable, overflow never raises."""

import pytest

from repro.telemetry import metrics, spans


@pytest.fixture(autouse=True)
def _clean_spans():
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    spans.set_max_spans(None)
    yield
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    spans.set_max_spans(None)


class TestCapacityConfiguration:
    def test_default(self):
        assert spans.max_spans() == spans.DEFAULT_MAX_SPANS

    def test_runtime_setter_and_reset(self):
        spans.set_max_spans(3)
        assert spans.max_spans() == 3
        spans.set_max_spans(None)
        assert spans.max_spans() == spans.DEFAULT_MAX_SPANS

    def test_env_variable_seeds_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SPANS", "123")
        spans.set_max_spans(None)  # re-read the environment
        assert spans.max_spans() == 123

    def test_junk_env_falls_back_to_default(self, monkeypatch):
        for junk in ("abc", "0", "-5", ""):
            monkeypatch.setenv("REPRO_MAX_SPANS", junk)
            spans.set_max_spans(None)
            assert spans.max_spans() == spans.DEFAULT_MAX_SPANS

    def test_setter_rejects_non_positive(self):
        with pytest.raises(ValueError):
            spans.set_max_spans(0)


class TestOverflow:
    def test_overflow_counts_drops_and_never_raises(self):
        metrics.enable()
        spans.set_max_spans(2)
        for index in range(5):
            with spans.span(f"s{index}"):
                pass
        kept = spans.drain_spans()
        assert [r["name"] for r in kept] == ["s0", "s1"]
        counters = metrics.snapshot()["counters"]
        assert counters["telemetry.spans_dropped"] == 3

    def test_record_span_respects_the_bound(self):
        metrics.enable()
        spans.set_max_spans(1)
        spans.record_span("a", 0.001)
        spans.record_span("b", 0.001)
        assert [r["name"] for r in spans.drain_spans()] == ["a"]
        assert metrics.snapshot()["counters"]["telemetry.spans_dropped"] == 1

    def test_absorb_spans_respects_the_bound(self):
        metrics.enable()
        spans.set_max_spans(2)
        spans.absorb_spans([{"type": "span", "name": f"w{i}"} for i in range(4)])
        assert len(spans.drain_spans()) == 2
        assert metrics.snapshot()["counters"]["telemetry.spans_dropped"] == 2

    def test_drain_frees_capacity(self):
        metrics.enable()
        spans.set_max_spans(1)
        with spans.span("first"):
            pass
        assert len(spans.drain_spans()) == 1
        with spans.span("second"):
            pass
        assert [r["name"] for r in spans.drain_spans()] == ["second"]
