"""Slow-plan capture: threshold gating, ring bound, trace linkage."""

import pytest

from repro import paper
from repro.graph import GraphBuilder
from repro.telemetry import metrics, slowlog, spans, trace


@pytest.fixture(autouse=True)
def _clean_slowlog():
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    slowlog.clear_slow_plans()
    slowlog.set_slow_plan_threshold(None)
    slowlog.set_slow_plan_capacity(slowlog.DEFAULT_SLOW_PLAN_CAPACITY)
    yield
    metrics.disable()
    metrics.reset()
    spans.clear_spans()
    slowlog.clear_slow_plans()
    slowlog.set_slow_plan_threshold(None)
    slowlog.set_slow_plan_capacity(slowlog.DEFAULT_SLOW_PLAN_CAPACITY)


class TestThreshold:
    def test_off_by_default(self):
        assert slowlog.slow_plan_threshold() is None

    def test_set_and_clear(self):
        slowlog.set_slow_plan_threshold(0.25)
        assert slowlog.slow_plan_threshold() == 0.25
        slowlog.set_slow_plan_threshold(None)
        assert slowlog.slow_plan_threshold() is None

    def test_env_parse_ms_to_seconds(self):
        # millis convert to seconds; junk and negatives read as "off" —
        # a bad env var must never break startup.
        import os

        for raw, expected in (("250", 0.25), ("0", 0.0)):
            os.environ[slowlog.ENV_SLOW_PLAN_MS] = raw
            try:
                assert slowlog._threshold_from_env() == expected
            finally:
                del os.environ[slowlog.ENV_SLOW_PLAN_MS]
        for junk in ("abc", "-5"):
            os.environ[slowlog.ENV_SLOW_PLAN_MS] = junk
            try:
                assert slowlog._threshold_from_env() is None
            finally:
                del os.environ[slowlog.ENV_SLOW_PLAN_MS]


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts_never_raises(self):
        metrics.enable()
        slowlog.set_slow_plan_capacity(2)
        for index in range(5):
            slowlog.record_slow_plan(f"plan-{index}", 0.01, "explain text")
        records = slowlog.drain_slow_plans()
        # newest two survive — the slow plan being debugged is the
        # latest one, not the first
        assert [r["name"] for r in records] == ["plan-3", "plan-4"]
        counters = metrics.snapshot()["counters"]
        assert counters["telemetry.slow_plans_dropped"] == 3

    def test_shrinking_capacity_trims_oldest(self):
        metrics.enable()
        for index in range(4):
            slowlog.record_slow_plan(f"plan-{index}", 0.01, "x")
        slowlog.set_slow_plan_capacity(2)
        assert [r["name"] for r in slowlog.drain_slow_plans()] == [
            "plan-2",
            "plan-3",
        ]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            slowlog.set_slow_plan_capacity(0)

    def test_absorb_is_bounded_too(self):
        metrics.enable()
        slowlog.set_slow_plan_capacity(2)
        slowlog.absorb_slow_plans(
            [{"type": "slow_plan", "name": f"w-{i}"} for i in range(4)]
        )
        assert len(slowlog.drain_slow_plans()) == 2
        assert metrics.snapshot()["counters"]["telemetry.slow_plans_dropped"] == 2


class TestTraceLinkage:
    def test_record_carries_active_trace_refs(self):
        metrics.enable()
        with trace.tracing(trace.TraceContext("t1")):
            with spans.span("stream.shard") as shard:
                slowlog.record_slow_plan("ged", 0.02, "explain", pivot="x")
        (record,) = slowlog.drain_slow_plans()
        assert record["trace_id"] == "t1"
        assert record["parent_ref"] == trace.make_ref(shard.span_id)
        assert record["attrs"] == {"pivot": "x"}
        assert record["explain"] == "explain"


class TestValidationHook:
    def _dirty_graph(self):
        return (
            GraphBuilder()
            .node("fin", "country")
            .node("hel", "city", name="Helsinki")
            .node("spb", "city", name="Saint Petersburg")
            .edge("fin", "capital", "hel")
            .edge("fin", "capital", "spb")
            .build()
        )

    def test_zero_threshold_captures_observed_explain_per_shard(self):
        from repro.parallel import parallel_find_violations

        metrics.enable()
        slowlog.set_slow_plan_threshold(0.0)
        report = parallel_find_violations(
            self._dirty_graph(), [paper.phi2()], workers=2, backend="serial"
        )
        assert report.violations  # the fixture is dirty
        records = slowlog.drain_slow_plans()
        assert records, "threshold 0 must capture every shard"
        sample = records[0]
        assert sample["name"] == paper.phi2().name or sample["name"] == "GED"
        assert "match plan" in sample["explain"]
        assert "obs." in sample["explain"]  # observed=True annotations
        assert "shard_nodes" in sample["attrs"]

    def test_disabled_telemetry_captures_nothing(self):
        from repro.parallel import parallel_find_violations

        slowlog.set_slow_plan_threshold(0.0)
        parallel_find_violations(
            self._dirty_graph(), [paper.phi2()], workers=2, backend="serial"
        )
        assert slowlog.drain_slow_plans() == []
