"""Round-trip the Prometheus exposition through a real text parser.

Substring assertions (test_report.py) catch missing families; this
module parses the full text-format grammar — ``# HELP`` / ``# TYPE``
comment lines, bare samples, ``{le="..."}`` bucket labels — so a
malformed exposition (bad escaping, non-cumulative buckets, missing
``+Inf``) fails even when every expected substring is present.  The
parser is stdlib-only and intentionally minimal: exactly the subset
:func:`repro.telemetry.render_prometheus` emits.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro import paper, telemetry
from repro.deps.io import ged_to_dict
from repro.graph import GraphBuilder
from repro.graph.io import graph_to_json
from repro.telemetry import metrics

REPO_ROOT = Path(__file__).resolve().parents[2]

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def parse_exposition(text: str) -> dict:
    """Parse exposition text into ``{family: {...}}``.

    Each family carries ``help``, ``type``, and ``samples`` — a list of
    ``(name, labels-dict, float-value)``.  Raises AssertionError on any
    line outside the grammar, samples before their ``# TYPE``, or a
    HELP/TYPE pair naming different families.
    """
    families: dict[str, dict] = {}
    pending_help: tuple[str, str] | None = None
    current: str | None = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            pending_help = (name, help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            assert pending_help is not None and pending_help[0] == name, (
                f"TYPE without matching HELP: {line!r}"
            )
            families[name] = {
                "help": pending_help[1],
                "type": kind,
                "samples": [],
            }
            current = name
            pending_help = None
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparsable sample line: {line!r}"
        name = match.group("name")
        family = current
        assert family is not None, f"sample before any TYPE: {line!r}"
        assert name == family or name.startswith(family + "_"), (
            f"sample {name!r} outside family {family!r}"
        )
        labels = {}
        if match.group("labels"):
            for pair in _LABEL.finditer(match.group("labels")):
                labels[pair.group("key")] = pair.group("value")
        families[family]["samples"].append(
            (name, labels, float(match.group("value")))
        )
    return families


def check_histogram(family: str, payload: dict) -> None:
    """Conventional histogram shape: cumulative buckets ending at +Inf."""
    buckets = [s for s in payload["samples"] if s[0] == f"{family}_bucket"]
    assert buckets, f"{family}: no bucket samples"
    bounds = [s[1]["le"] for s in buckets]
    assert bounds[-1] == "+Inf"
    finite = [float(b) for b in bounds[:-1]]
    assert finite == sorted(finite), f"{family}: le bounds not ascending"
    counts = [s[2] for s in buckets]
    assert counts == sorted(counts), f"{family}: buckets not cumulative"
    count_sample = [s for s in payload["samples"] if s[0] == f"{family}_count"]
    assert count_sample and count_sample[0][2] == counts[-1]
    assert any(s[0] == f"{family}_sum" for s in payload["samples"])


@pytest.fixture(autouse=True)
def _clean_metrics():
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


class TestSyntheticRoundTrip:
    def test_every_family_kind_parses_and_round_trips(self):
        metrics.enable()
        sink = metrics.sink()
        sink.incr("plan.compiles", 3)
        sink.gauge("serve.seq", 7)
        for value in (0.0005, 0.003, 0.3):
            sink.observe("serve.apply_seconds", value, metrics.SECONDS_BOUNDS)
        families = parse_exposition(telemetry.render_prometheus(metrics.snapshot()))

        counter = families["repro_plan_compiles"]
        assert counter["type"] == "counter"
        assert counter["help"].endswith("plan.compiles")  # raw dotted name
        assert counter["samples"] == [("repro_plan_compiles", {}, 3.0)]

        gauge = families["repro_serve_seq"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"] == [("repro_serve_seq", {}, 7.0)]

        histogram = families["repro_serve_apply_seconds"]
        assert histogram["type"] == "histogram"
        check_histogram("repro_serve_apply_seconds", histogram)

    def test_empty_snapshot_renders_empty_and_parses(self):
        assert parse_exposition(telemetry.render_prometheus(metrics.snapshot())) == {}


class TestCliStatsExposition:
    def test_cli_stats_prom_output_fully_parses(self, tmp_path):
        graph = (
            GraphBuilder()
            .node("fin", "country")
            .node("hel", "city", name="Helsinki")
            .node("spb", "city", name="Saint Petersburg")
            .edge("fin", "capital", "hel")
            .edge("fin", "capital", "spb")
            .build()
        )
        graph_path = tmp_path / "kb.json"
        graph_path.write_text(graph_to_json(graph))
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(json.dumps([ged_to_dict(paper.phi2())]))

        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "stats",
                "--graph", str(graph_path), "--rules", str(rules_path),
                "--backend", "serial", "--workers", "1", "--format", "prom",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin",
            },
            timeout=120,
        )
        assert result.returncode == 1, result.stderr  # dirty fixture
        families = parse_exposition(result.stdout)
        assert families, "stats --format prom emitted nothing"
        # every family the run emitted must parse with HELP+TYPE and,
        # for histograms, the full bucket contract
        for name, payload in families.items():
            assert name.startswith("repro_")
            assert payload["help"].startswith("repro metric ")
            assert payload["samples"], f"{name}: family with no samples"
            if payload["type"] == "histogram":
                check_histogram(name, payload)
        # the profiled validation always produces these
        assert "repro_plan_compiles" in families
        assert any(payload["type"] == "histogram" for payload in families.values())
