"""Application-level tests: consistency, spam, entity resolution, expansion."""

from repro import paper
from repro.graph import GraphBuilder
from repro.quality import (
    CandidateEntity,
    check_consistency,
    check_duplicate,
    detect_fake_accounts,
    dirty_entities,
    duplicate_pairs,
    expand,
    resolve_entities,
    score_detection,
)
from repro.workloads import (
    synthetic_knowledge_base,
    synthetic_social_network,
)


class TestConsistencyChecking:
    def test_planted_errors_are_found(self):
        g, errors = synthetic_knowledge_base(error_rate=0.5, rng=3)
        report = check_consistency(g)
        assert not report.is_clean
        # Every planted wrong-creator product appears in ϕ1's report.
        assert set(errors.wrong_creator) <= report.entities("phi1")
        assert set(errors.double_capital) <= report.entities("phi2")
        assert set(errors.broken_inheritance) <= report.entities("phi3")
        assert set(errors.child_and_parent) <= report.entities("phi4")

    def test_clean_kb_validates(self):
        g, errors = synthetic_knowledge_base(error_rate=0.0, rng=1)
        assert errors.total() == 0
        report = check_consistency(g)
        assert report.is_clean
        assert report.summary().startswith("0 violation")

    def test_no_false_positives_on_clean_entities(self):
        g, errors = synthetic_knowledge_base(error_rate=0.3, rng=7)
        report = check_consistency(g)
        flagged_products = {
            e for e in report.entities("phi1") if e.startswith("prod")
        }
        assert flagged_products == set(errors.wrong_creator)

    def test_dirty_entities_union(self):
        g, errors = synthetic_knowledge_base(error_rate=0.4, rng=9)
        dirty = dirty_entities(g)
        assert set(errors.wrong_creator) <= dirty
        assert set(errors.child_and_parent) <= dirty

    def test_report_summary_counts(self):
        g, _ = synthetic_knowledge_base(error_rate=0.5, rng=3)
        report = check_consistency(g)
        assert str(report.total) in report.summary()


class TestSpamDetection:
    def test_planted_rings_detected(self):
        g, truth = synthetic_social_network(n_rings=4, rng=2)
        result = detect_fake_accounts(g)
        assert set(truth.undetected_fakes) <= result.flagged

    def test_benign_lookalikes_not_flagged(self):
        g, truth = synthetic_social_network(n_rings=3, n_benign_pairs=5, rng=4)
        result = detect_fake_accounts(g)
        assert not (result.flagged & set(truth.benign_lookalikes))

    def test_scoring(self):
        g, truth = synthetic_social_network(n_rings=3, rng=5)
        result = detect_fake_accounts(g)
        scores = score_detection(result.flagged, truth)
        assert scores["precision"] == 1.0
        assert scores["recall"] == 1.0

    def test_chained_propagation(self):
        """Flagging can cascade: mule0 flagged in round 1 seeds a second
        ring that flags mule1 in round 2."""
        b = GraphBuilder()
        b.node("seed", "account", is_fake=1)
        b.node("mule0", "account", is_fake=0)
        b.node("mule1", "account", is_fake=0)
        for pair_index, (a, bb) in enumerate([("seed", "mule0"), ("mule0", "mule1")]):
            z1, z2 = f"p{pair_index}a", f"p{pair_index}b"
            b.node(z1, "blog", keyword="peculiar").node(z2, "blog", keyword="peculiar")
            b.edge(bb, "post", z1).edge(a, "post", z2)
            for i in range(2):
                shared = f"s{pair_index}_{i}"
                b.node(shared, "blog")
                b.edge(a, "like", shared).edge(bb, "like", shared)
        g = b.build()
        result = detect_fake_accounts(g)
        assert result.flagged == {"mule0", "mule1"}
        assert result.iterations == 2

    def test_no_fakes_no_flags(self):
        g, _ = synthetic_social_network(n_rings=0, n_benign_pairs=4, rng=6)
        assert detect_fake_accounts(g).flagged == set()


class TestEntityResolution:
    def duplicated_kb(self):
        """Two album nodes + two artist nodes that ψ1/ψ3 must merge
        *recursively*: albums share title; artists share name; each
        album points to its own artist copy.  ψ2 breaks the cycle via
        title+release, after which ψ3 merges the artists."""
        return (
            GraphBuilder()
            .node("a1", "album", title="Bleach", release=1989)
            .node("a2", "album", title="Bleach", release=1989)
            .node("n1", "artist", name="Nirvana")
            .node("n2", "artist", name="Nirvana")
            .edge("a1", "primary_artist", "n1")
            .edge("a2", "primary_artist", "n2")
            .build()
        )

    def test_recursive_resolution(self):
        result = resolve_entities(self.duplicated_kb())
        assert result.consistent
        pairs = duplicate_pairs(result)
        assert ("a1", "a2") in pairs
        assert ("n1", "n2") in pairs
        assert result.merges == 2
        assert result.resolved_graph.num_nodes == 2

    def test_distinct_entities_untouched(self):
        g = (
            GraphBuilder()
            .node("a1", "album", title="Bleach", release=1989)
            .node("a2", "album", title="Nevermind", release=1991)
            .node("n1", "artist", name="Nirvana")
            .edge("a1", "primary_artist", "n1")
            .edge("a2", "primary_artist", "n1")
            .build()
        )
        result = resolve_entities(g)
        assert result.consistent and result.merges == 0

    def test_conflicting_merge_reported(self):
        """Keys forcing nodes with contradictory attributes together."""
        g = (
            GraphBuilder()
            .node("a1", "album", title="Bleach", release=1989, certified="gold")
            .node("a2", "album", title="Bleach", release=1989, certified="platinum")
            .build()
        )
        result = resolve_entities(g, keys=[paper.psi2()])
        assert not result.consistent
        assert "attribute conflict" in result.reason

    def test_resolution_on_synthetic_kb(self):
        g, errors = synthetic_knowledge_base(error_rate=0.5, rng=12)
        result = resolve_entities(g)
        assert result.consistent
        found = duplicate_pairs(result)
        for a, b in errors.duplicate_albums:
            assert (min(a, b), max(a, b)) in found


class TestExpansion:
    def base_kb(self):
        return (
            GraphBuilder()
            .node("alb", "album", title="Bleach", release=1989)
            .node("art", "artist", name="Nirvana")
            .edge("alb", "primary_artist", "art")
            .build()
        )

    def test_duplicate_rejected(self):
        candidate = CandidateEntity(
            "album",
            {"title": "Bleach", "release": 1989},
            edges=[("primary_artist", "art")],
        )
        decision = check_duplicate(self.base_kb(), candidate)
        assert decision.is_duplicate
        assert decision.matched_node == "alb"

    def test_new_entity_accepted(self):
        candidate = CandidateEntity(
            "album",
            {"title": "Nevermind", "release": 1991},
            edges=[("primary_artist", "art")],
        )
        graph, decision = expand(self.base_kb(), candidate)
        assert not decision.is_duplicate
        assert graph.num_nodes == 3

    def test_same_title_different_release_accepted(self):
        """The Example 1 'Bleach' collision: title alone is not a key."""
        candidate = CandidateEntity("album", {"title": "Bleach", "release": 1992})
        decision = check_duplicate(self.base_kb(), candidate)
        assert not decision.is_duplicate

    def test_expand_keeps_original_on_duplicate(self):
        base = self.base_kb()
        candidate = CandidateEntity(
            "album",
            {"title": "Bleach", "release": 1989},
            edges=[("primary_artist", "art")],
        )
        graph, decision = expand(base, candidate)
        assert decision.is_duplicate
        assert graph is base
