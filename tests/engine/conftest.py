"""Engine test fixtures: never leak worker pools across tests."""

import pytest

from repro.engine import shutdown_pools


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_pools()
