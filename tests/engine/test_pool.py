"""Pool lifecycle: one broadcast, warm reuse, version-keyed retirement."""

import pytest

from repro.engine import get_pool, pool_for, release_pool, resolve_workers, shutdown_pools
from repro.indexing import attach_index, detach_index
from repro.matching.homomorphism import count_matches
from repro.parallel import parallel_find_violations
from repro.patterns.pattern import Pattern
from repro.reasoning import find_violations
from repro.repair.suggest import suggest_repairs, suggest_repairs_batch
from repro.workloads import bounded_rule_set, validation_workload


class TestResolveWorkers:
    def test_none_defaults_to_cpu_count(self):
        import os

        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_zero_and_negative_rejected(self, bad):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(bad)

    @pytest.mark.parametrize("bad", [2.5, "4", True])
    def test_non_integers_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_explicit_counts_honored(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7


class TestPoolRegistry:
    def test_warm_pool_reused(self):
        graph = validation_workload(80, rng=5)
        first = get_pool(graph, 2)
        second = get_pool(graph, 2)
        assert first is second
        assert pool_for(graph) is first

    def test_mutation_retires_pool(self):
        graph = validation_workload(80, rng=5)
        first = get_pool(graph, 2)
        graph.add_node("extra", "user")
        second = get_pool(graph, 2)
        assert second is not first
        assert first.closed

    def test_worker_count_change_retires_pool(self):
        graph = validation_workload(80, rng=5)
        first = get_pool(graph, 2)
        second = get_pool(graph, 3)
        assert second is not first and first.closed

    def test_index_attachment_change_retires_pool(self):
        graph = validation_workload(80, rng=5)
        detach_index(graph)
        unindexed = get_pool(graph, 2)
        assert not unindexed.indexed
        attach_index(graph)
        indexed = get_pool(graph, 2)
        assert indexed is not unindexed and indexed.indexed

    def test_release_pool(self):
        graph = validation_workload(80, rng=5)
        pool = get_pool(graph, 2)
        release_pool(graph)
        assert pool.closed and pool_for(graph) is None

    def test_shutdown_pools(self):
        graph = validation_workload(80, rng=5)
        pool = get_pool(graph, 2)
        shutdown_pools()
        assert pool.closed and pool_for(graph) is None
        with pytest.raises(RuntimeError):
            pool.count_patterns([Pattern({"x": "user"})])


class TestPoolAdapters:
    def test_warm_pool_serves_repeated_validations(self):
        graph = validation_workload(120, rng=9)
        sigma = bounded_rule_set()
        attach_index(graph)
        first = parallel_find_violations(graph, sigma, workers=2, backend="engine")
        pool = pool_for(graph)
        assert pool is not None and not pool.closed
        second = parallel_find_violations(graph, sigma, workers=2, backend="engine")
        assert pool_for(graph) is pool  # same warm pool, no re-broadcast
        assert first.violations == second.violations
        assert first.indexed and second.indexed

    def test_process_backend_tears_pool_down(self):
        graph = validation_workload(100, rng=9)
        sigma = bounded_rule_set()
        report = parallel_find_violations(graph, sigma, workers=2, backend="process")
        assert pool_for(graph) is None
        serial = parallel_find_violations(graph, sigma, workers=2, backend="serial")
        assert report.violations == serial.violations

    def test_process_backend_leaves_warm_engine_pool_alone(self):
        # A one-shot "process" run must use a private pool: it may
        # neither reuse nor retire the graph's registered warm pool.
        graph = validation_workload(100, rng=9)
        sigma = bounded_rule_set()
        parallel_find_violations(graph, sigma, workers=2, backend="engine")
        warm = pool_for(graph)
        assert warm is not None and not warm.closed
        calls_before = warm.calls
        parallel_find_violations(graph, sigma, workers=2, backend="process")
        assert pool_for(graph) is warm and not warm.closed
        assert warm.calls == calls_before  # process ran on its own pool

    def test_empty_sigma_builds_no_pool(self):
        graph = validation_workload(100, rng=9)
        for backend in ("process", "engine"):
            report = parallel_find_violations(graph, [], workers=4, backend=backend)
            assert report.valid and report.stats == []
            assert pool_for(graph) is None

    def test_retired_pool_closes_when_graph_is_collected(self):
        graph = validation_workload(60, rng=9)
        pool = get_pool(graph, 2)
        del graph
        import gc

        gc.collect()
        assert pool.closed

    def test_count_patterns_matches_serial(self):
        graph = validation_workload(100, rng=4)
        patterns = [
            Pattern({"x": "user"}),
            Pattern({"x": "shop", "y": "item"}, [("x", "sells", "y")]),
            Pattern({"x": "user", "y": "item"}, [("x", "buys", "y")]),
        ]
        pooled = get_pool(graph, 2).count_patterns(patterns)
        assert pooled == [count_matches(p, graph) for p in patterns]

    def test_suggest_repairs_batch_matches_serial(self):
        graph = validation_workload(150, rng=13)
        sigma = bounded_rule_set()
        violations = find_violations(graph, sigma)
        assert violations  # the workload plants errors
        serial = [suggest_repairs(graph, v) for v in violations]
        pooled = suggest_repairs_batch(graph, violations, workers=2)
        assert pooled == serial

    def test_suggest_repairs_batch_serial_path(self):
        graph = validation_workload(100, rng=13)
        violations = find_violations(graph, bounded_rule_set())
        assert suggest_repairs_batch(graph, violations, workers=1) == [
            suggest_repairs(graph, v) for v in violations
        ]
