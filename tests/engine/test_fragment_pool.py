"""Fragment-resident workers: per-fragment broadcast, routed units,
and byte-identical merged reports."""

import pytest

from repro.engine import (
    FragmentPool,
    plan_fragment_tasks,
    snapshot_fragments,
    snapshot_graph,
    snapshot_size,
)
from repro.graph.fragments import partition_graph
from repro.indexing import attach_index, get_index
from repro.parallel import parallel_find_violations
from repro.workloads import bounded_rule_set, clustered_workload, validation_workload


def canonical(violations):
    """Worker GEDs are pickle copies; compare on canonical forms."""
    return [
        (str(v.ged), v.match, tuple(str(l) for l in v.failed))
        for v in sorted(violations, key=lambda v: (v.ged.name or "", str(v.ged), v.match))
    ]


class TestFragmentSnapshots:
    def test_roundtrip_restores_fragment(self):
        graph = validation_workload(60, rng=3)
        fragmentation = partition_graph(graph, 3, "greedy")
        for snapshot, fragment in zip(
            snapshot_fragments(fragmentation), fragmentation.fragments
        ):
            restored = snapshot.restore()
            assert restored.index == fragment.index
            assert restored.graph == fragment.graph
            assert restored.interior == fragment.interior
            assert restored.border_owner == fragment.border_owner

    def test_indexed_fragments_rebuild_indexes(self):
        graph = validation_workload(60, rng=3)
        attach_index(graph)
        from repro.graph.fragments import get_fragments

        fragmentation = get_fragments(graph, 3, "greedy")
        restored = snapshot_fragments(fragmentation)[0].restore()
        assert get_index(restored.graph) is not None

    def test_fragment_broadcast_beats_whole_graph_on_clustered_data(self):
        graph = clustered_workload(300, n_clusters=6, rng=13)
        whole = snapshot_size(snapshot_graph(graph))
        fragmentation = partition_graph(graph, 4, "greedy")
        payloads = [len(s.payload()) for s in snapshot_fragments(fragmentation)]
        assert max(payloads) < whole  # each resident worker holds < |G|


class TestFragmentScheduler:
    def test_units_cover_all_local_pivots_once(self):
        graph = validation_workload(80, rng=5)
        sigma = bounded_rule_set()
        fragmentation = partition_graph(graph, 3, "hash")
        units, residue = plan_fragment_tasks(graph, sigma, fragmentation)
        for ged in sigma:
            unit_pivots = [
                node_id
                for unit in units
                if unit.ged is ged
                for node_id in unit.shard
            ]
            residue_pivots = [
                node_id for (r_ged, _, shard) in residue if r_ged is ged for node_id in shard
            ]
            combined = unit_pivots + residue_pivots
            assert len(combined) == len(set(combined))  # exactly-once
        for unit in units:
            fragment = fragmentation.fragments[unit.fragment_index]
            assert set(unit.shard) <= fragment.interior
            assert unit.est_cost >= len(unit.shard)

    def test_units_ordered_largest_first_per_fragment(self):
        graph = validation_workload(80, rng=5)
        fragmentation = partition_graph(graph, 3, "hash")
        units, _ = plan_fragment_tasks(graph, bounded_rule_set(), fragmentation)
        per_fragment: dict[int, list[int]] = {}
        for unit in units:
            per_fragment.setdefault(unit.fragment_index, []).append(unit.est_cost)
        for costs in per_fragment.values():
            assert costs == sorted(costs, reverse=True)


class TestFragmentPool:
    @pytest.mark.parametrize("mode", ["hash", "greedy"])
    def test_validate_matches_serial(self, mode):
        graph = validation_workload(80, rng=13)
        sigma = bounded_rule_set()
        serial = parallel_find_violations(graph, sigma, workers=2, backend="serial")
        with FragmentPool.partition(graph, 3, mode) as pool:
            results = pool.validate(sigma)
        merged = [v for violations, _ in results for v in violations]
        assert canonical(merged) == canonical(serial.violations)

    def test_broadcast_accounting(self):
        graph = clustered_workload(200, n_clusters=4, rng=7)
        with FragmentPool.partition(graph, 4, "greedy") as pool:
            assert len(pool.fragment_bytes) == 4
            assert pool.broadcast_bytes == sum(pool.fragment_bytes)
            assert pool.max_fragment_bytes == max(pool.fragment_bytes)
            assert pool.max_fragment_bytes < snapshot_size(snapshot_graph(graph))

    def test_closed_pool_refuses_work(self):
        graph = validation_workload(40, rng=1)
        pool = FragmentPool.partition(graph, 2, "hash")
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.validate(bounded_rule_set())

    def test_stale_pool_refuses_mutated_graph(self):
        """Resident workers hold partition-time snapshots; validating a
        mutated coordinator would merge stale local matches with fresh
        escalations — the pool must refuse, like the engine registry
        retires on version mismatch."""
        graph = validation_workload(40, rng=1)
        with FragmentPool.partition(graph, 2, "hash") as pool:
            graph.set_attribute(graph.node_ids[0], "score", 99)
            with pytest.raises(RuntimeError, match="stale"):
                pool.validate(bounded_rule_set())
