"""Scheduler: exact sharding into costed, largest-first work units."""

import pytest

from repro.engine import estimate_shard_cost, plan_tasks
from repro.engine.scheduler import pack_units
from repro.indexing import attach_index, detach_index
from repro.matching.candidates import candidate_sets
from repro.workloads import bounded_rule_set, validation_workload


class TestPlanTasks:
    def test_units_partition_the_pivot_pool(self):
        graph = validation_workload(120, rng=3)
        sigma = bounded_rule_set()
        units = plan_tasks(graph, sigma, 4)
        for ged in sigma:
            ged_units = [u for u in units if u.ged is ged]
            assert ged_units, "every dependency must contribute units"
            pivot = ged_units[0].pivot
            assert all(u.pivot == pivot for u in ged_units)
            shards = [set(u.shard) for u in ged_units]
            union = set().union(*shards)
            assert sum(len(s) for s in shards) == len(union)  # disjoint
            assert union == candidate_sets(ged.pattern, graph)[pivot]

    def test_largest_cost_first_and_deterministic(self):
        graph = validation_workload(120, rng=3)
        sigma = bounded_rule_set()
        units = plan_tasks(graph, sigma, 4)
        costs = [u.est_cost for u in units]
        assert costs == sorted(costs, reverse=True)
        again = plan_tasks(graph, sigma, 4)
        assert [(u.ged_position, u.shard_index, u.shard) for u in units] == [
            (u.ged_position, u.shard_index, u.shard) for u in again
        ]

    def test_cost_estimate_uses_index_when_attached(self):
        graph = validation_workload(80, rng=3)
        shard = tuple(graph.node_ids[:10])
        detach_index(graph)
        raw = estimate_shard_cost(graph, shard)
        attach_index(graph)
        indexed = estimate_shard_cost(graph, shard)
        assert raw == indexed  # same totals, different (O(1)) source
        detach_index(graph)

    def test_empty_sigma(self):
        graph = validation_workload(40, rng=3)
        assert plan_tasks(graph, [], 4) == []


class TestPackUnits:
    def test_all_units_kept_and_batch_count_bounded(self):
        graph = validation_workload(120, rng=3)
        units = plan_tasks(graph, bounded_rule_set(), 4)
        batches = pack_units(units, 4)
        assert len(batches) <= 4
        flattened = [unit for batch in batches for unit in batch]
        assert sorted(map(id, flattened)) == sorted(map(id, units))

    def test_lpt_balances_loads(self):
        graph = validation_workload(200, rng=8)
        units = plan_tasks(graph, bounded_rule_set(), 8)
        batches = pack_units(units, 4)
        loads = [sum(u.est_cost for u in batch) for batch in batches]
        assert loads == sorted(loads, reverse=True)  # dispatch heaviest first
        # LPT guarantee: max load < mean + the largest single unit.
        largest = max(u.est_cost for u in units)
        assert max(loads) <= sum(loads) / len(loads) + largest

    def test_more_batches_than_units(self):
        graph = validation_workload(40, rng=3)
        units = plan_tasks(graph, bounded_rule_set(), 2)
        batches = pack_units(units, 100)
        assert len(batches) == len(units)
        assert all(len(batch) == 1 for batch in batches)

    def test_invalid_batch_count(self):
        with pytest.raises(ValueError):
            pack_units([], 0)
