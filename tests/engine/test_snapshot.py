"""Snapshot roundtrips: lossless, compact, index-aware."""

import pickle

import pytest

from repro.engine import snapshot_graph, snapshot_size
from repro.graph.graph import Graph
from repro.graph.io import graph_from_arrays, graph_to_arrays
from repro.indexing import attach_index, detach_index, get_index
from repro.workloads import synthetic_social_network, validation_workload


def tricky_graph() -> Graph:
    g = Graph()
    g.add_node("a", "thing", count=1, flag=True, ratio=1.0, name="a")
    g.add_node("b", "thing", count=1, name="a")  # shared values interned once
    g.add_node("c", "other", blob=("nested", ("tuple", 3)))
    g.add_edge("a", "rel", "b")
    g.add_edge("b", "rel", "a")
    g.add_edge("a", "other_rel", "c")
    return g


class TestArrays:
    @pytest.mark.parametrize(
        "factory",
        [
            tricky_graph,
            lambda: validation_workload(150, rng=7),
            lambda: synthetic_social_network(n_rings=2, rng=3)[0],
            Graph,  # empty graph
        ],
    )
    def test_roundtrip_equality(self, factory):
        graph = factory()
        assert graph_from_arrays(graph_to_arrays(graph)) == graph

    def test_type_identity_preserved(self):
        # 1, 1.0 and True are == but must not collapse in the pool.
        g = tricky_graph()
        restored = graph_from_arrays(graph_to_arrays(g))
        assert restored.node("a").get("count") is not True
        assert type(restored.node("a").get("count")) is int
        assert type(restored.node("a").get("flag")) is bool
        assert type(restored.node("a").get("ratio")) is float

    def test_unhashable_attribute_values_survive(self):
        g = Graph()
        g.add_node("n", "thing", payload=["a", "list"])
        restored = graph_from_arrays(graph_to_arrays(g))
        assert restored.node("n").get("payload") == ["a", "list"]

    def test_flat_encoding_is_smaller_than_object_pickle(self):
        graph = validation_workload(400, rng=13)
        flat = len(pickle.dumps(graph_to_arrays(graph), pickle.HIGHEST_PROTOCOL))
        naive = len(pickle.dumps(graph, pickle.HIGHEST_PROTOCOL))
        assert flat < naive / 2


class TestSnapshot:
    def test_restore_without_index(self):
        graph = validation_workload(100, rng=1)
        detach_index(graph)
        snapshot = snapshot_graph(graph)
        assert not snapshot.indexed
        restored = snapshot.restore()
        assert restored == graph
        assert get_index(restored) is None

    def test_restore_rebuilds_index(self):
        graph = validation_workload(100, rng=1)
        attach_index(graph)
        snapshot = snapshot_graph(graph)
        assert snapshot.indexed
        restored = snapshot.restore()
        assert restored == graph
        index = get_index(restored)
        assert index is not None and index.synced_version == restored.version

    def test_ensure_index_attaches(self):
        graph = validation_workload(60, rng=2)
        detach_index(graph)
        snapshot = snapshot_graph(graph, ensure_index=True)
        assert snapshot.indexed
        assert get_index(graph) is not None

    def test_version_and_counts_recorded(self):
        graph = validation_workload(60, rng=2)
        snapshot = snapshot_graph(graph)
        assert snapshot.version == graph.version
        assert snapshot.num_nodes == graph.num_nodes
        assert snapshot.num_edges == graph.num_edges
        assert snapshot_size(snapshot) > 0
