"""CLI tests for the repair / discover / cover / pvalidate subcommands."""

import json

import pytest

from repro import paper
from repro.cli import main
from repro.deps.io import ged_from_dict, ged_to_dict
from repro.graph import GraphBuilder
from repro.graph.io import graph_from_json, graph_to_json


@pytest.fixture
def dirty_kb(tmp_path):
    dirty = (
        GraphBuilder()
        .node("fin", "country")
        .node("hel", "city", name="Helsinki")
        .node("spb", "city", name="Saint Petersburg")
        .edge("fin", "capital", "hel")
        .edge("fin", "capital", "spb")
        .build()
    )
    graph_path = tmp_path / "kb.json"
    graph_path.write_text(graph_to_json(dirty))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps([ged_to_dict(paper.phi2())]))
    return graph_path, rules_path


@pytest.fixture
def regular_kb(tmp_path):
    builder = GraphBuilder()
    for i in range(6):
        builder = (
            builder
            .node(f"p{i}", "person", type="programmer")
            .node(f"g{i}", "product", type="video game")
            .edge(f"p{i}", "create", f"g{i}")
        )
    graph_path = tmp_path / "clean.json"
    graph_path.write_text(graph_to_json(builder.build()))
    return graph_path


class TestRepairCommand:
    def test_repairs_and_writes_output(self, dirty_kb, tmp_path, capsys):
        graph_path, rules_path = dirty_kb
        out_path = tmp_path / "repaired.json"
        code = main(
            [
                "repair",
                "--graph", str(graph_path),
                "--rules", str(rules_path),
                "-o", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out
        repaired = graph_from_json(out_path.read_text())
        code2 = main(
            ["validate", "--graph", str(out_path), "--rules", str(rules_path)]
        )
        assert code2 == 0
        assert repaired.num_nodes >= 2

    def test_forward_only_flag(self, dirty_kb, capsys):
        graph_path, rules_path = dirty_kb
        code = main(
            [
                "repair",
                "--graph", str(graph_path),
                "--rules", str(rules_path),
                "--forward-only",
            ]
        )
        assert code == 0  # value repair suffices here

    def test_budget_zero_leaves_dirty(self, dirty_kb, capsys):
        graph_path, rules_path = dirty_kb
        code = main(
            [
                "repair",
                "--graph", str(graph_path),
                "--rules", str(rules_path),
                "--max-operations", "0",
            ]
        )
        assert code == 1


class TestDiscoverCommand:
    def test_discovers_rules_and_roundtrips(self, regular_kb, tmp_path, capsys):
        out_path = tmp_path / "mined.json"
        code = main(
            [
                "discover",
                "--graph", str(regular_kb),
                "--min-support", "3",
                "-o", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "discovered" in out
        payload = json.loads(out_path.read_text())
        assert payload
        rules = [ged_from_dict(entry) for entry in payload]
        code2 = main(["validate", "--graph", str(regular_kb), "--rules", str(out_path)])
        assert code2 == 0
        assert rules

    def test_no_rules_exits_1(self, regular_kb, capsys):
        code = main(
            ["discover", "--graph", str(regular_kb), "--min-support", "100"]
        )
        assert code == 1


class TestCoverCommand:
    def test_cover_shrinks_duplicated_rules(self, tmp_path, capsys):
        rules = [ged_to_dict(paper.phi2()), ged_to_dict(paper.phi2())]
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(json.dumps(rules))
        out_path = tmp_path / "cover.json"
        code = main(["cover", "--rules", str(rules_path), "-o", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 -> 1" in out
        assert len(json.loads(out_path.read_text())) == 1


class TestPvalidateCommand:
    def test_dirty_graph_exits_1(self, dirty_kb, capsys):
        graph_path, rules_path = dirty_kb
        code = main(
            [
                "pvalidate",
                "--graph", str(graph_path),
                "--rules", str(rules_path),
                "--workers", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "violation" in out and "balance" in out

    def test_matches_serial_validate(self, dirty_kb):
        graph_path, rules_path = dirty_kb
        serial = main(["validate", "--graph", str(graph_path), "--rules", str(rules_path)])
        parallel = main(
            [
                "pvalidate",
                "--graph", str(graph_path),
                "--rules", str(rules_path),
                "--workers", "4",
                "--backend", "thread",
            ]
        )
        assert serial == parallel == 1
