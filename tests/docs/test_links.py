"""The docs site stays navigable: tools/check_docs.py runs in tier 1.

CI's ``docs`` job runs the checker standalone; this wrapper makes a
broken link or unparseable fenced example fail the ordinary test run
too, so doc rot is caught before a PR ever reaches CI.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_docs_cover_readme_and_every_docs_page():
    pages = {p.name for p in check_docs.doc_pages()}
    assert "README.md" in pages
    on_disk = {p.name for p in (REPO_ROOT / "docs").glob("*.md")}
    assert on_disk <= pages, "every docs/*.md page must be checked"
    assert "index.md" in pages, "the docs site needs its index page"


def test_all_links_anchors_and_examples_check_clean(capsys):
    assert check_docs.main() == 0, capsys.readouterr().err


def test_checker_catches_a_broken_link(tmp_path, monkeypatch):
    """The checker itself must not be a silent no-op."""
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "README.md").write_text(
        "# Title\n\nSee [missing](docs/nope.md) and [bad](#no-such-heading).\n"
    )
    (docs / "page.md").write_text(
        "# Page\n\nBad block:\n\n```json\n{not json}\n```\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    problems = []
    cache = {}
    for page in check_docs.doc_pages():
        problems.extend(check_docs.check_page(page, cache))
    assert len(problems) == 3
    assert any("broken link" in p for p in problems)
    assert any("in-page anchor" in p for p in problems)
    assert any("does not parse" in p for p in problems)


def test_github_slugs():
    slug = check_docs.github_slug
    assert slug("8. Versioning") == "8-versioning"
    assert slug("The `GraphView` layer") == "the-graphview-layer"
    assert slug("Errors and goodbye") == "errors-and-goodbye"
