"""GDC tests: literals, validation, Example 9, satisfiability/implication."""

import pytest

from repro.deps import FALSE, ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.errors import DependencyError, LiteralError, ReductionError
from repro.extensions import (
    GDC,
    ComparisonLiteral,
    SearchStats,
    VariableComparisonLiteral,
    domain_constraint_gdc,
    gdc_find_violations,
    gdc_implies,
    gdc_literal_holds,
    gdc_satisfiable,
    gdc_validates,
    ged_as_gdc,
)
from repro.graph import GraphBuilder
from repro.patterns import Pattern


class TestGDCLiterals:
    def test_comparison_literal_construction(self):
        l = ComparisonLiteral("x", "age", "<", 18)
        assert l.variables == {"x"}
        assert l.negated() == ComparisonLiteral("x", "age", ">=", 18)

    def test_id_attribute_rejected(self):
        with pytest.raises(LiteralError):
            ComparisonLiteral("x", "id", "=", 1)
        with pytest.raises(LiteralError):
            VariableComparisonLiteral("x", "id", "<", "y", "a")

    def test_bad_operator_rejected(self):
        from repro.errors import ConstraintError

        with pytest.raises(ConstraintError):
            ComparisonLiteral("x", "age", "<>", 18)

    def test_ged_literals_upgrade(self):
        q = Pattern({"x": "a", "y": "a"})
        gdc = GDC(
            q,
            [ConstantLiteral("x", "A", 1)],
            [VariableLiteral("x", "B", "y", "B"), IdLiteral("x", "y")],
        )
        assert ComparisonLiteral("x", "A", "=", 1) in gdc.X
        assert VariableComparisonLiteral("x", "B", "=", "y", "B") in gdc.Y
        assert IdLiteral("x", "y") in gdc.Y

    def test_ged_as_gdc(self):
        q = Pattern({"x": "a"})
        ged = GED(q, [], [ConstantLiteral("x", "A", 1)])
        gdc = ged_as_gdc(ged)
        assert not gdc.uses_order_predicates

    def test_false_only_in_y(self):
        q = Pattern({"x": "a"})
        with pytest.raises(DependencyError):
            GDC(q, [FALSE], [])

    def test_literal_holds_semantics(self):
        g = GraphBuilder().node("n", "a", age=20).node("m", "a", age=30).build()
        assert gdc_literal_holds(g, ComparisonLiteral("x", "age", ">", 18), {"x": "n"})
        assert not gdc_literal_holds(g, ComparisonLiteral("x", "age", "<", 18), {"x": "n"})
        assert gdc_literal_holds(
            g, VariableComparisonLiteral("x", "age", "<", "y", "age"), {"x": "n", "y": "m"}
        )
        # Missing attribute never holds, for any predicate.
        assert not gdc_literal_holds(g, ComparisonLiteral("x", "salary", "!=", 0), {"x": "n"})

    def test_incomparable_types_fail_order_predicates(self):
        g = GraphBuilder().node("n", "a", v="text").build()
        assert not gdc_literal_holds(g, ComparisonLiteral("x", "v", "<", 5), {"x": "n"})
        assert gdc_literal_holds(g, ComparisonLiteral("x", "v", "!=", 5), {"x": "n"})


class TestGDCValidation:
    def adult_rule(self) -> GDC:
        """Accounts must be ≥ 13 years old (a denial constraint)."""
        return GDC(
            Pattern({"x": "account"}),
            [ComparisonLiteral("x", "age", "<", 13)],
            [FALSE],
            name="age>=13",
        )

    def test_violation_found(self):
        g = GraphBuilder().node("kid", "account", age=9).build()
        violations = gdc_find_violations(g, [self.adult_rule()])
        assert len(violations) == 1
        assert violations[0].assignment["x"] == "kid"

    def test_clean_graph_validates(self):
        g = GraphBuilder().node("grown", "account", age=22).build()
        assert gdc_validates(g, [self.adult_rule()])

    def test_missing_attribute_does_not_fire(self):
        g = GraphBuilder().node("anon", "account").build()
        assert gdc_validates(g, [self.adult_rule()])

    def test_order_y_literal(self):
        """Y with a built-in predicate: discount < price."""
        gdc = GDC(
            Pattern({"x": "offer"}),
            [],
            [VariableComparisonLiteral("x", "discount", "<", "x", "price")],
        )
        good = GraphBuilder().node("o", "offer", discount=5, price=10).build()
        bad = GraphBuilder().node("o", "offer", discount=15, price=10).build()
        assert gdc_validates(good, [gdc])
        assert not gdc_validates(bad, [gdc])

    def test_limit(self):
        g = (
            GraphBuilder()
            .node("k1", "account", age=1)
            .node("k2", "account", age=2)
            .build()
        )
        assert len(gdc_find_violations(g, [self.adult_rule()], limit=1)) == 1


class TestExample9DomainConstraints:
    def test_domain_constraint_validates(self):
        sigma = domain_constraint_gdc("item", "A", [0, 1])
        good = GraphBuilder().node("i", "item", A=1).build()
        assert gdc_validates(good, sigma)

    def test_missing_attribute_violates_existence(self):
        sigma = domain_constraint_gdc("item", "A", [0, 1])
        missing = GraphBuilder().node("i", "item").build()
        assert not gdc_validates(missing, sigma)

    def test_out_of_domain_value_violates(self):
        sigma = domain_constraint_gdc("item", "A", [0, 1])
        bad = GraphBuilder().node("i", "item", A=7).build()
        assert not gdc_validates(bad, sigma)

    def test_domain_constraints_satisfiable(self):
        sigma = domain_constraint_gdc("item", "A", [0, 1])
        ok, witness = gdc_satisfiable(sigma)
        assert ok
        assert witness.node_ids  # non-empty witness
        assert gdc_validates(witness, sigma)


class TestGDCSatisfiability:
    def test_empty_sigma(self):
        ok, witness = gdc_satisfiable([])
        assert ok and witness.num_nodes == 1

    def test_contradictory_bounds_unsat(self):
        q = Pattern({"x": "item"})
        sigma = [
            GDC(q, [], [ComparisonLiteral("x", "v", "<", 3)]),
            GDC(q, [], [ComparisonLiteral("x", "v", ">", 4)]),
        ]
        ok, witness = gdc_satisfiable(sigma)
        assert not ok and witness is None

    def test_window_satisfiable(self):
        q = Pattern({"x": "item"})
        sigma = [
            GDC(q, [], [ComparisonLiteral("x", "v", ">", 3)]),
            GDC(q, [], [ComparisonLiteral("x", "v", "<", 4)]),
        ]
        ok, witness = gdc_satisfiable(sigma)
        assert ok
        value = witness.node(witness.node_ids[0]).get("v")
        assert value is not None and 3 < value < 4

    def test_forbidding_everything_unsat(self):
        q = Pattern({"x": "item"})
        sigma = [GDC(q, [], [FALSE])]
        ok, _ = gdc_satisfiable(sigma)
        assert not ok

    def test_ne_escape_hatch(self):
        """x.v ≠ 0 is satisfiable by picking any other value."""
        q = Pattern({"x": "item"})
        sigma = [GDC(q, [], [ComparisonLiteral("x", "v", "!=", 0)])]
        ok, witness = gdc_satisfiable(sigma)
        assert ok and gdc_validates(witness, sigma)

    def test_incomparable_token_needed(self):
        """X = (v < 5 is false) ∧ (v > 5 is false) ∧ (v ≠ 5) needs a
        non-numeric value; the token component provides one."""
        q = Pattern({"x": "item"})
        sigma = [
            GDC(q, [], [ComparisonLiteral("x", "v", "!=", 5)]),
            GDC(q, [ComparisonLiteral("x", "v", "<", 5)], [FALSE]),
            GDC(q, [ComparisonLiteral("x", "v", ">", 5)], [FALSE]),
            GDC(q, [], [VariableComparisonLiteral("x", "v", "=", "x", "v")]),
        ]
        ok, witness = gdc_satisfiable(sigma)
        assert ok
        value = witness.node(witness.node_ids[0]).get("v")
        assert isinstance(value, str)

    def test_stats_counting(self):
        stats = SearchStats()
        q = Pattern({"x": "item"})
        gdc_satisfiable([GDC(q, [], [ComparisonLiteral("x", "v", "=", 1)])], stats=stats)
        assert stats.candidates >= 1 and stats.partitions >= 1

    def test_size_guard(self):
        big = Pattern({f"x{i}": "a" for i in range(9)})
        with pytest.raises(ReductionError):
            gdc_satisfiable([GDC(big, [], [FALSE])])


class TestGDCImplication:
    def test_reflexive_implication(self):
        q = Pattern({"x": "item"})
        phi = GDC(q, [], [ComparisonLiteral("x", "v", "=", 1)])
        implied, _ = gdc_implies([phi], phi)
        assert implied

    def test_order_weakening(self):
        """v = 1 implies v < 2."""
        q = Pattern({"x": "item"})
        sigma = [GDC(q, [], [ComparisonLiteral("x", "v", "=", 1)])]
        phi = GDC(q, [], [ComparisonLiteral("x", "v", "<", 2)])
        implied, _ = gdc_implies(sigma, phi)
        assert implied

    def test_non_implication_with_counterexample(self):
        q = Pattern({"x": "item"})
        sigma = [GDC(q, [], [ComparisonLiteral("x", "v", "<", 10)])]
        phi = GDC(q, [], [ComparisonLiteral("x", "v", "<", 2)])
        implied, counterexample = gdc_implies(sigma, phi)
        assert not implied
        assert gdc_validates(counterexample, sigma)
        assert not gdc_validates(counterexample, [phi])

    def test_transitive_bounds(self):
        """v < 2 implies v < 5 but not vice versa."""
        q = Pattern({"x": "item"})
        lt2 = GDC(q, [], [ComparisonLiteral("x", "v", "<", 2)])
        lt5 = GDC(q, [], [ComparisonLiteral("x", "v", "<", 5)])
        assert gdc_implies([lt2], lt5)[0]
        assert not gdc_implies([lt5], lt2)[0]
