"""Round-trip tests for extension dependency serialization."""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import FALSE, ConstantLiteral, IdLiteral, VariableLiteral
from repro.errors import DependencyError
from repro.extensions.gdc import GDC, ComparisonLiteral, VariableComparisonLiteral
from repro.extensions.gedvee import GEDVee
from repro.extensions.io import (
    dependencies_from_json,
    dependencies_to_json,
    dependency_from_dict,
    dependency_to_dict,
    gdc_from_dict,
    gdc_to_dict,
    gedvee_from_dict,
    gedvee_to_dict,
    tgd_from_dict,
    tgd_to_dict,
)
from repro.extensions.tgd import GraphTGD
from repro.patterns.pattern import Pattern


def q() -> Pattern:
    return Pattern({"x": "item", "y": "item"}, [("x", "next", "y")])


class TestGdcRoundTrip:
    def test_comparison_literals(self):
        gdc = GDC(
            q(),
            [ComparisonLiteral("x", "A", "<", 10)],
            [VariableComparisonLiteral("x", "A", "<=", "y", "A")],
            name="ordered",
        )
        assert gdc_from_dict(gdc_to_dict(gdc)) == gdc

    def test_mixed_literals(self):
        gdc = GDC(
            q(),
            [ConstantLiteral("x", "A", 1), IdLiteral("x", "y")],
            [FALSE],
            name="forbid",
        )
        back = gdc_from_dict(gdc_to_dict(gdc))
        assert back == gdc
        assert back.name == "forbid"

    def test_all_operators(self):
        for op in ("=", "!=", "<", ">", "<=", ">="):
            gdc = GDC(q(), [ComparisonLiteral("x", "A", op, 5)], [FALSE])
            assert gdc_from_dict(gdc_to_dict(gdc)) == gdc


class TestGedveeRoundTrip:
    def test_domain_constraint(self):
        vee = GEDVee(
            Pattern({"x": "item"}),
            [VariableLiteral("x", "A", "x", "A")],
            [ConstantLiteral("x", "A", 0), ConstantLiteral("x", "A", 1)],
            name="boolean-A",
        )
        assert gedvee_from_dict(gedvee_to_dict(vee)) == vee

    def test_empty_disjunction(self):
        vee = GEDVee(Pattern({"x": "item"}), [ConstantLiteral("x", "bad", 1)], [])
        back = gedvee_from_dict(gedvee_to_dict(vee))
        assert back == vee
        assert back.is_forbidding


class TestTgdRoundTrip:
    def test_existential_tgd(self):
        tgd = GraphTGD(
            Pattern({"x": "person"}),
            X=[ConstantLiteral("x", "active", 1)],
            head_nodes={"a": "account"},
            head_edges=[("x", "owns", "a")],
            Y=[ConstantLiteral("a", "status", "open")],
            name="active-has-account",
        )
        back = tgd_from_dict(tgd_to_dict(tgd))
        assert back.body == tgd.body
        assert back.X == tgd.X
        assert back.head_nodes == tgd.head_nodes
        assert back.head_edges == tgd.head_edges
        assert back.Y == tgd.Y
        assert back.name == tgd.name

    def test_full_tgd(self):
        tgd = GraphTGD(
            Pattern({"x": "a", "y": "a"}, [("x", "e", "y")]),
            head_edges=[("y", "e", "x")],
        )
        back = tgd_from_dict(tgd_to_dict(tgd))
        assert back.head_edges == (("y", "e", "x"),)
        assert back.is_full


class TestMixedDocuments:
    def test_heterogeneous_rule_file(self):
        deps = [
            GED(q(), [], [ConstantLiteral("x", "A", 1)], name="plain"),
            GDC(q(), [ComparisonLiteral("x", "A", ">", 3)], [FALSE], name="cap"),
            GEDVee(Pattern({"x": "item"}), [], [ConstantLiteral("x", "A", 0)], name="v"),
            GraphTGD(
                Pattern({"x": "person"}),
                head_nodes={"a": "account"},
                head_edges=[("x", "owns", "a")],
            ),
        ]
        loaded = dependencies_from_json(dependencies_to_json(deps))
        assert isinstance(loaded[0], GED)
        assert isinstance(loaded[1], GDC)
        assert isinstance(loaded[2], GEDVee)
        assert isinstance(loaded[3], GraphTGD)
        assert loaded[0] == deps[0]
        assert loaded[1] == deps[1]
        assert loaded[2] == deps[2]

    def test_untagged_document_is_a_ged(self):
        from repro.deps.io import ged_to_dict

        ged = GED(q(), [], [ConstantLiteral("x", "A", 1)])
        assert dependency_from_dict(ged_to_dict(ged)) == ged

    def test_unknown_type_rejected(self):
        with pytest.raises(DependencyError):
            dependency_from_dict({"type": "mystery"})

    def test_unserializable_rejected(self):
        with pytest.raises(DependencyError):
            dependency_to_dict(object())

    def test_single_dict_document(self):
        ged = GED(q(), [], [ConstantLiteral("x", "A", 1)])
        (loaded,) = dependencies_from_json(
            dependencies_to_json([ged])[1:-1]  # strip list brackets
        )
        assert loaded == ged
