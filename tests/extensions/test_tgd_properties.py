"""Property-based tests for graph TGDs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.tgd import (
    GraphTGD,
    chase_with_tgds,
    tgd_find_unsatisfied,
    tgd_validates,
    weakly_acyclic,
)
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern


def random_bipartite(seed: int, people: int = 4, accounts: int = 3) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for i in range(people):
        g.add_node(f"p{i}", "person")
    for j in range(accounts):
        g.add_node(f"a{j}", "account")
    for i in range(people):
        for j in range(accounts):
            if rng.random() < 0.4:
                g.add_edge(f"p{i}", "owns", f"a{j}")
    return g


def ownership_tgd() -> GraphTGD:
    return GraphTGD(
        Pattern({"x": "person"}),
        head_nodes={"a": "account"},
        head_edges=[("x", "owns", "a")],
        name="person-has-account",
    )


class TestChaseProperties:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_chase_fixpoint_validates(self, seed):
        """On every input, the (WA) chase terminates at a graph that
        satisfies the TGDs."""
        g = random_bipartite(seed)
        tgds = [ownership_tgd()]
        assert weakly_acyclic(tgds)
        result = chase_with_tgds(g, tgds)
        assert result.terminated
        assert tgd_validates(result.graph, tgds)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_chase_is_conservative(self, seed):
        """The chase never deletes: all original nodes and edges survive."""
        g = random_bipartite(seed)
        result = chase_with_tgds(g, [ownership_tgd()])
        for node in g.nodes:
            assert result.graph.has_node(node.id)
        assert g.edges <= result.graph.edges

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_restricted_chase_invents_only_for_unsatisfied(self, seed):
        """Invented nulls are bounded by the initially unsatisfied
        bodies (this TGD set triggers no cascades)."""
        g = random_bipartite(seed)
        tgds = [ownership_tgd()]
        need = len(tgd_find_unsatisfied(g, tgds))
        result = chase_with_tgds(g, tgds)
        assert len(result.invented_nodes) == need

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_chase_idempotent(self, seed):
        g = random_bipartite(seed)
        tgds = [ownership_tgd()]
        once = chase_with_tgds(g, tgds)
        twice = chase_with_tgds(once.graph, tgds)
        assert twice.invented_nodes == []
        assert twice.graph == once.graph

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_validation_monotone_under_chase(self, seed):
        """A graph already satisfying the TGDs is untouched."""
        g = random_bipartite(seed)
        tgds = [ownership_tgd()]
        if tgd_validates(g, tgds):
            result = chase_with_tgds(g, tgds)
            assert result.graph == g
