"""Tests for graph TGDs: validation, weak acyclicity, restricted chase."""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, IdLiteral, VariableLiteral
from repro.errors import DependencyError
from repro.extensions.tgd import (
    GraphTGD,
    attribute_existence_as_tgd,
    chase_with_tgds,
    tgd_find_unsatisfied,
    tgd_validates,
    weakly_acyclic,
)
from repro.graph.graph import Graph
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern


def person_account_tgd() -> GraphTGD:
    """Every person has an account (existential head)."""
    return GraphTGD(
        Pattern({"x": "person"}),
        head_nodes={"a": "account"},
        head_edges=[("x", "owns", "a")],
        name="person-has-account",
    )


class TestConstruction:
    def test_valid_tgd(self):
        tgd = person_account_tgd()
        assert tgd.existential_variables == ("a",)
        assert not tgd.is_full

    def test_full_tgd(self):
        tgd = GraphTGD(
            Pattern({"x": "person", "y": "person"}, [("x", "knows", "y")]),
            head_edges=[("y", "knows", "x")],
            name="symmetric-knows",
        )
        assert tgd.is_full

    def test_empty_head_rejected(self):
        with pytest.raises(DependencyError):
            GraphTGD(Pattern({"x": "person"}))

    def test_existential_clash_with_body_rejected(self):
        with pytest.raises(DependencyError):
            GraphTGD(
                Pattern({"x": "person"}),
                head_nodes={"x": "account"},
                head_edges=[("x", "owns", "x")],
            )

    def test_wildcard_head_label_rejected(self):
        with pytest.raises(DependencyError):
            GraphTGD(
                Pattern({"x": "person"}),
                head_nodes={"a": WILDCARD},
                head_edges=[("x", "owns", "a")],
            )

    def test_wildcard_head_edge_rejected(self):
        with pytest.raises(DependencyError):
            GraphTGD(
                Pattern({"x": "person", "y": "person"}, [("x", "knows", "y")]),
                head_edges=[("x", WILDCARD, "y")],
            )

    def test_id_literal_in_head_rejected(self):
        with pytest.raises(DependencyError):
            GraphTGD(
                Pattern({"x": "person", "y": "person"}, [("x", "knows", "y")]),
                Y=[IdLiteral("x", "y")],
            )

    def test_unknown_head_edge_variable_rejected(self):
        with pytest.raises(DependencyError):
            GraphTGD(
                Pattern({"x": "person"}),
                head_nodes={"a": "account"},
                head_edges=[("x", "owns", "b")],
            )


class TestValidation:
    def test_satisfied(self):
        g = Graph()
        g.add_node("p", "person")
        g.add_node("acc", "account")
        g.add_edge("p", "owns", "acc")
        assert tgd_validates(g, [person_account_tgd()])

    def test_unsatisfied(self):
        g = Graph()
        g.add_node("p", "person")
        assert not tgd_validates(g, [person_account_tgd()])
        (witness,) = tgd_find_unsatisfied(g, [person_account_tgd()])
        assert witness.assignment == {"x": "p"}

    def test_body_condition_filters(self):
        tgd = GraphTGD(
            Pattern({"x": "person"}),
            X=[ConstantLiteral("x", "active", 1)],
            head_nodes={"a": "account"},
            head_edges=[("x", "owns", "a")],
        )
        g = Graph()
        g.add_node("p", "person", {"active": 0})
        assert tgd_validates(g, [tgd])  # premise fails, vacuous
        g.set_attribute("p", "active", 1)
        assert not tgd_validates(g, [tgd])

    def test_head_literal_checked(self):
        tgd = GraphTGD(
            Pattern({"x": "person"}),
            head_nodes={"a": "account"},
            head_edges=[("x", "owns", "a")],
            Y=[ConstantLiteral("a", "status", "open")],
        )
        g = Graph()
        g.add_node("p", "person")
        g.add_node("acc", "account", {"status": "closed"})
        g.add_edge("p", "owns", "acc")
        assert not tgd_validates(g, [tgd])
        g.set_attribute("acc", "status", "open")
        assert tgd_validates(g, [tgd])

    def test_full_tgd_validation(self):
        sym = GraphTGD(
            Pattern({"x": "person", "y": "person"}, [("x", "knows", "y")]),
            head_edges=[("y", "knows", "x")],
        )
        g = Graph()
        g.add_node("a", "person")
        g.add_node("b", "person")
        g.add_edge("a", "knows", "b")
        assert not tgd_validates(g, [sym])
        g.add_edge("b", "knows", "a")
        assert tgd_validates(g, [sym])

    def test_attribute_existence_tgd_matches_ged_semantics(self):
        """The Section 3 attribute-existence constraint: GED and TGD
        formulations agree on every graph."""
        tgd = attribute_existence_as_tgd("item", "A")
        ged = GED(
            Pattern({"x": "item"}), [], [VariableLiteral("x", "A", "x", "A")]
        )
        from repro.reasoning.validation import validates

        g1 = Graph()
        g1.add_node("i", "item", {"A": 7})
        g2 = Graph()
        g2.add_node("i", "item")
        for g in (g1, g2):
            assert tgd_validates(g, [tgd]) == validates(g, [ged])


class TestWeakAcyclicity:
    def test_single_generating_tgd_is_wa(self):
        assert weakly_acyclic([person_account_tgd()])

    def test_full_tgds_always_wa(self):
        sym = GraphTGD(
            Pattern({"x": "person", "y": "person"}, [("x", "knows", "y")]),
            head_edges=[("y", "knows", "x")],
        )
        assert weakly_acyclic([sym])

    def test_mutual_generation_not_wa(self):
        t1 = GraphTGD(
            Pattern({"x": "person"}),
            head_nodes={"a": "account"},
            head_edges=[("x", "owns", "a")],
        )
        t2 = GraphTGD(
            Pattern({"a": "account"}),
            head_nodes={"p": "person"},
            head_edges=[("p", "owns", "a")],
        )
        assert not weakly_acyclic([t1, t2])

    def test_self_generation_not_wa(self):
        t = GraphTGD(
            Pattern({"x": "person"}),
            head_nodes={"p": "person"},
            head_edges=[("x", "parent", "p")],
        )
        assert not weakly_acyclic([t])

    def test_wildcard_body_conservative(self):
        t = GraphTGD(
            Pattern({"x": WILDCARD}),
            head_nodes={"a": "thing"},
            head_edges=[("x", "rel", "a")],
        )
        # wildcard body depends on every label incl. "thing" -> special cycle
        assert not weakly_acyclic([t])


class TestTgdChase:
    def test_chase_creates_missing_structure(self):
        g = Graph()
        g.add_node("p", "person")
        result = chase_with_tgds(g, [person_account_tgd()])
        assert result.terminated
        assert result.consistent
        assert len(result.invented_nodes) == 1
        assert tgd_validates(result.graph, [person_account_tgd()])

    def test_restricted_chase_does_not_duplicate(self):
        g = Graph()
        g.add_node("p", "person")
        g.add_node("acc", "account")
        g.add_edge("p", "owns", "acc")
        result = chase_with_tgds(g, [person_account_tgd()])
        assert result.terminated
        assert result.invented_nodes == []
        assert result.graph == g

    def test_cascading_wa_set_terminates(self):
        t1 = GraphTGD(
            Pattern({"x": "person"}),
            head_nodes={"a": "account"},
            head_edges=[("x", "owns", "a")],
        )
        t2 = GraphTGD(
            Pattern({"a": "account"}),
            head_nodes={"w": "wallet"},
            head_edges=[("a", "holds", "w")],
        )
        assert weakly_acyclic([t1, t2])
        g = Graph()
        g.add_node("p", "person")
        result = chase_with_tgds(g, [t1, t2])
        assert result.terminated
        assert len(result.invented_nodes) == 2
        assert tgd_validates(result.graph, [t1, t2])

    def test_non_terminating_set_hits_budget(self):
        t = GraphTGD(
            Pattern({"x": "person"}),
            head_nodes={"p": "person"},
            head_edges=[("x", "parent", "p")],
        )
        result = chase_with_tgds(_single_person(), [t], max_rounds=5)
        assert not result.terminated
        assert result.reason == "round budget exhausted"
        assert len(result.invented_nodes) >= 5

    def test_interleaved_ged_merges_nulls(self):
        """TGD invents an account per person; a GED key says one account
        per person — the invented duplicates must merge."""
        t = person_account_tgd()
        key = GED(
            Pattern(
                {"x": "person", "a": "account", "b": "account"},
                [("x", "owns", "a"), ("x", "owns", "b")],
            ),
            [],
            [IdLiteral("a", "b")],
        )
        g = Graph()
        g.add_node("p", "person")
        g.add_node("acc", "account")
        g.add_edge("p", "owns", "acc")
        result = chase_with_tgds(g, [t], geds=[key])
        assert result.terminated
        assert result.consistent
        accounts = [n for n in result.graph.nodes if n.label == "account"]
        assert len(accounts) == 1

    def test_interleaved_ged_conflict_reported(self):
        t = GraphTGD(
            Pattern({"x": "person"}),
            head_nodes={"a": "account"},
            head_edges=[("x", "owns", "a")],
            Y=[ConstantLiteral("a", "tier", "new")],
        )
        clash = GED(
            Pattern({"x": "person", "a": "account"}, [("x", "owns", "a")]),
            [],
            [ConstantLiteral("a", "tier", "legacy")],
        )
        g = Graph()
        g.add_node("p", "person")
        result = chase_with_tgds(g, [t], geds=[clash])
        assert not result.consistent

    def test_head_literal_value_propagation(self):
        t = GraphTGD(
            Pattern({"x": "person", "y": "person"}, [("x", "spouse", "y")]),
            Y=[VariableLiteral("x", "surname", "y", "surname")],
        )
        g = Graph()
        g.add_node("a", "person", {"surname": "Curie"})
        g.add_node("b", "person")
        g.add_edge("a", "spouse", "b")
        result = chase_with_tgds(g, [t])
        assert result.terminated
        assert result.graph.node("b").get("surname") == "Curie"


def _single_person() -> Graph:
    g = Graph()
    g.add_node("p", "person")
    return g
