"""Point-algebra order solver: unit tests + brute-force cross-check."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstraintError
from repro.extensions import Const, Constraint, OrderSolver, solve_constraints
from repro.extensions.predicates import evaluate


def c(lhs, op, rhs) -> Constraint:
    wrap = lambda t: Const(t) if isinstance(t, (int, float)) else t
    return Constraint(wrap(lhs), op, wrap(rhs))


class TestBasics:
    def test_empty_is_satisfiable(self):
        assert solve_constraints([]) == {}

    def test_simple_chain(self):
        sol = solve_constraints([c("x", "<", "y"), c("y", "<", "z")])
        assert sol["x"] < sol["y"] < sol["z"]

    def test_equality_merges(self):
        sol = solve_constraints([c("x", "=", "y"), c("y", "=", 5)])
        assert sol["x"] == sol["y"] == 5

    def test_strict_cycle_unsat(self):
        assert solve_constraints([c("x", "<", "y"), c("y", "<", "x")]) is None

    def test_nonstrict_cycle_forces_equality(self):
        sol = solve_constraints([c("x", "<=", "y"), c("y", "<=", "x")])
        assert sol["x"] == sol["y"]

    def test_nonstrict_cycle_with_ne_unsat(self):
        assert (
            solve_constraints(
                [c("x", "<=", "y"), c("y", "<=", "x"), c("x", "!=", "y")]
            )
            is None
        )

    def test_constants_order_respected(self):
        sol = solve_constraints([c("x", ">", 3), c("x", "<", 4)])
        assert 3 < sol["x"] < 4

    def test_contradictory_constant_bounds(self):
        assert solve_constraints([c("x", "<", 3), c("x", ">", 4)]) is None

    def test_pinning_between_equal_bounds(self):
        sol = solve_constraints([c("x", ">=", 3), c("x", "<=", 3)])
        assert sol["x"] == 3

    def test_pinning_then_ne_unsat(self):
        assert (
            solve_constraints([c("x", ">=", 3), c("x", "<=", 3), c("x", "!=", 3)])
            is None
        )

    def test_constant_vs_constant(self):
        assert solve_constraints([c(3, "<", 4)]) == {Const(3): 3, Const(4): 4}
        assert solve_constraints([c(4, "<", 3)]) is None

    def test_flipped_constant_side(self):
        sol = solve_constraints([c(3, "<", "x")])
        assert sol["x"] > 3

    def test_ne_between_free_variables(self):
        sol = solve_constraints([c("x", "!=", "y")])
        assert sol["x"] != sol["y"]

    def test_ne_with_tight_window(self):
        sol = solve_constraints(
            [c("x", ">", 0), c("x", "<", 1), c("y", ">", 0), c("y", "<", 1), c("x", "!=", "y")]
        )
        assert 0 < sol["x"] < 1 and 0 < sol["y"] < 1 and sol["x"] != sol["y"]

    def test_equality_through_le_chain_with_constants(self):
        """x ≤ y ≤ 3 and x ≥ 3 pin both to 3."""
        sol = solve_constraints([c("x", "<=", "y"), c("y", "<=", 3), c("x", ">=", 3)])
        assert sol["x"] == sol["y"] == 3

    def test_bad_operator_rejected(self):
        with pytest.raises(ConstraintError):
            OrderSolver([Constraint("x", "<>", "y")])

    def test_non_numeric_constant_rejected(self):
        with pytest.raises(ConstraintError):
            Const("hello")


def brute_force_satisfiable(constraints, variables, grid):
    """Ground-truth satisfiability over a value grid."""
    for values in itertools.product(grid, repeat=len(variables)):
        binding = dict(zip(variables, values))

        def val(term):
            return term.value if isinstance(term, Const) else binding[term]

        if all(evaluate(val(k.lhs), k.op, val(k.rhs)) for k in constraints):
            return True
    return False


class TestAgainstBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_solver_agrees_with_grid_search(self, seed):
        """On integer-expressible instances the solver and a grid search
        agree.  Grid granularity 1/4 over [-1, 4] suffices because all
        constants are drawn from {0, 1, 2, 3} and there are at most 3
        variables: a satisfiable instance places each variable on a
        constant or strictly between adjacent landmarks, and 3 strictly
        ordered variables fit in one unit gap at its quarter points
        (dense-order argument — half-integer granularity was *not*
        enough: ``x >= 2, x != 2, x < y, y < 3`` is satisfiable, but on
        the half grid the only admissible x is 2.5, and no half-integer
        y lies strictly between 2.5 and 3).  UNSAT instances have no
        solution anywhere."""
        rng = random.Random(seed)
        variables = ["x", "y", "z"][: rng.randint(1, 3)]
        constraints = []
        for _ in range(rng.randint(1, 5)):
            lhs = rng.choice(variables)
            op = rng.choice(["=", "!=", "<", ">", "<=", ">="])
            if rng.random() < 0.5:
                rhs = Const(rng.choice([0, 1, 2, 3]))
            else:
                rhs = rng.choice(variables)
            constraints.append(Constraint(lhs, op, rhs))
        solution = solve_constraints(constraints)
        grid = [v / 4 for v in range(-4, 17)]
        expected = brute_force_satisfiable(constraints, variables, grid)
        assert (solution is not None) == expected
        if solution is not None:
            # The witness must actually satisfy every constraint.
            def val(term):
                return term.value if isinstance(term, Const) else solution[term]

            for k in constraints:
                assert evaluate(val(k.lhs), k.op, val(k.rhs)), (k, solution)
