"""GED∨ tests: Example 10, disjunctive chase vs small-model search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps import FALSE, ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.errors import DependencyError
from repro.extensions import (
    DisjunctiveChaseStats,
    GEDVee,
    disjunctive_chase_satisfiable,
    domain_constraint_vee,
    ged_to_gedvees,
    vee_implies,
    vee_satisfiable_smallmodel,
    vee_validates,
)
from repro.graph import GraphBuilder
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import is_satisfiable


class TestGEDVeeBasics:
    def test_empty_y_is_forbidding(self):
        q = Pattern({"x": "a"})
        dep = GEDVee(q, [ConstantLiteral("x", "bad", 1)], [])
        assert dep.is_forbidding

    def test_false_absorbed_in_disjunction(self):
        q = Pattern({"x": "a"})
        dep = GEDVee(q, [], [FALSE, ConstantLiteral("x", "A", 1)])
        assert dep.Y == frozenset({ConstantLiteral("x", "A", 1)})

    def test_false_not_in_x(self):
        q = Pattern({"x": "a"})
        with pytest.raises(DependencyError):
            GEDVee(q, [FALSE], [])

    def test_ged_to_gedvees(self):
        q = Pattern({"x": "a"})
        ged = GED(q, [], [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "B", 2)])
        vees = ged_to_gedvees(ged)
        assert len(vees) == 2
        assert all(len(v.Y) == 1 for v in vees)

    def test_forbidding_ged_to_gedvee(self):
        q = Pattern({"x": "a"})
        ged = GED(q, [ConstantLiteral("x", "bad", 1)], [FALSE])
        vees = ged_to_gedvees(ged)
        assert len(vees) == 1 and vees[0].is_forbidding


class TestExample10:
    def test_domain_constraint_vee(self):
        psi = domain_constraint_vee("item", "A", [0, 1])
        ok_graph = GraphBuilder().node("i", "item", A=0).build()
        bad_value = GraphBuilder().node("i", "item", A=5).build()
        missing = GraphBuilder().node("i", "item").build()
        assert vee_validates(ok_graph, [psi])
        assert not vee_validates(bad_value, [psi])
        # Y's disjuncts all require the attribute: absence violates.
        assert not vee_validates(missing, [psi])

    def test_domain_constraint_satisfiable_both_ways(self):
        psi = domain_constraint_vee("item", "A", [0, 1])
        ok_chase, witness_chase = disjunctive_chase_satisfiable([psi])
        ok_small, witness_small = vee_satisfiable_smallmodel([psi])
        assert ok_chase and ok_small
        assert vee_validates(witness_chase, [psi])
        assert vee_validates(witness_small, [psi])
        value = witness_chase.node(witness_chase.node_ids[0]).get("A")
        assert value in (0, 1)


class TestDisjunctiveChase:
    def test_branching_resolves_conflict(self):
        """One disjunct conflicts with another rule; the chase must
        find the other branch."""
        q = Pattern({"x": "item"})
        choose = GEDVee(q, [], [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)])
        forbid_1 = GEDVee(q, [ConstantLiteral("x", "A", 1)], [])  # A=1 forbidden
        ok, witness = disjunctive_chase_satisfiable([choose, forbid_1])
        assert ok
        assert witness.node(witness.node_ids[0]).get("A") == 2

    def test_all_branches_dead_unsat(self):
        q = Pattern({"x": "item"})
        choose = GEDVee(q, [], [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)])
        forbid_1 = GEDVee(q, [ConstantLiteral("x", "A", 1)], [])
        forbid_2 = GEDVee(q, [ConstantLiteral("x", "A", 2)], [])
        ok, witness = disjunctive_chase_satisfiable([choose, forbid_1, forbid_2])
        assert not ok and witness is None

    def test_forbidding_with_empty_x_unsat(self):
        q = Pattern({"x": "item"})
        ok, _ = disjunctive_chase_satisfiable([GEDVee(q, [], [])])
        assert not ok

    def test_id_disjunction(self):
        """Choose which pair of nodes to identify; one choice conflicts."""
        q = Pattern({"x": "a", "y": "a", "z": "b"})
        dep = GEDVee(q, [], [IdLiteral("x", "y"), IdLiteral("x", "z")])
        ok, witness = disjunctive_chase_satisfiable([dep])
        assert ok  # x = y works (same label); x = z may conflict but is not needed
        assert vee_validates(witness, [dep])

    def test_stats_track_branches(self):
        q = Pattern({"x": "item"})
        choose = GEDVee(q, [], [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)])
        forbid_1 = GEDVee(q, [ConstantLiteral("x", "A", 1)], [])
        stats = DisjunctiveChaseStats()
        disjunctive_chase_satisfiable([choose, forbid_1], stats=stats)
        assert stats.branches >= 2  # at least the root and one choice


class TestGEDVeeImplication:
    def test_reflexive(self):
        psi = domain_constraint_vee("item", "A", [0, 1])
        implied, _ = vee_implies([psi], psi)
        assert implied

    def test_weakening_disjunction(self):
        """A = 0 implies A = 0 ∨ A = 1."""
        q = Pattern({"x": "item"})
        strong = GEDVee(q, [], [ConstantLiteral("x", "A", 0)])
        weak = domain_constraint_vee("item", "A", [0, 1])
        implied, _ = vee_implies([strong], weak)
        assert implied

    def test_strengthening_fails(self):
        """A ∈ {0, 1} does not imply A = 0."""
        q = Pattern({"x": "item"})
        weak = domain_constraint_vee("item", "A", [0, 1])
        strong = GEDVee(q, [], [ConstantLiteral("x", "A", 0)])
        implied, counterexample = vee_implies([weak], strong)
        assert not implied
        assert vee_validates(counterexample, [weak])
        assert not vee_validates(counterexample, [strong])


def _random_vee_sigma(seed: int) -> list[GEDVee]:
    rng = random.Random(seed)
    sigma = []
    budget = 4
    while budget > 0 and (not sigma or rng.random() < 0.6):
        k = rng.randint(1, min(2, budget))
        budget -= k
        labels = {f"x{i}": rng.choice(["a", "b", WILDCARD]) for i in range(k)}
        variables = list(labels)
        def lit():
            roll = rng.random()
            v1, v2 = rng.choice(variables), rng.choice(variables)
            if roll < 0.5:
                return ConstantLiteral(v1, "A", rng.choice([1, 2]))
            if roll < 0.8:
                return VariableLiteral(v1, "A", v2, "A")
            return IdLiteral(v1, v2)
        X = [lit()] if rng.random() < 0.5 else []
        Y = [lit() for _ in range(rng.randint(0, 2))]
        sigma.append(GEDVee(Pattern(labels), X, Y))
    return sigma


class TestChaseAgainstSmallModel:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_two_procedures_agree(self, seed):
        """The disjunctive chase and the small-model search decide the
        same satisfiability question."""
        sigma = _random_vee_sigma(seed)
        ok_chase, witness = disjunctive_chase_satisfiable(sigma)
        ok_small, _ = vee_satisfiable_smallmodel(sigma)
        assert ok_chase == ok_small
        if ok_chase:
            assert vee_validates(witness, sigma)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_singleton_vees_match_ged_satisfiability(self, seed):
        """For GED∨s that are encodings of GEDs, Theorem 2's procedure
        must agree with the disjunctive chase."""
        rng = random.Random(seed + 7)
        q = Pattern({"x": rng.choice(["a", "b"]), "y": rng.choice(["a", "b"])})
        lits = [
            ConstantLiteral("x", "A", rng.choice([1, 2])),
            rng.choice([IdLiteral("x", "y"), VariableLiteral("x", "A", "y", "A")]),
        ]
        ged = GED(q, lits[:1], lits[1:])
        vees = ged_to_gedvees(ged)
        ok_chase, _ = disjunctive_chase_satisfiable(vees)
        assert ok_chase == is_satisfiable([ged], use_shortcut=False)
