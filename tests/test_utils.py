"""Unit tests for the fresh-name supplies (repro.utils.naming)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.naming import NameSupply, fresh_label, fresh_value


class TestNameSupply:
    def test_avoids_reserved(self):
        supply = NameSupply({"fresh_0", "fresh_1"})
        assert supply.fresh() == "fresh_2"

    def test_never_repeats(self):
        supply = NameSupply()
        names = {supply.fresh() for _ in range(50)}
        assert len(names) == 50

    def test_hint_used_when_free(self):
        supply = NameSupply({"x"})
        assert supply.fresh("y") == "y"

    def test_hint_bumped_when_taken(self):
        supply = NameSupply({"y"})
        fresh = supply.fresh("y")
        assert fresh != "y" and fresh.startswith("y")

    def test_reserve_blocks_future_names(self):
        supply = NameSupply()
        supply.reserve("fresh_0")
        assert supply.fresh() != "fresh_0"

    def test_deterministic_across_instances(self):
        a = NameSupply({"n"}).fresh()
        b = NameSupply({"n"}).fresh()
        assert a == b

    @given(st.sets(st.text(min_size=1, max_size=5), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_fresh_never_in_reserved(self, reserved):
        supply = NameSupply(reserved)
        for _ in range(5):
            assert supply.fresh() not in reserved


class TestFreshHelpers:
    def test_fresh_label_avoids(self):
        labels = {"label_0", "label_1", "person"}
        assert fresh_label(labels) not in labels

    def test_fresh_value_distinct_per_index(self):
        taken = {"@v0"}
        values = {fresh_value(taken, i) for i in range(10)}
        assert len(values) == 10
        assert not values & taken

    @given(st.sets(st.text(max_size=6), max_size=30), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_fresh_value_never_collides(self, avoid, index):
        assert fresh_value(avoid, index) not in {str(v) for v in avoid}
