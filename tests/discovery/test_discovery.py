"""Tests for GFD discovery: patterns, match tables, levelwise mining."""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral
from repro.discovery.fds import discover_for_pattern, discover_gfds
from repro.discovery.patterns import enumerate_candidate_patterns
from repro.discovery.tableize import MISSING, build_match_table
from repro.errors import DiscoveryError
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import validates


def creators_graph(n: int = 4, dirty: int = 0) -> Graph:
    """n programmers each creating a video game; `dirty` of them are
    mislabeled psychologists (breaking the phi1 regularity)."""
    g = Graph()
    for i in range(n):
        kind = "psychologist" if i < dirty else "programmer"
        g.add_node(f"p{i}", "person", {"type": kind})
        g.add_node(f"g{i}", "product", {"type": "video game"})
        g.add_edge(f"p{i}", "create", f"g{i}")
    return g


class TestCandidatePatterns:
    def test_node_and_edge_patterns_found(self):
        g = creators_graph()
        candidates = enumerate_candidate_patterns(g)
        shapes = {(c.shape, tuple(sorted(c.pattern.labels.values()))) for c in candidates}
        assert ("node", ("person",)) in shapes
        assert ("node", ("product",)) in shapes
        assert ("edge", ("person", "product")) in shapes

    def test_support_counts(self):
        g = creators_graph(n=5)
        candidates = enumerate_candidate_patterns(g)
        by_shape = {c.shape: c for c in candidates if c.shape == "edge"}
        assert by_shape["edge"].support == 5

    def test_min_support_filters(self):
        g = creators_graph(n=2)
        assert enumerate_candidate_patterns(g, min_support=3) == []

    def test_paths_require_flag(self):
        g = Graph()
        g.add_node("a", "x")
        g.add_node("b", "y")
        g.add_node("c", "z")
        g.add_edge("a", "e", "b")
        g.add_edge("b", "f", "c")
        without = enumerate_candidate_patterns(g)
        with_paths = enumerate_candidate_patterns(g, include_paths=True)
        assert all(c.shape != "path" for c in without)
        assert any(c.shape == "path" for c in with_paths)

    def test_forks_require_flag(self):
        g = Graph()
        g.add_node("c", "country")
        g.add_node("h", "city")
        g.add_node("s", "city")
        g.add_edge("c", "capital", "h")
        g.add_edge("c", "capital", "s")
        with_forks = enumerate_candidate_patterns(g, include_forks=True)
        assert any(c.shape == "fork" for c in with_forks)

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            enumerate_candidate_patterns(creators_graph(), min_support=0)


class TestMatchTable:
    def test_rows_are_matches(self):
        g = creators_graph(n=3)
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        table = build_match_table(q, g)
        assert table.num_rows == 3
        assert all(set(row) == {"x", "y"} for row in table.rows)

    def test_values_and_missing(self):
        g = Graph()
        g.add_node("a", "person", {"name": "Ada"})
        g.add_node("b", "person")
        table = build_match_table(Pattern({"x": "person"}), g)
        by_node = {table.rows[i]["x"]: i for i in range(table.num_rows)}
        assert table.values[by_node["a"]][("x", "name")] == "Ada"
        assert ("x", "name") not in table.values[by_node["b"]]

    def test_literal_evaluation(self):
        g = creators_graph(n=2)
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        table = build_match_table(q, g)
        lit = ConstantLiteral("y", "type", "video game")
        assert table.satisfying([lit]) == list(range(table.num_rows))
        missing = ConstantLiteral("y", "rating", 5)
        assert table.satisfying([missing]) == []

    def test_distinct_values(self):
        g = creators_graph(n=4, dirty=1)
        q = Pattern({"x": "person"})
        table = build_match_table(q, g)
        assert table.distinct_values("x", "type") == {"programmer", "psychologist"}

    def test_missing_sentinel_not_equal_to_values(self):
        assert MISSING != None  # noqa: E711 — deliberate: sentinel vs None
        assert MISSING != ""
        assert MISSING == MISSING


class TestDiscoverForPattern:
    def test_exact_rule_mined_from_clean_data(self):
        g = creators_graph(n=4)
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        rules = discover_for_pattern(g, q, max_lhs=1, min_support=2)
        wanted = GED(
            q, [], [ConstantLiteral("x", "type", "programmer")]
        )
        assert any(r.ged == wanted for r in rules)

    def test_exact_rules_validate_on_source_graph(self):
        g = creators_graph(n=5)
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        for rule in discover_for_pattern(g, q, max_lhs=2, min_support=2):
            if rule.exact:
                assert validates(g, [rule.ged]), str(rule)

    def test_dirty_data_lowers_confidence(self):
        g = creators_graph(n=4, dirty=1)
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        exact = discover_for_pattern(g, q, max_lhs=0, min_support=2)
        assert not any(
            r.ged.Y == frozenset({ConstantLiteral("x", "type", "programmer")})
            for r in exact
        )
        approx = discover_for_pattern(g, q, max_lhs=0, min_support=2, min_confidence=0.7)
        found = [
            r
            for r in approx
            if r.ged.Y == frozenset({ConstantLiteral("x", "type", "programmer")})
        ]
        assert found and found[0].confidence == pytest.approx(0.75)

    def test_minimality_pruning(self):
        """If ∅ → l holds, no 1-literal LHS for the same l is reported."""
        g = creators_graph(n=4)
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        rules = discover_for_pattern(g, q, max_lhs=2, min_support=2)
        rhs = ConstantLiteral("y", "type", "video game")
        with_that_rhs = [r for r in rules if r.ged.Y == frozenset({rhs})]
        assert with_that_rhs
        assert all(len(r.ged.X) == 0 for r in with_that_rhs)

    def test_min_support_respected(self):
        g = creators_graph(n=2)
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        assert discover_for_pattern(g, q, min_support=5) == []

    def test_identifier_columns_skipped_for_constants(self):
        g = Graph()
        for i in range(12):
            g.add_node(f"n{i}", "item", {"serial": f"s{i}", "kind": "widget"})
        q = Pattern({"x": "item"})
        rules = discover_for_pattern(g, q, max_lhs=0, min_support=2, max_distinct=8)
        assert not any(
            isinstance(l, ConstantLiteral) and l.attr == "serial"
            for r in rules
            for l in r.ged.Y
        )
        assert any(
            r.ged.Y == frozenset({ConstantLiteral("x", "kind", "widget")})
            for r in rules
        )

    def test_parameter_validation(self):
        g = creators_graph()
        q = Pattern({"x": "person"})
        with pytest.raises(DiscoveryError):
            discover_for_pattern(g, q, min_confidence=0.0)
        with pytest.raises(DiscoveryError):
            discover_for_pattern(g, q, min_support=0)
        with pytest.raises(DiscoveryError):
            discover_for_pattern(g, q, max_lhs=-1)


class TestDiscoverGfds:
    def test_full_pipeline_on_capital_workload(self):
        g = Graph()
        for i, (country, capital) in enumerate(
            [("FI", "Helsinki"), ("NO", "Oslo"), ("SE", "Stockholm")]
        ):
            g.add_node(f"c{i}", "country", {"code": country})
            g.add_node(f"k{i}", "city", {"name": capital, "is_capital": 1})
            g.add_edge(f"c{i}", "capital", f"k{i}")
        rules = discover_gfds(g, max_lhs=0, min_support=2)
        q_edge = Pattern({"x": "country", "y": "city"}, [("x", "capital", "y")])
        wanted = GED(q_edge, [], [ConstantLiteral("y", "is_capital", 1)])
        assert any(r.ged == wanted for r in rules)

    def test_all_exact_rules_validate(self):
        g = creators_graph(n=4)
        for rule in discover_gfds(g, max_lhs=1, min_support=2):
            assert rule.exact
            assert validates(g, [rule.ged])

    def test_max_patterns_caps_work(self):
        g = creators_graph(n=4)
        few = discover_gfds(g, max_patterns=1)
        all_of_them = discover_gfds(g)
        assert len(few) <= len(all_of_them)

    def test_discovered_rules_feed_cover(self):
        """Discovery output composes with cover computation."""
        from repro.optimization.cover import compute_cover

        g = creators_graph(n=4)
        rules = [r.ged for r in discover_gfds(g, max_lhs=1, min_support=2)]
        report = compute_cover(rules)
        assert len(report.cover) <= len(rules)
        for dropped in report.implied:
            from repro.reasoning.implication import implies

            assert implies(report.cover, dropped)
