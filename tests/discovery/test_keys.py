"""Tests for GKey discovery."""

import pytest

from repro.discovery.keys import discover_gkeys
from repro.errors import DiscoveryError
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.quality.entity_resolution import resolve_entities
from repro.reasoning.validation import validates


def albums_graph(with_bleach_clash: bool = False) -> Graph:
    """Albums with title+release; the two 'Bleach' albums (Example 1)
    share a title, so title alone is NOT a key — title+release is."""
    g = Graph()
    rows = [
        ("a1", "Bleach", 1989),
        ("a2", "Bleach", 1990),
        ("a3", "Nevermind", 1991),
        ("a4", "In Utero", 1991),
    ]
    for node_id, title, release in rows:
        g.add_node(node_id, "album", {"title": title, "release": release})
    if with_bleach_clash:
        # a duplicate entity: same title AND release as a1
        g.add_node("a5", "album", {"title": "Bleach", "release": 1989})
    return g


class TestDiscoverGkeys:
    def test_title_alone_is_not_a_key(self):
        keys = discover_gkeys(albums_graph(), Pattern({"x": "album"}), "x", max_attrs=1)
        assert not any(k.attributes == (("x", "title"),) for k in keys)

    def test_title_release_is_a_minimal_key(self):
        keys = discover_gkeys(albums_graph(), Pattern({"x": "album"}), "x", max_attrs=2)
        assert any(
            set(k.attributes) == {("x", "title"), ("x", "release")} for k in keys
        )

    def test_release_alone_is_not_a_key(self):
        # a3 and a4 share release = 1991
        keys = discover_gkeys(albums_graph(), Pattern({"x": "album"}), "x", max_attrs=1)
        assert not any(k.attributes == (("x", "release"),) for k in keys)

    def test_minimality_pruning(self):
        """When a singleton key exists, no superset of it is reported."""
        g = albums_graph()
        g.set_attribute("a1", "serial", 1)
        g.set_attribute("a2", "serial", 2)
        g.set_attribute("a3", "serial", 3)
        g.set_attribute("a4", "serial", 4)
        keys = discover_gkeys(g, Pattern({"x": "album"}), "x", max_attrs=2)
        attr_sets = [set(k.attributes) for k in keys]
        assert {("x", "serial")} in attr_sets
        assert not any(
            {("x", "serial")} < attrs for attrs in attr_sets
        )

    def test_discovered_keys_validate(self):
        g = albums_graph()
        for key in discover_gkeys(g, Pattern({"x": "album"}), "x", max_attrs=2):
            assert validates(g, [key.gkey]), str(key)

    def test_clashing_duplicates_break_the_key(self):
        g = albums_graph(with_bleach_clash=True)
        keys = discover_gkeys(g, Pattern({"x": "album"}), "x", max_attrs=2)
        assert not any(
            set(k.attributes) == {("x", "title"), ("x", "release")} for k in keys
        )

    def test_support_and_groups_reported(self):
        keys = discover_gkeys(albums_graph(), Pattern({"x": "album"}), "x", max_attrs=2)
        (pair_key,) = [
            k for k in keys
            if set(k.attributes) == {("x", "title"), ("x", "release")}
        ]
        assert pair_key.support == 4
        assert pair_key.groups == 4

    def test_missing_attributes_do_not_count(self):
        g = albums_graph()
        g.add_node("a9", "album")  # no attributes at all
        keys = discover_gkeys(g, Pattern({"x": "album"}), "x", max_attrs=2)
        (pair_key,) = [
            k for k in keys
            if set(k.attributes) == {("x", "title"), ("x", "release")}
        ]
        assert pair_key.support == 4  # the bare album is not a witness

    def test_parameter_validation(self):
        g = albums_graph()
        q = Pattern({"x": "album"})
        with pytest.raises(DiscoveryError):
            discover_gkeys(g, q, "nope")
        with pytest.raises(DiscoveryError):
            discover_gkeys(g, q, "x", max_attrs=0)
        with pytest.raises(DiscoveryError):
            discover_gkeys(g, q, "x", min_support=0)
        with pytest.raises(DiscoveryError):
            discover_gkeys(g, q, "x", candidate_attrs=[("x", "nonexistent")])

    def test_edge_pattern_key(self):
        """A key over a pattern with context: an album identified by its
        title + its artist's name (the value-based cousin of ψ1)."""
        g = Graph()
        for i, (title, artist) in enumerate(
            [("Bleach", "Nirvana"), ("Bleach", "BleachUK"), ("Nevermind", "Nirvana")]
        ):
            g.add_node(f"al{i}", "album", {"title": title})
            g.add_node(f"ar{i}", "artist", {"name": artist})
            g.add_edge(f"al{i}", "by", f"ar{i}")
        q1 = Pattern({"x": "album", "z": "artist"}, [("x", "by", "z")])
        keys = discover_gkeys(g, q1, "x", max_attrs=2)
        assert any(
            set(k.attributes) == {("x", "title"), ("z", "name")} for k in keys
        )
        for key in keys:
            assert validates(g, [key.gkey])

    def test_discovered_key_drives_entity_resolution(self):
        """End to end: mine a key on clean data, then use it to merge a
        duplicate planted in a second graph."""
        clean = albums_graph()
        keys = discover_gkeys(clean, Pattern({"x": "album"}), "x", max_attrs=2)
        (pair_key,) = [
            k for k in keys
            if set(k.attributes) == {("x", "title"), ("x", "release")}
        ]

        dirty = albums_graph()
        dirty.add_node("dup", "album", {"title": "Bleach", "release": 1989})
        result = resolve_entities(dirty, [pair_key.gkey])
        assert result.consistent
        assert any({"a1", "dup"} == group for group in result.merged_groups)
