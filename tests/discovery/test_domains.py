"""Tests for domain-constraint discovery (Examples 9/10 mined from data)."""

import pytest

from repro.discovery.domains import discover_domain_constraints
from repro.errors import DiscoveryError
from repro.extensions.gdc_reasoning import gdc_validates
from repro.extensions.gedvee_reasoning import vee_validates
from repro.graph.graph import Graph


def sensors_graph() -> Graph:
    """Numeric readings in [10, 42], a Boolean-ish flag, and an id column."""
    g = Graph()
    readings = [10, 17, 25, 42, 30, 11, 39, 22]
    for i, value in enumerate(readings):
        g.add_node(
            f"s{i}",
            "sensor",
            {"reading": value, "active": i % 2, "serial": f"SN-{i:04d}"},
        )
    return g


class TestRangeConstraints:
    def test_numeric_column_yields_range(self):
        constraints = discover_domain_constraints(sensors_graph(), max_enum=4)
        (reading,) = [c for c in constraints if c.attr == "reading"]
        assert reading.kind == "range"
        assert reading.domain == (10, 42)
        assert len(reading.gdcs) == 2

    def test_range_gdcs_validate_on_source(self):
        g = sensors_graph()
        constraints = discover_domain_constraints(g, max_enum=4)
        (reading,) = [c for c in constraints if c.attr == "reading"]
        assert gdc_validates(g, list(reading.gdcs))

    def test_range_gdcs_catch_out_of_range(self):
        g = sensors_graph()
        constraints = discover_domain_constraints(g, max_enum=4)
        (reading,) = [c for c in constraints if c.attr == "reading"]
        g.add_node("bad", "sensor", {"reading": 99})
        assert not gdc_validates(g, list(reading.gdcs))

    def test_support_and_coverage(self):
        g = sensors_graph()
        g.add_node("bare", "sensor")  # label node without attributes
        constraints = discover_domain_constraints(g, max_enum=4)
        (reading,) = [c for c in constraints if c.attr == "reading"]
        assert reading.support == 8
        assert reading.coverage == pytest.approx(8 / 9)


class TestEnumConstraints:
    def test_small_column_yields_enum(self):
        constraints = discover_domain_constraints(sensors_graph())
        (active,) = [c for c in constraints if c.attr == "active"]
        assert active.kind == "enum"
        assert set(active.domain) == {0, 1}
        assert active.gedvee is not None

    def test_enum_gedvee_validates_on_source(self):
        g = sensors_graph()
        constraints = discover_domain_constraints(g)
        (active,) = [c for c in constraints if c.attr == "active"]
        assert vee_validates(g, [active.gedvee])

    def test_enum_gedvee_catches_out_of_domain(self):
        g = sensors_graph()
        constraints = discover_domain_constraints(g)
        (active,) = [c for c in constraints if c.attr == "active"]
        g.add_node("bad", "sensor", {"active": 7})
        assert not vee_validates(g, [active.gedvee])

    def test_enum_does_not_impose_existence(self):
        """A label node without the attribute must not violate the
        mined rule (existence is Example 9's separate φ1)."""
        g = sensors_graph()
        constraints = discover_domain_constraints(g)
        (active,) = [c for c in constraints if c.attr == "active"]
        g.add_node("bare", "sensor")
        assert vee_validates(g, [active.gedvee])


class TestColumnSelection:
    def test_identifier_columns_skipped(self):
        constraints = discover_domain_constraints(sensors_graph(), max_enum=4)
        assert not any(c.attr == "serial" for c in constraints)

    def test_min_support_filters(self):
        g = Graph()
        g.add_node("only", "sensor", {"reading": 5})
        assert discover_domain_constraints(g, min_support=2) == []

    def test_numeric_small_column_prefers_enum(self):
        """Example 10's point: a Boolean domain is an enum, not a range."""
        constraints = discover_domain_constraints(sensors_graph(), max_enum=6)
        (active,) = [c for c in constraints if c.attr == "active"]
        assert active.kind == "enum"

    def test_per_label_separation(self):
        g = sensors_graph()
        g.add_node("t0", "thermo", {"reading": -100})
        g.add_node("t1", "thermo", {"reading": -50})
        constraints = discover_domain_constraints(g, max_enum=1)
        by_label = {(c.label, c.attr): c for c in constraints}
        assert by_label[("sensor", "reading")].domain == (10, 42)
        assert by_label[("thermo", "reading")].domain == (-100, -50)

    def test_parameter_validation(self):
        with pytest.raises(DiscoveryError):
            discover_domain_constraints(sensors_graph(), min_support=0)
        with pytest.raises(DiscoveryError):
            discover_domain_constraints(sensors_graph(), max_enum=0)

    def test_booleans_do_not_count_as_numbers(self):
        g = Graph()
        for i in range(8):
            g.add_node(f"n{i}", "flag", {"v": bool(i % 2)})
        constraints = discover_domain_constraints(g, max_enum=1)
        # only 2 distinct values but max_enum=1 forces the range path,
        # which must NOT fire for bools -> no constraint at all
        assert constraints == []
