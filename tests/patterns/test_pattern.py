"""Unit tests for graph patterns and label matching."""

import pytest

from repro.errors import PatternError
from repro.patterns import (
    WILDCARD,
    Pattern,
    PatternBuilder,
    compatible,
    matches,
    merged,
    pattern_from_json,
    pattern_to_json,
    single_node_pattern,
)


def q1() -> Pattern:
    """Figure 1's Q1: person --create--> product."""
    return Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])


class TestLabelMatching:
    def test_equal_labels_match(self):
        assert matches("album", "album")

    def test_distinct_labels_do_not_match(self):
        assert not matches("album", "artist")

    def test_wildcard_matches_anything(self):
        assert matches(WILDCARD, "album")
        assert matches(WILDCARD, WILDCARD)

    def test_matching_is_asymmetric(self):
        # A concrete pattern label does not match a wildcard-labeled node.
        assert not matches("album", WILDCARD)

    def test_compatibility_is_symmetric(self):
        assert compatible("album", WILDCARD)
        assert compatible(WILDCARD, "album")
        assert compatible("a", "a")
        assert not compatible("a", "b")

    def test_merged_label(self):
        assert merged([WILDCARD, WILDCARD]) == WILDCARD
        assert merged([WILDCARD, "album", WILDCARD]) == "album"
        with pytest.raises(ValueError):
            merged(["album", "artist"])


class TestPatternConstruction:
    def test_variables_and_labels(self):
        q = q1()
        assert q.variables == ("x", "y")
        assert q.label_of("x") == "person"
        assert q.has_variable("y")
        assert not q.has_variable("z")

    def test_unknown_variable_raises(self):
        with pytest.raises(PatternError):
            q1().label_of("z")

    def test_edge_endpoints_must_be_variables(self):
        with pytest.raises(PatternError):
            Pattern({"x": "a"}, [("x", "r", "y")])
        with pytest.raises(PatternError):
            Pattern({"x": "a"}, [("y", "r", "x")])

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern({})

    def test_duplicate_edges_deduplicated(self):
        q = Pattern({"x": "a", "y": "b"}, [("x", "r", "y"), ("x", "r", "y")])
        assert q.num_edges == 1

    def test_explicit_variable_order(self):
        q = Pattern({"x": "a", "y": "b"}, [], variables=["y", "x"])
        assert q.variables == ("y", "x")
        with pytest.raises(PatternError):
            Pattern({"x": "a"}, [], variables=["x", "x"])
        with pytest.raises(PatternError):
            Pattern({"x": "a"}, [], variables=["y"])

    def test_adjacency_and_degree(self):
        q = q1()
        assert q.out_edges("x") == [("create", "y")]
        assert q.in_edges("y") == [("create", "x")]
        assert q.degree("x") == 1
        assert q.size() == 3

    def test_self_loop_in_pattern(self):
        q = Pattern({"x": "a"}, [("x", "r", "x")])
        assert q.degree("x") == 2


class TestPatternCopy:
    def test_renamed_copy_is_a_copy(self):
        q = q1()
        copy, bijection = q.renamed_copy()
        assert bijection == {"x": "x_copy", "y": "y_copy"}
        assert copy.is_copy_of(q, bijection)
        assert copy.label_of("x_copy") == "person"

    def test_copy_with_bijection_validates(self):
        q = q1()
        with pytest.raises(PatternError):
            q.copy_with_bijection({"x": "u"})  # not total
        with pytest.raises(PatternError):
            q.copy_with_bijection({"x": "u", "y": "u"})  # not injective
        with pytest.raises(PatternError):
            q.copy_with_bijection({"x": "y", "y": "u"})  # not disjoint

    def test_is_copy_of_rejects_wrong_labels(self):
        q = q1()
        wrong = Pattern({"u": "person", "v": "person"}, [("u", "create", "v")])
        assert not wrong.is_copy_of(q, {"x": "u", "y": "v"})

    def test_is_copy_of_rejects_wrong_edges(self):
        q = q1()
        wrong = Pattern({"u": "person", "v": "product"}, [("v", "create", "u")])
        assert not wrong.is_copy_of(q, {"x": "u", "y": "v"})

    def test_compose_disjoint(self):
        q = q1()
        copy, _ = q.renamed_copy()
        both = q.compose(copy)
        assert both.variables == ("x", "y", "x_copy", "y_copy")
        assert both.num_edges == 2
        with pytest.raises(PatternError):
            q.compose(q)


class TestPatternMisc:
    def test_connected_components(self):
        q = Pattern(
            {"a": "v", "b": "v", "c": "v", "d": "v"},
            [("a", "r", "b"), ("c", "r", "d")],
        )
        components = q.connected_components()
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["c", "d"]]

    def test_equality_and_hash(self):
        assert q1() == q1()
        assert hash(q1()) == hash(q1())
        assert q1() != Pattern({"x": "person", "y": "product"})

    def test_single_node_pattern(self):
        q = single_node_pattern("x", "album")
        assert q.variables == ("x",)
        assert q.label_of("x") == "album"
        assert single_node_pattern().label_of("x") == WILDCARD

    def test_json_round_trip(self):
        q = q1()
        assert pattern_from_json(pattern_to_json(q)) == q

    def test_builder(self):
        q = (
            PatternBuilder()
            .var("x", "account")
            .vars("blog", "y", "z")
            .edge("x", "post", "y")
            .undirected_edge("y", "rel", "z")
            .build()
        )
        assert q.variables == ("x", "y", "z")
        assert ("y", "rel", "z") in q.edges and ("z", "rel", "y") in q.edges
