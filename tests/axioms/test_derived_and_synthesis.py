"""Derived rules (Example 8), proof synthesis (Theorem 7), independence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.axioms import (
    Proof,
    ProofChecker,
    augmentation,
    premise,
    prove,
    subset,
    transitivity,
    witnesses,
)
from repro.deps import ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.errors import ProofError
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import implies


class TestDerivedRules:
    def test_subset_extraction(self):
        """Example 8(a): Q(X → Y), Y1 ⊆ Y ⊢ Q(X → Y1)."""
        q = Pattern({"x": "a", "y": "a"})
        phi = GED(
            q,
            [ConstantLiteral("x", "C", 0)],
            [VariableLiteral("x", "A", "y", "A"), IdLiteral("x", "y")],
        )
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = subset(proof, src, [IdLiteral("x", "y")])
        assert proof.lines[line].ged == GED(q, phi.X, [IdLiteral("x", "y")])
        ProofChecker([phi]).check(proof)

    def test_subset_requires_containment(self):
        q = Pattern({"x": "a"})
        phi = GED(q, [], [ConstantLiteral("x", "A", 1)])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        with pytest.raises(ProofError):
            subset(proof, src, [ConstantLiteral("x", "A", 2)])
        with pytest.raises(ProofError):
            subset(proof, src, [])

    def test_augmentation(self):
        """Example 8(b): Q(X → Y) ⊢ Q(XZ → YZ)."""
        q = Pattern({"x": "a", "y": "a"})
        phi = GED(q, [ConstantLiteral("x", "A", 1)], [VariableLiteral("x", "B", "y", "B")])
        Z = [ConstantLiteral("y", "C", 2)]
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = augmentation(proof, src, Z)
        expected = GED(q, set(phi.X) | set(Z), set(phi.Y) | set(Z))
        assert proof.lines[line].ged == expected
        ProofChecker([phi]).check(proof)

    def test_augmentation_inconsistent_case(self):
        """Example 8(b)'s second case: Eq_X ∪ Eq_Z inconsistent → GED5."""
        q = Pattern({"x": "a"})
        phi = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "B", 5)])
        Z = [ConstantLiteral("x", "A", 2)]  # conflicts with X
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = augmentation(proof, src, Z)
        assert proof.lines[line].ged.Y == frozenset(set(phi.Y) | set(Z))
        assert "GED5" in proof.rules_used()
        ProofChecker([phi]).check(proof)

    def test_transitivity(self):
        """Example 8(c): Q(X → Y), Q(Y → Z) ⊢ Q(X → Z)."""
        q = Pattern({"x": "a"})
        xy = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "B", 2)])
        yz = GED(q, [ConstantLiteral("x", "B", 2)], [ConstantLiteral("x", "C", 3)])
        proof = Proof(premises=[xy, yz])
        l1 = premise(proof, xy)
        l2 = premise(proof, yz)
        line = transitivity(proof, l1, l2)
        assert proof.lines[line].ged == GED(q, xy.X, yz.Y)
        ProofChecker([xy, yz]).check(proof)

    def test_transitivity_validates_shapes(self):
        q = Pattern({"x": "a"})
        xy = GED(q, [], [ConstantLiteral("x", "B", 2)])
        zz = GED(q, [ConstantLiteral("x", "OTHER", 9)], [ConstantLiteral("x", "C", 3)])
        proof = Proof(premises=[xy, zz])
        l1 = premise(proof, xy)
        l2 = premise(proof, zz)
        with pytest.raises(ProofError):
            transitivity(proof, l1, l2)


class TestSynthesis:
    def check_round_trip(self, sigma, phi):
        """Σ |= φ ⟹ prove() returns a checkable proof of exactly φ."""
        proof = prove(sigma, phi)
        assert ProofChecker(sigma).check_concludes(proof, phi)
        return proof

    def test_example7_proof(self):
        proof = self.check_round_trip(paper.example7_sigma(), paper.example7_phi())
        assert "GED6" in proof.rules_used()

    def test_constant_chain(self):
        q = Pattern({"x": "a"})
        sigma = [
            GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "B", 2)]),
            GED(q, [ConstantLiteral("x", "B", 2)], [ConstantLiteral("x", "C", 3)]),
        ]
        phi = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "C", 3)])
        self.check_round_trip(sigma, phi)

    def test_inconsistent_x_path(self):
        q = Pattern({"x": "a"})
        phi = GED(
            q,
            [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)],
            [ConstantLiteral("x", "A", 3)],
        )
        proof = self.check_round_trip([], phi)
        assert "GED5" in proof.rules_used()

    def test_chase_conflict_path(self):
        """Σ drives the chase into a label conflict under X."""
        q = Pattern({"x": "a", "y": "b"})
        sigma = [
            GED(q, [VariableLiteral("x", "K", "y", "K")], [IdLiteral("x", "y")]),
        ]
        phi = GED(q, [VariableLiteral("x", "K", "y", "K")], [ConstantLiteral("x", "Z", 0)])
        assert implies(sigma, phi)
        proof = self.check_round_trip(sigma, phi)
        assert "GED5" in proof.rules_used()

    def test_forbidding_constraint_path(self):
        q = Pattern({"x": "a"})
        sigma = [GED(q, [ConstantLiteral("x", "bad", 1)], [paper.FALSE])]
        phi = GED(q, [ConstantLiteral("x", "bad", 1)], [ConstantLiteral("x", "fine", 0)])
        assert implies(sigma, phi)
        proof = self.check_round_trip(sigma, phi)
        assert "GED5" in proof.rules_used()

    def test_id_semantics_proof_uses_ged2(self):
        q = Pattern({"x": "a", "y": "a"})
        sigma = [GED(q, [VariableLiteral("x", "K", "y", "K")], [IdLiteral("x", "y")])]
        phi = GED(
            q,
            [VariableLiteral("x", "K", "y", "K"), VariableLiteral("x", "V", "x", "V")],
            [VariableLiteral("x", "V", "y", "V")],
        )
        proof = self.check_round_trip(sigma, phi)
        assert "GED2" in proof.rules_used()

    def test_not_implied_raises(self):
        q = Pattern({"x": "a"})
        phi = GED(q, [], [ConstantLiteral("x", "A", 1)])
        with pytest.raises(ProofError):
            prove([], phi)

    def test_empty_y_raises(self):
        q = Pattern({"x": "a"})
        with pytest.raises(ProofError):
            prove([], GED(q, [], []))

    def test_gkey_implication_proof(self):
        """A GKey plus value equalities proves an id identification."""
        sigma = [paper.psi2()]
        q = paper.psi2().pattern
        phi = GED(
            q,
            set(paper.psi2().X),
            [IdLiteral("x'", "x")],  # flipped orientation of ψ2's Y
        )
        assert implies(sigma, phi)
        proof = self.check_round_trip(sigma, phi)
        assert "GED3" in proof.rules_used()


def _random_implication_instance(seed: int):
    rng = random.Random(seed)
    labels = ["a", "b", WILDCARD]
    q = Pattern({f"x{i}": rng.choice(labels) for i in range(rng.randint(1, 3))})
    variables = list(q.variables)
    def random_literal():
        roll = rng.random()
        v1, v2 = rng.choice(variables), rng.choice(variables)
        if roll < 0.4:
            return ConstantLiteral(v1, rng.choice(["A", "B"]), rng.choice([1, 2]))
        if roll < 0.75:
            return VariableLiteral(v1, rng.choice(["A", "B"]), v2, rng.choice(["A", "B"]))
        return IdLiteral(v1, v2)

    sigma = []
    for _ in range(rng.randint(1, 2)):
        lits = [random_literal() for _ in range(rng.randint(1, 2))]
        split = rng.randint(0, len(lits) - 1)
        sigma.append(GED(q, lits[:split], lits[split:]))
    lits = [random_literal() for _ in range(rng.randint(1, 2))]
    phi = GED(q, lits[:1], lits[1:] or [random_literal()])
    return sigma, phi


class TestSynthesisProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_prove_iff_implies(self, seed):
        """Soundness + completeness, empirically: prove() succeeds and
        checks exactly when the Theorem 4 procedure says Σ |= φ."""
        sigma, phi = _random_implication_instance(seed)
        if not phi.Y:
            return
        implied = implies(sigma, phi)
        if implied:
            proof = prove(sigma, phi)
            assert ProofChecker(sigma).check_concludes(proof, phi)
        else:
            with pytest.raises(ProofError):
                prove(sigma, phi)


class TestIndependence:
    def test_six_witnesses(self):
        ws = witnesses()
        assert [w.rule for w in ws] == ["GED1", "GED2", "GED3", "GED4", "GED5", "GED6"]

    def test_each_witness_is_a_real_implication(self):
        for w in witnesses():
            assert implies(list(w.sigma), w.phi), w.rule

    def test_each_witness_proof_uses_its_rule(self):
        for w in witnesses():
            proof = prove(list(w.sigma), w.phi)
            ProofChecker(list(w.sigma)).check_concludes(proof, w.phi)
            assert w.rule in proof.rules_used(), (
                f"synthesized proof for the {w.rule} witness avoided {w.rule}"
            )
