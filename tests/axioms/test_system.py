"""Unit tests for the A_GED rules and the proof checker."""

import pytest

from repro.axioms import (
    Proof,
    ProofChecker,
    ged1,
    ged2,
    ged3,
    ged4,
    ged5,
    ged6,
    premise,
    xid_literals,
)
from repro.deps import ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.errors import ProofError
from repro.patterns import Pattern


def two_node_pattern() -> Pattern:
    return Pattern({"x": "a", "y": "a"})


class TestGED1:
    def test_concludes_x_and_xid(self):
        proof = Proof(premises=[])
        q = two_node_pattern()
        X = [ConstantLiteral("x", "A", 1)]
        line = ged1(proof, q, X)
        conclusion = proof.lines[line].ged
        assert conclusion.X == frozenset(X)
        assert conclusion.Y == frozenset(X) | xid_literals(["x", "y"])
        ProofChecker([]).check(proof)

    def test_checker_rejects_wrong_ged1(self):
        proof = Proof(premises=[])
        q = two_node_pattern()
        from repro.axioms import Justification

        proof.add(GED(q, [], [ConstantLiteral("x", "A", 1)]), Justification("GED1"))
        with pytest.raises(ProofError):
            ProofChecker([]).check(proof)


class TestPremise:
    def test_premise_must_be_in_sigma(self):
        q = two_node_pattern()
        phi = GED(q, [], [ConstantLiteral("x", "A", 1)])
        proof = Proof(premises=[phi])
        premise(proof, phi)
        ProofChecker([phi]).check(proof)
        with pytest.raises(ProofError):
            premise(proof, GED(q, [], [ConstantLiteral("x", "A", 2)]))

    def test_checker_rejects_foreign_premise(self):
        q = two_node_pattern()
        phi = GED(q, [], [ConstantLiteral("x", "A", 1)])
        proof = Proof(premises=[phi])
        premise(proof, phi)
        with pytest.raises(ProofError):
            ProofChecker([]).check(proof)  # different Σ


class TestGED2:
    def test_id_literal_induces_attribute_equality(self):
        q = two_node_pattern()
        phi = GED(q, [], [IdLiteral("x", "y"), VariableLiteral("x", "A", "x", "A")])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = ged2(proof, src, IdLiteral("x", "y"), "A")
        assert proof.lines[line].ged.Y == frozenset({VariableLiteral("x", "A", "y", "A")})
        ProofChecker([phi]).check(proof)

    def test_attribute_must_appear_in_y(self):
        q = two_node_pattern()
        phi = GED(q, [], [IdLiteral("x", "y")])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = ged2(proof, src, IdLiteral("x", "y"), "ghost")
        with pytest.raises(ProofError):
            ProofChecker([phi]).check(proof)

    def test_id_literal_must_be_in_y(self):
        q = two_node_pattern()
        phi = GED(q, [], [VariableLiteral("x", "A", "y", "A")])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        with pytest.raises(ProofError):
            ged2(proof, src, IdLiteral("x", "y"), "A")


class TestGED3:
    def test_flips_variable_literal(self):
        q = two_node_pattern()
        phi = GED(q, [], [VariableLiteral("x", "A", "y", "B")])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = ged3(proof, src, VariableLiteral("x", "A", "y", "B"))
        assert proof.lines[line].ged.Y == frozenset({VariableLiteral("y", "B", "x", "A")})
        ProofChecker([phi]).check(proof)

    def test_constant_literal_flip_is_identity(self):
        q = two_node_pattern()
        phi = GED(q, [], [ConstantLiteral("x", "A", 1)])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = ged3(proof, src, ConstantLiteral("x", "A", 1))
        assert proof.lines[line].ged.Y == frozenset({ConstantLiteral("x", "A", 1)})
        ProofChecker([phi]).check(proof)


class TestGED4:
    def test_transitivity_through_attribute(self):
        q = Pattern({"x": "a", "y": "a", "z": "a"})
        phi = GED(
            q,
            [],
            [VariableLiteral("x", "A", "y", "B"), VariableLiteral("y", "B", "z", "C")],
        )
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = ged4(
            proof, src,
            VariableLiteral("x", "A", "y", "B"),
            VariableLiteral("y", "B", "z", "C"),
        )
        assert proof.lines[line].ged.Y == frozenset({VariableLiteral("x", "A", "z", "C")})
        ProofChecker([phi]).check(proof)

    def test_transitivity_through_constant(self):
        """Rule (b): x.A = c and z.C = c give x.A = z.C."""
        q = two_node_pattern()
        phi = GED(q, [], [ConstantLiteral("x", "A", 7), ConstantLiteral("y", "B", 7)])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = ged4(proof, src, ConstantLiteral("x", "A", 7), ConstantLiteral("y", "B", 7))
        assert proof.lines[line].ged.Y == frozenset({VariableLiteral("x", "A", "y", "B")})
        ProofChecker([phi]).check(proof)

    def test_id_literal_transitivity(self):
        q = Pattern({"x": "a", "y": "a", "z": "a"})
        phi = GED(q, [], [IdLiteral("x", "y"), IdLiteral("y", "z")])
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        line = ged4(proof, src, IdLiteral("x", "y"), IdLiteral("y", "z"))
        assert proof.lines[line].ged.Y == frozenset({IdLiteral("x", "z")})

    def test_rejects_disjoint_literals(self):
        q = Pattern({"x": "a", "y": "a", "z": "a"})
        phi = GED(
            q, [], [VariableLiteral("x", "A", "x", "A"), VariableLiteral("y", "B", "y", "B")]
        )
        proof = Proof(premises=[phi])
        src = premise(proof, phi)
        with pytest.raises(ProofError):
            ged4(proof, src, *sorted(phi.Y, key=str))


class TestGED5:
    def test_inconsistent_xy_concludes_anything(self):
        q = Pattern({"x": "a"})
        proof = Proof(premises=[])
        start = ged1(
            proof, q, [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)]
        )
        line = ged5(proof, start, [ConstantLiteral("x", "A", 3)])
        assert proof.lines[line].ged.Y == frozenset({ConstantLiteral("x", "A", 3)})
        ProofChecker([]).check(proof)

    def test_rejects_consistent_source(self):
        q = Pattern({"x": "a"})
        proof = Proof(premises=[])
        start = ged1(proof, q, [ConstantLiteral("x", "A", 1)])
        with pytest.raises(ProofError):
            ged5(proof, start, [ConstantLiteral("x", "A", 3)])

    def test_label_conflict_counts_as_inconsistent(self):
        q = Pattern({"x": "a", "y": "b"})
        proof = Proof(premises=[])
        start = ged1(proof, q, [IdLiteral("x", "y")])
        line = ged5(proof, start, [ConstantLiteral("x", "Z", 0)])
        ProofChecker([]).check(proof)
        assert proof.lines[line].ged.Y == frozenset({ConstantLiteral("x", "Z", 0)})


class TestGED6:
    def test_imports_premise_through_embedding(self):
        small = Pattern({"u": "a"})
        big = two_node_pattern()
        rule = GED(small, [], [ConstantLiteral("u", "A", 1)])
        proof = Proof(premises=[rule])
        start = ged1(proof, big, [])
        src = premise(proof, rule)
        line = ged6(proof, start, src, {"u": "x"})
        assert ConstantLiteral("x", "A", 1) in proof.lines[line].ged.Y
        ProofChecker([rule]).check(proof)

    def test_premise_x_must_be_deducible(self):
        small = Pattern({"u": "a"})
        big = two_node_pattern()
        rule = GED(small, [ConstantLiteral("u", "B", 9)], [ConstantLiteral("u", "A", 1)])
        proof = Proof(premises=[rule])
        start = ged1(proof, big, [])
        src = premise(proof, rule)
        with pytest.raises(ProofError):
            ged6(proof, start, src, {"u": "x"})

    def test_match_must_respect_labels(self):
        small = Pattern({"u": "b"})
        big = two_node_pattern()  # all labels a
        rule = GED(small, [], [ConstantLiteral("u", "A", 1)])
        proof = Proof(premises=[rule])
        start = ged1(proof, big, [])
        src = premise(proof, rule)
        with pytest.raises(ProofError):
            ged6(proof, start, src, {"u": "x"})

    def test_match_must_respect_edges(self):
        small = Pattern({"u": "a", "v": "a"}, [("u", "r", "v")])
        big = two_node_pattern()  # no edges
        rule = GED(small, [], [ConstantLiteral("u", "A", 1)])
        proof = Proof(premises=[rule])
        start = ged1(proof, big, [])
        src = premise(proof, rule)
        with pytest.raises(ProofError):
            ged6(proof, start, src, {"u": "x", "v": "y"})

    def test_match_into_coerced_graph_after_id_merge(self):
        """X's id literal merges x and y; the edge pattern then matches
        the coercion's self-loop."""
        big = Pattern({"x": "a", "y": "a"}, [("x", "r", "y")])
        looped = Pattern({"u": "a"}, [("u", "r", "u")])
        rule = GED(looped, [], [ConstantLiteral("u", "A", 1)])
        proof = Proof(premises=[rule])
        start = ged1(proof, big, [IdLiteral("x", "y")])
        src = premise(proof, rule)
        line = ged6(proof, start, src, {"u": "x"})
        assert ConstantLiteral("x", "A", 1) in proof.lines[line].ged.Y
        ProofChecker([rule]).check(proof)
