"""Tests for sharded/parallel validation equivalence across backends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.graph.generators import random_labeled_graph
from repro.graph.graph import Graph
from repro.parallel.validate import parallel_find_violations, parallel_validates
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import find_violations, validates


def capital_rule() -> GED:
    q = Pattern(
        {"x": "country", "y": "city", "z": "city"},
        [("x", "capital", "y"), ("x", "capital", "z")],
    )
    return GED(q, [], [VariableLiteral("y", "name", "z", "name")], name="one-capital")


def dirty_graph() -> Graph:
    g = Graph()
    g.add_node("fin", "country")
    g.add_node("hel", "city", {"name": "Helsinki"})
    g.add_node("spb", "city", {"name": "Saint Petersburg"})
    g.add_edge("fin", "capital", "hel")
    g.add_edge("fin", "capital", "spb")
    g.add_node("nor", "country")
    g.add_node("osl", "city", {"name": "Oslo"})
    g.add_edge("nor", "capital", "osl")
    return g


class TestSerialSharding:
    def test_matches_reference_implementation(self):
        g = dirty_graph()
        rules = [capital_rule()]
        reference = find_violations(g, rules)
        report = parallel_find_violations(g, rules, workers=3, backend="serial")
        assert {v.match for v in report.violations} == {v.match for v in reference}

    def test_clean_graph(self):
        g = Graph()
        g.add_node("nor", "country")
        g.add_node("osl", "city", {"name": "Oslo"})
        g.add_edge("nor", "capital", "osl")
        assert parallel_validates(g, [capital_rule()], workers=4)

    def test_worker_count_does_not_change_result(self):
        g = dirty_graph()
        rules = [capital_rule()]
        reports = [
            parallel_find_violations(g, rules, workers=w, backend="serial")
            for w in (1, 2, 3, 8)
        ]
        matches = [{v.match for v in r.violations} for r in reports]
        assert all(m == matches[0] for m in matches)

    def test_stats_account_for_work(self):
        g = dirty_graph()
        report = parallel_find_violations(g, [capital_rule()], workers=2)
        assert report.total_matches() > 0
        assert sum(s.violations for s in report.stats) == len(report.violations)
        assert 0.0 < report.balance() <= 1.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_find_violations(dirty_graph(), [capital_rule()], backend="gpu")

    def test_empty_sigma(self):
        report = parallel_find_violations(dirty_graph(), [], workers=4)
        assert report.valid
        assert report.stats == []


class TestConcurrentBackends:
    def test_thread_backend_equals_serial(self):
        g = dirty_graph()
        rules = [capital_rule()]
        serial = parallel_find_violations(g, rules, workers=3, backend="serial")
        threaded = parallel_find_violations(g, rules, workers=3, backend="thread")
        assert [v.match for v in threaded.violations] == [
            v.match for v in serial.violations
        ]

    def test_process_backend_equals_serial(self):
        g = dirty_graph()
        rules = [capital_rule()]
        serial = parallel_find_violations(g, rules, workers=2, backend="serial")
        procs = parallel_find_violations(g, rules, workers=2, backend="process")
        assert [v.match for v in procs.violations] == [
            v.match for v in serial.violations
        ]

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_all_backends_agree(self, seed):
        g = random_labeled_graph(
            8,
            0.3,
            node_labels=["country", "city"],
            edge_labels=["capital"],
            attribute_names=["name"],
            attribute_values=["n1", "n2"],
            rng=seed,
        )
        rules = [capital_rule()]
        reference = {v.match for v in find_violations(g, rules)}
        serial = parallel_find_violations(g, rules, workers=3, backend="serial")
        threaded = parallel_find_violations(g, rules, workers=3, backend="thread")
        assert {v.match for v in serial.violations} == reference
        assert {v.match for v in threaded.violations} == reference
        assert parallel_validates(g, rules, workers=3) == validates(g, rules)


class TestMultiRule:
    def test_multiple_rules_merge_sorted(self):
        g = dirty_graph()
        g.add_node("p", "person", {"type": "psychologist"})
        g.add_node("v", "product", {"type": "video game"})
        g.add_edge("p", "create", "v")
        creator = GED(
            Pattern({"x": "person", "y": "product"}, [("x", "create", "y")]),
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
            name="creator",
        )
        rules = [capital_rule(), creator]
        report = parallel_find_violations(g, rules, workers=2)
        names = [v.ged.name for v in report.violations]
        assert names == sorted(names)
        assert {v.ged.name for v in report.violations} == {"one-capital", "creator"}
