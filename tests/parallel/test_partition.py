"""Tests for match-space sharding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import complete_graph, random_labeled_graph
from repro.matching.homomorphism import find_homomorphisms
from repro.parallel.partition import plan_shards
from repro.patterns.pattern import Pattern


def edge_pattern() -> Pattern:
    return Pattern({"x": "v", "y": "v"}, [("x", "adj", "y")])


class TestPlanShards:
    def test_shards_partition_pivot_candidates(self):
        g = complete_graph(6)
        plan = plan_shards(edge_pattern(), g, workers=3)
        all_nodes = [n for shard in plan.shards for n in shard]
        assert sorted(all_nodes) == sorted(set(all_nodes))  # disjoint
        assert set(all_nodes) == set(g.node_ids)  # complete

    def test_balanced_sizes(self):
        g = complete_graph(7)
        plan = plan_shards(edge_pattern(), g, workers=3)
        sizes = [len(s) for s in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_candidates(self):
        g = complete_graph(2)
        plan = plan_shards(edge_pattern(), g, workers=10)
        assert plan.num_shards == 2
        assert all(len(s) == 1 for s in plan.shards)

    def test_unmatchable_pattern_zero_shards(self):
        g = complete_graph(3)  # label "v"
        q = Pattern({"x": "city"})
        plan = plan_shards(q, g, workers=4)
        assert plan.num_shards == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            plan_shards(edge_pattern(), complete_graph(3), workers=0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_sharded_matches_equal_unsharded(self, workers, seed):
        g = random_labeled_graph(
            10, 0.3, node_labels=["v"], edge_labels=["adj"], rng=seed
        )
        q = edge_pattern()
        plan = plan_shards(q, g, workers)
        unsharded = {tuple(sorted(m.items())) for m in find_homomorphisms(q, g)}
        sharded = set()
        for shard in plan.shards:
            for node_id in shard:
                for m in find_homomorphisms(q, g, fixed={plan.pivot: node_id}):
                    key = tuple(sorted(m.items()))
                    assert key not in sharded  # disjointness of blocks
                    sharded.add(key)
        assert sharded == unsharded
