"""Fragment-backend byte-identity: fragment-local validation plus
escalation returns exactly the serial report.

Covers both partitioner modes, fragment counts, ±index, the random and
social workload families, and — via a radius-2 path rule — pivots whose
pattern ball genuinely crosses fragment cuts (the escalation path).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.deps.ged import GED
from repro.deps.literals import VariableLiteral
from repro.graph.fragments import PARTITION_MODES, get_fragments, partition_graph
from repro.graph.generators import random_labeled_graph
from repro.indexing import attach_index, detach_index
from repro.matching.locality import pivot_radius, split_local_pivots
from repro.parallel import parallel_find_violations
from repro.parallel.validate import plan_fragment_pivots
from repro.patterns.pattern import Pattern
from repro.reasoning import find_violations
from repro.workloads import (
    bounded_rule_set,
    clustered_workload,
    synthetic_social_network,
    validation_workload,
)


def radius2_rule() -> GED:
    """A 3-node path: the pivot's ball has radius 2, so cut-adjacent
    pivots fail ball-completeness and must escalate."""
    chain = Pattern(
        {"u": "user", "i": "item", "s": "shop"},
        [("u", "buys", "i"), ("s", "sells", "i")],
    )
    return GED(
        chain,
        [],
        [VariableLiteral("u", "region", "s", "region")],
        name="buyer-seller-same-region",
    )


def reference_report(graph, sigma):
    return sorted(
        find_violations(graph, sigma),
        key=lambda v: (v.ged.name or "", str(v.ged), v.match),
    )


class TestByteIdentity:
    @pytest.mark.parametrize("mode", PARTITION_MODES)
    @pytest.mark.parametrize("seed", [3, 13, 99])
    def test_random_workload(self, mode, seed):
        graph = validation_workload(120, rng=seed)
        detach_index(graph)
        sigma = bounded_rule_set()
        reference = reference_report(graph, sigma)
        for k in (1, 2, 4):
            report = parallel_find_violations(
                graph, sigma, workers=k, backend="fragment", fragment_mode=mode
            )
            assert report.violations == reference, (mode, k)
            assert report.backend == "fragment"

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_random_workload_indexed(self, mode):
        graph = validation_workload(120, rng=13)
        attach_index(graph)
        sigma = bounded_rule_set()
        reference = reference_report(graph, sigma)
        report = parallel_find_violations(
            graph, sigma, workers=3, backend="fragment", fragment_mode=mode
        )
        assert report.violations == reference
        assert report.indexed

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    @pytest.mark.parametrize("indexed", [False, True])
    def test_social_workload_with_deep_pattern(self, mode, indexed):
        graph, _ = synthetic_social_network(
            n_rings=2, n_benign_pairs=2, n_background_accounts=6, k=2, rng=3
        )
        sigma = [paper.phi5(k=2, keyword="peculiar")]
        if indexed:
            attach_index(graph)
        else:
            detach_index(graph)
        reference = reference_report(graph, sigma)
        report = parallel_find_violations(
            graph, sigma, workers=3, backend="fragment", fragment_mode=mode
        )
        assert report.violations == reference

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_escalation_path_is_exercised_and_exact(self, mode):
        # Clustered data: deep-in-community pivots stay local, cut-side
        # pivots escalate — both paths run in one report.
        graph = clustered_workload(200, n_clusters=4, rng=7)
        detach_index(graph)
        sigma = [radius2_rule()]
        fragmentation = get_fragments(graph, 4, mode)
        _, per_fragment, escalated = plan_fragment_pivots(graph, sigma[0], fragmentation)
        assert escalated, "workload too small to cross cuts — grow it"
        assert per_fragment, "everything escalated — ball rule too weak"
        report = parallel_find_violations(
            graph, sigma, workers=4, backend="fragment", fragment_mode=mode
        )
        assert report.violations == reference_report(graph, sigma)

    def test_prebuilt_fragmentation_is_honored(self):
        graph = clustered_workload(150, n_clusters=5, rng=3)
        sigma = bounded_rule_set()
        fragmentation = partition_graph(graph, 5, "greedy")
        report = parallel_find_violations(
            graph, sigma, workers=2, backend="fragment", fragmentation=fragmentation
        )
        assert report.violations == reference_report(graph, sigma)

    def test_stale_prebuilt_fragmentation_rejected(self):
        """A partition of an older graph version must be refused, not
        silently merged with fresh escalations."""
        graph = validation_workload(50, rng=3)
        fragmentation = partition_graph(graph, 3, "hash")
        graph.set_attribute(graph.node_ids[0], "score", 99)
        with pytest.raises(ValueError, match="stale"):
            parallel_find_violations(
                graph,
                bounded_rule_set(),
                workers=3,
                backend="fragment",
                fragmentation=fragmentation,
            )


class TestPropertyDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        indexed=st.booleans(),
        k=st.integers(min_value=1, max_value=5),
        mode=st.sampled_from(PARTITION_MODES),
    )
    @settings(max_examples=12, deadline=None)
    def test_fragment_equals_serial_on_random_graphs(self, seed, indexed, k, mode):
        graph = random_labeled_graph(
            12,
            0.3,
            node_labels=["user", "item", "shop"],
            edge_labels=["buys", "sells"],
            attribute_names=["score", "region"],
            attribute_values=[1, 2],
            rng=seed,
        )
        if indexed:
            attach_index(graph)
        sigma = bounded_rule_set() + [radius2_rule()]
        serial = parallel_find_violations(graph, sigma, workers=k, backend="serial")
        fragment = parallel_find_violations(
            graph, sigma, workers=k, backend="fragment", fragment_mode=mode
        )
        assert fragment.violations == serial.violations


class TestBallCompleteness:
    def test_pivot_radius(self):
        sigma = bounded_rule_set()
        assert pivot_radius(sigma[0].pattern, "u") == 1
        assert pivot_radius(sigma[2].pattern, "i") == 0
        disconnected = Pattern({"a": "user", "b": "shop"}, [])
        assert pivot_radius(disconnected, "a") is None

    def test_disconnected_pattern_escalates_everything(self):
        graph = validation_workload(40, rng=1)
        fragmentation = partition_graph(graph, 2, "hash")
        fragment = fragmentation.fragments[0]
        pivots = sorted(fragment.interior)[:5]
        local, escalated = split_local_pivots(
            fragment.graph, fragment.interior, pivots, None
        )
        assert local == [] and escalated == pivots

    def test_radius_zero_is_always_local(self):
        graph = validation_workload(40, rng=1)
        fragmentation = partition_graph(graph, 2, "hash")
        fragment = fragmentation.fragments[0]
        pivots = sorted(fragment.interior)
        local, escalated = split_local_pivots(
            fragment.graph, fragment.interior, pivots, 0
        )
        assert local == pivots and escalated == []
