"""Sharded validation over GKey (pattern + copy) dependencies.

GKey patterns are the stress case for sharding: the doubled pattern has
twice the variables, matches may bind the original and the copy to the
same nodes (homomorphism semantics), and the violated literal is an id
literal.  The shards must still partition the match set exactly.
"""

from repro.deps.ged import make_gkey
from repro.graph.graph import Graph
from repro.parallel import parallel_find_violations
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import find_violations


def duplicate_albums() -> Graph:
    g = Graph()
    for node_id, title in [("a1", "Bleach"), ("a2", "Bleach"), ("a3", "Nevermind")]:
        g.add_node(node_id, "album", {"title": title})
    return g


def title_key():
    return make_gkey(
        Pattern({"x": "album"}), "x", value_attrs={"x": ["title"]}, name="by-title"
    )


class TestGkeySharding:
    def test_sharded_equals_reference(self):
        g = duplicate_albums()
        rules = [title_key()]
        reference = {v.match for v in find_violations(g, rules)}
        assert reference  # a1/a2 share the title but are distinct nodes
        for workers in (1, 2, 3, 5):
            report = parallel_find_violations(g, rules, workers=workers)
            assert {v.match for v in report.violations} == reference

    def test_thread_backend_on_gkeys(self):
        g = duplicate_albums()
        rules = [title_key()]
        serial = parallel_find_violations(g, rules, workers=3, backend="serial")
        threaded = parallel_find_violations(g, rules, workers=3, backend="thread")
        assert [v.match for v in threaded.violations] == [
            v.match for v in serial.violations
        ]

    def test_clean_after_dedup(self):
        g = duplicate_albums()
        from repro.quality.entity_resolution import resolve_entities

        result = resolve_entities(g, [title_key()])
        assert result.consistent
        report = parallel_find_violations(result.resolved_graph, [title_key()], workers=3)
        assert report.valid
