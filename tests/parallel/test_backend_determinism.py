"""Cross-backend determinism: every backend, the same ordered report.

The satellite property of the parallel layer — serial, thread, process
(engine-routed, one-shot), and engine (warm pool) backends return
*identical, identically ordered* violation lists, with and without an
attached index — on both workload families.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.engine import shutdown_pools
from repro.graph.generators import random_labeled_graph
from repro.indexing import attach_index, detach_index
from repro.parallel import parallel_find_violations
from repro.reasoning import find_violations
from repro.workloads import (
    bounded_rule_set,
    synthetic_social_network,
    validation_workload,
)

BACKENDS = ("serial", "thread", "process", "engine", "fragment")


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    shutdown_pools()


def assert_backends_agree(graph, sigma, workers=3):
    reference = sorted(
        find_violations(graph, sigma),
        key=lambda v: (v.ged.name or "", str(v.ged), v.match),
    )
    for backend in BACKENDS:
        report = parallel_find_violations(graph, sigma, workers=workers, backend=backend)
        assert report.violations == reference, f"{backend} diverged"


class TestRandomGraphWorkload:
    @pytest.mark.parametrize("seed", [3, 13, 99])
    def test_all_backends_identical_without_index(self, seed):
        graph = validation_workload(120, rng=seed)
        detach_index(graph)
        assert_backends_agree(graph, bounded_rule_set())

    @pytest.mark.parametrize("seed", [3, 13])
    def test_all_backends_identical_with_index(self, seed):
        graph = validation_workload(120, rng=seed)
        attach_index(graph)
        assert_backends_agree(graph, bounded_rule_set())


class TestSocialWorkload:
    def social(self, rng):
        graph, _ = synthetic_social_network(
            n_rings=2, n_benign_pairs=2, n_background_accounts=6, k=2, rng=rng
        )
        return graph

    @pytest.mark.parametrize("indexed", [False, True])
    def test_all_backends_identical(self, indexed):
        graph = self.social(rng=3)
        sigma = [paper.phi5(k=2, keyword="peculiar")]
        if indexed:
            attach_index(graph)
        else:
            detach_index(graph)
        assert_backends_agree(graph, sigma)


class TestPropertyDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        indexed=st.booleans(),
        workers=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=8, deadline=None)
    def test_engine_equals_serial_on_random_graphs(self, seed, indexed, workers):
        graph = random_labeled_graph(
            10,
            0.3,
            node_labels=["user", "item", "shop"],
            edge_labels=["buys", "sells"],
            attribute_names=["score", "region"],
            attribute_values=[1, 2],
            rng=seed,
        )
        if indexed:
            attach_index(graph)
        sigma = bounded_rule_set()
        serial = parallel_find_violations(graph, sigma, workers=workers, backend="serial")
        threaded = parallel_find_violations(graph, sigma, workers=workers, backend="thread")
        engine = parallel_find_violations(graph, sigma, workers=workers, backend="engine")
        assert serial.violations == threaded.violations == engine.violations
        shutdown_pools()


class TestWorkersValidation:
    @pytest.mark.parametrize("bad", [0, -1, -4])
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_zero_and_negative_workers_rejected(self, bad, backend):
        graph = validation_workload(30, rng=1)
        with pytest.raises(ValueError, match="positive integer"):
            parallel_find_violations(graph, bounded_rule_set(), workers=bad, backend=backend)

    def test_default_workers_capped_at_cpu_count(self):
        import os

        graph = validation_workload(30, rng=1)
        report = parallel_find_violations(graph, bounded_rule_set())
        assert 1 <= report.workers <= max(1, os.cpu_count() or 1)
