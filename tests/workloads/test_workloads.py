"""Workload generator tests: determinism, ground-truth bookkeeping."""

from repro.workloads import (
    bounded_rule_set,
    synthetic_knowledge_base,
    synthetic_social_network,
    validation_workload,
)


class TestKnowledgeBase:
    def test_deterministic(self):
        a, ea = synthetic_knowledge_base(rng=5)
        b, eb = synthetic_knowledge_base(rng=5)
        assert a == b
        assert ea.wrong_creator == eb.wrong_creator

    def test_zero_error_rate_plants_nothing(self):
        _, errors = synthetic_knowledge_base(error_rate=0.0, rng=1)
        assert errors.total() == 0

    def test_full_error_rate_plants_everywhere(self):
        _, errors = synthetic_knowledge_base(
            n_products=5, n_countries=5, n_species=5, n_families=5, n_albums=5,
            error_rate=1.0, rng=1,
        )
        assert len(errors.wrong_creator) == 5
        assert len(errors.double_capital) == 5
        assert len(errors.broken_inheritance) == 5
        assert len(errors.child_and_parent) == 5
        assert len(errors.duplicate_albums) == 5

    def test_entity_counts(self):
        g, _ = synthetic_knowledge_base(
            n_products=3, n_countries=2, n_species=2, n_families=2, n_albums=2,
            error_rate=0.0, rng=0,
        )
        assert len(g.nodes_with_label("product")) == 3
        assert len(g.nodes_with_label("country")) == 2
        assert len(g.nodes_with_label("album")) == 2


class TestSocialNetwork:
    def test_ground_truth_sizes(self):
        _, truth = synthetic_social_network(n_rings=4, n_benign_pairs=3, rng=2)
        assert len(truth.seeds) == 4
        assert len(truth.undetected_fakes) == 4
        assert len(truth.benign_lookalikes) == 3

    def test_seeds_marked_fake(self):
        g, truth = synthetic_social_network(n_rings=2, rng=2)
        for seed in truth.seeds:
            assert g.node(seed).get("is_fake") == 1
        for mule in truth.undetected_fakes:
            assert g.node(mule).get("is_fake") == 0

    def test_ring_structure_matches_q5(self):
        from repro import paper
        from repro.matching import has_match

        g, _ = synthetic_social_network(n_rings=1, n_benign_pairs=0,
                                        n_background_accounts=0, rng=0)
        assert has_match(paper.q5(k=2), g)


class TestValidationWorkload:
    def test_scales_and_is_deterministic(self):
        small = validation_workload(20, rng=3)
        again = validation_workload(20, rng=3)
        big = validation_workload(200, rng=3)
        assert small == again
        assert big.num_nodes == 200

    def test_bounded_rules_are_small(self):
        for ged in bounded_rule_set():
            assert ged.pattern.size() <= 4
