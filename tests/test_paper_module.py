"""Golden tests for repro.paper: the running examples match the paper.

Checks the Table 1 "Connection with GEDs" column (which sub-class each
running dependency belongs to) and the structural claims the prose
makes about Figures 1–4.
"""

from repro import paper
from repro.chase import canonical_graph
from repro.matching import has_match
from repro.patterns import WILDCARD


class TestFigure1Patterns:
    def test_q1_product_creator(self):
        q = paper.q1()
        assert q.label_of("x") == "product" and q.label_of("y") == "person"
        assert ("y", "create", "x") in q.edges

    def test_q2_two_capitals(self):
        q = paper.q2()
        assert q.label_of("y") == q.label_of("z") == "city"
        assert q.num_edges == 2

    def test_q3_generic_is_a_wildcards(self):
        q = paper.q3()
        assert q.label_of("x") == WILDCARD and q.label_of("y") == WILDCARD
        assert ("y", "is_a", "x") in q.edges

    def test_q4_child_and_parent(self):
        q = paper.q4()
        assert ("x", "child", "y") in q.edges and ("x", "parent", "y") in q.edges

    def test_q5_spam_shape(self):
        q = paper.q5(k=3)
        # 2 accounts + 2 posted blogs + 3 liked blogs.
        assert q.num_variables == 7
        assert ("x", "post", "z1") in q.edges and ("xp", "post", "z2") in q.edges
        assert sum(1 for (s, l, t) in q.edges if l == "like") == 6

    def test_q6_q7_key_patterns_are_copies(self):
        psi1 = paper.psi1()
        assert psi1.pattern.num_variables == 4  # Q16 + its copy
        psi2 = paper.psi2()
        assert psi2.pattern.num_variables == 2  # two album nodes


class TestTable1ConnectionColumn:
    """Table 1's right column: which sub-class each dependency is."""

    def test_gfds_are_geds_without_id_literals(self):
        for phi in (paper.phi1(), paper.phi2(), paper.phi3(), paper.phi4(), paper.phi5()):
            assert phi.is_gfd

    def test_gkeys_conclude_with_id_literal(self):
        from repro.deps import IdLiteral

        for psi in (paper.psi1(), paper.psi2(), paper.psi3()):
            (y_literal,) = psi.Y
            assert isinstance(y_literal, IdLiteral)

    def test_gedx_means_no_constants(self):
        assert paper.psi1().is_gedx and not paper.phi1().is_gedx

    def test_gfdx_means_neither(self):
        assert paper.phi2().is_gfdx and paper.phi3().is_gfdx
        assert not paper.psi1().is_gfdx and not paper.phi1().is_gfdx


class TestExample5Structure:
    def test_f_is_a_homomorphism_q2_to_q1(self):
        """The prose: f maps Q2 into Q1 (wildcards onto concrete)."""
        assert has_match(paper.example5_q2(), canonical_graph(paper.example5_q1()))

    def test_q1_not_homomorphic_to_q2(self):
        assert not has_match(paper.example5_q1(), canonical_graph(paper.example5_q2()))

    def test_q2_prime_not_homomorphic_either_way(self):
        q1, q2p = paper.example5_q1(), paper.example5_q2_prime()
        assert not has_match(q1, canonical_graph(q2p))
        assert not has_match(q2p, canonical_graph(q1))


class TestExample7Structure:
    def test_x3_x4_have_distinct_concrete_labels(self):
        q = paper.example7_phi().pattern
        assert q.label_of("x1") == q.label_of("x2") == WILDCARD
        assert q.label_of("x3") != q.label_of("x4")
        assert WILDCARD not in (q.label_of("x3"), q.label_of("x4"))


class TestExample4Structure:
    def test_graph_shape(self):
        g = paper.example4_graph()
        assert g.node("v1").get("A") == 1 and g.node("v2").get("A") == 1
        assert g.node("w1").label != g.node("w2").label
