"""Every reduction cross-checked against its brute-force oracle.

These are the load-bearing tests for the Table 1 lower-bound
reproductions: on exhaustive families of small instances, the decision
procedure applied to the reduced instance must agree with the oracle
on the source instance.
"""

import pytest

from repro.graph import complete_graph, cycle_graph, path_graph, random_connected_undirected_graph
from repro.reasoning import implies, is_satisfiable, validates
from repro.reductions import (
    gdc_ggcp_instance,
    gedvee_ggcp_instance,
    gfd_satisfiability_instance,
    gfdx_implication_instance,
    gfdx_validation_instance,
    ggcp_satisfiable,
    gkey_implication_instance,
    gkey_satisfiability_instance,
    gkey_validation_instance,
    is_three_colorable,
    witness_model,
)


def small_instances():
    """A zoo of small connected loop-free instances, both 3-colorable
    (cycles, paths, K3) and not (K4, K5, wheel-ish)."""
    instances = [
        complete_graph(3),
        complete_graph(4),
        complete_graph(5),
        cycle_graph(4),
        cycle_graph(5),
        cycle_graph(7),
        path_graph(4),
    ]
    for seed in range(4):
        instances.append(random_connected_undirected_graph(5, rng=seed))
    return instances


class TestSatisfiabilityReductions:
    @pytest.mark.parametrize("index", range(11))
    def test_gfd_reduction(self, index):
        h = small_instances()[index]
        sigma = gfd_satisfiability_instance(h)
        assert all(g.is_gfd for g in sigma) and len(sigma) == 2
        assert is_satisfiable(sigma) == (not is_three_colorable(h))

    @pytest.mark.parametrize("index", range(11))
    def test_gkey_reduction(self, index):
        h = small_instances()[index]
        sigma = gkey_satisfiability_instance(h)
        assert all(not g.has_constant_literals for g in sigma)
        assert is_satisfiable(sigma) == (not is_three_colorable(h))


class TestImplicationReductions:
    @pytest.mark.parametrize("index", range(11))
    def test_gfdx_reduction(self, index):
        h = small_instances()[index]
        sigma, phi = gfdx_implication_instance(h)
        assert len(sigma) == 1 and sigma[0].is_gfdx and phi.is_gfdx
        assert implies(sigma, phi) == is_three_colorable(h)

    @pytest.mark.parametrize("index", range(11))
    def test_gkey_reduction(self, index):
        h = small_instances()[index]
        sigma, phi = gkey_implication_instance(h)
        assert implies(sigma, phi) == is_three_colorable(h)


class TestValidationReductions:
    @pytest.mark.parametrize("index", range(11))
    def test_gfdx_reduction(self, index):
        h = small_instances()[index]
        graph, sigma = gfdx_validation_instance(h)
        assert len(sigma) == 1 and sigma[0].is_gfdx
        assert validates(graph, sigma) == (not is_three_colorable(h))

    @pytest.mark.parametrize("index", range(11))
    def test_gkey_reduction(self, index):
        h = small_instances()[index]
        graph, sigma = gkey_validation_instance(h)
        assert validates(graph, sigma) == (not is_three_colorable(h))


def ggcp_instances():
    """(F, k) pairs small enough for the Σp2 search."""
    return [
        (path_graph(2), 2),       # satisfiable: color the edge 0/1
        (complete_graph(3), 2),   # unsat: some edge is monochromatic
        (complete_graph(3), 3),   # satisfiable: 2+1 split has no mono K3
        (path_graph(3), 2),       # satisfiable
    ]


class TestGGCPReductions:
    @pytest.mark.parametrize("index", range(4))
    def test_gdc_reduction(self, index):
        from repro.extensions import gdc_satisfiable, gdc_validates

        f, k = ggcp_instances()[index]
        sigma = gdc_ggcp_instance(f, k)
        assert len(sigma) == 4
        expected = ggcp_satisfiable(f, k)
        ok, witness = gdc_satisfiable(sigma, max_nodes=9)
        assert ok == expected
        if ok:
            assert gdc_validates(witness, sigma)

    @pytest.mark.parametrize("index", range(4))
    def test_gedvee_reduction_via_disjunctive_chase(self, index):
        from repro.extensions import disjunctive_chase_satisfiable, vee_validates

        f, k = ggcp_instances()[index]
        sigma = gedvee_ggcp_instance(f, k)
        assert len(sigma) == 3
        expected = ggcp_satisfiable(f, k)
        ok, witness = disjunctive_chase_satisfiable(sigma)
        assert ok == expected
        if ok:
            assert vee_validates(witness, sigma)

    def test_witness_model_is_a_model(self):
        from repro.extensions import gdc_validates
        from repro.reductions import ggcp_two_coloring

        f, k = complete_graph(4), 3
        coloring = ggcp_two_coloring(f, k)
        model = witness_model(f, k, coloring)
        assert gdc_validates(model, gdc_ggcp_instance(f, k))
