"""Brute-force oracles: 3-colorability and GGCP."""

import pytest

from repro.errors import ReductionError
from repro.graph import (
    GraphBuilder,
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_undirected_graph,
)
from repro.reductions import (
    check_coloring_instance,
    find_three_coloring,
    ggcp_satisfiable,
    ggcp_two_coloring,
    has_clique,
    is_three_colorable,
)
from repro.reductions.ggcp import adjacency_of


class TestThreeColoring:
    def test_triangle_is_3_colorable(self):
        assert is_three_colorable(complete_graph(3))

    def test_k4_is_not(self):
        assert not is_three_colorable(complete_graph(4))

    def test_odd_cycle(self):
        assert is_three_colorable(cycle_graph(5))

    def test_path(self):
        assert is_three_colorable(path_graph(4))

    def test_coloring_witness_is_proper(self):
        g = random_connected_undirected_graph(8, rng=11)
        coloring = find_three_coloring(g)
        if coloring is not None:
            from repro.graph import undirected_edge_set

            for a, b in undirected_edge_set(g):
                assert coloring[a] != coloring[b]
            assert is_three_colorable(g)
        else:
            assert not is_three_colorable(g)

    def test_instance_validation(self):
        bad = GraphBuilder().node("a", "v").edge("a", "adj", "a").build()
        with pytest.raises(ReductionError):
            check_coloring_instance(bad)
        one_way = GraphBuilder().nodes("v", "a", "b").edge("a", "adj", "b").build()
        with pytest.raises(ReductionError):
            check_coloring_instance(one_way)
        empty = GraphBuilder().nodes("v", "a").build()
        with pytest.raises(ReductionError):
            check_coloring_instance(empty)
        wrong_label = GraphBuilder().nodes("v", "a", "b").undirected_edge("a", "link", "b").build()
        with pytest.raises(ReductionError):
            check_coloring_instance(wrong_label)


class TestGGCP:
    def test_clique_detection(self):
        g = complete_graph(4)
        adjacency = adjacency_of(g)
        assert has_clique(sorted(g.node_ids), adjacency, 4)
        assert has_clique(sorted(g.node_ids), adjacency, 3)
        assert not has_clique(["n0", "n1"], adjacency, 3)

    def test_edge_always_monochromatic_somewhere_in_k3(self):
        """K3 cannot be 2-colored without a monochromatic edge (K2)."""
        assert not ggcp_satisfiable(complete_graph(3), 2)

    def test_k2_instance_trivial(self):
        """A single edge can be 2-colored with no mono edge."""
        assert ggcp_satisfiable(path_graph(2), 2)

    def test_k4_avoids_mono_triangle(self):
        """K4 2-colored into two pairs has no monochromatic K3."""
        assert ggcp_satisfiable(complete_graph(4), 3)

    def test_k6_forces_mono_triangle(self):
        """Ramsey: R(3,3) = 6 — every 2-coloring of K6's *vertices*...
        vertex version: 6 nodes, some class has ≥ 3 nodes, and in K6
        every 3 nodes form a triangle, so no good coloring exists for
        k = 3 needs ≥ 5 in one class — actually any class of size ≥ 3
        is a K3.  So unsatisfiable."""
        assert not ggcp_satisfiable(complete_graph(6), 3)

    def test_k4_k3_coloring_witness(self):
        coloring = ggcp_two_coloring(complete_graph(4), 3)
        assert coloring is not None
        # Neither color class may have 3 mutually adjacent nodes.
        for color in (0, 1):
            assert sum(1 for v in coloring.values() if v == color) <= 2

    def test_bad_k(self):
        with pytest.raises(ReductionError):
            ggcp_two_coloring(complete_graph(3), 1)
