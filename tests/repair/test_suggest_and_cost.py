"""Tests for repair suggestion generation and the cost model."""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import FALSE, ConstantLiteral, IdLiteral, VariableLiteral
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import find_violations
from repro.repair.cost import UNREPAIRABLE, CostModel
from repro.repair.operations import (
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    RemoveAttribute,
    SetAttribute,
    apply_operations,
)
from repro.repair.suggest import plan_preview, suggest_repairs


def creator_graph() -> Graph:
    """A video game created by a psychologist (Example 1's Tony Gibson)."""
    g = Graph()
    g.add_node("t", "person", {"type": "psychologist"})
    g.add_node("g", "product", {"type": "video game"})
    g.add_edge("t", "create", "g")
    return g


def creator_rule() -> GED:
    """phi1: video games are created by programmers."""
    q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
    return GED(
        q,
        [ConstantLiteral("y", "type", "video game")],
        [ConstantLiteral("x", "type", "programmer")],
        name="phi1",
    )


class TestForwardSuggestions:
    def test_constant_literal_forward_repair(self):
        g = creator_graph()
        (violation,) = find_violations(g, [creator_rule()])
        plans = suggest_repairs(g, violation, allow_backward=False)
        assert (SetAttribute("t", "type", "programmer"),) in plans

    def test_every_forward_plan_fixes_the_violation(self):
        g = creator_graph()
        rule = creator_rule()
        (violation,) = find_violations(g, [rule])
        for plan in suggest_repairs(g, violation, allow_backward=False):
            repaired = apply_operations(g, plan)
            assert not find_violations(repaired, [rule])

    def test_variable_literal_two_sided_repair(self):
        g = Graph()
        g.add_node("c", "country")
        g.add_node("h", "city", {"name": "Helsinki"})
        g.add_node("s", "city", {"name": "Saint Petersburg"})
        g.add_edge("c", "capital", "h")
        g.add_edge("c", "capital", "s")
        q = Pattern(
            {"x": "country", "y": "city", "z": "city"},
            [("x", "capital", "y"), ("x", "capital", "z")],
        )
        rule = GED(q, [], [VariableLiteral("y", "name", "z", "name")])
        violations = find_violations(g, [rule])
        assert violations
        plans = suggest_repairs(g, violations[0], allow_backward=False)
        values = {
            op.value for plan in plans for op in plan if isinstance(op, SetAttribute)
        }
        assert {"Helsinki", "Saint Petersburg"} <= values

    def test_variable_literal_generates_attribute_when_both_missing(self):
        g = Graph()
        g.add_node("m", "bird")
        g.add_node("n", "bird")
        g.add_edge("m", "same_species", "n")
        q = Pattern({"x": "bird", "y": "bird"}, [("x", "same_species", "y")])
        rule = GED(q, [], [VariableLiteral("x", "wingspan", "y", "wingspan")])
        violations = find_violations(g, [rule])
        plans = suggest_repairs(g, violations[0], allow_backward=False)
        assert any(len(plan) == 2 for plan in plans)
        for plan in plans:
            repaired = apply_operations(g, plan)
            assert not find_violations(repaired, [rule])

    def test_id_literal_suggests_merge_when_compatible(self):
        g = Graph()
        g.add_node("a1", "album", {"title": "Bleach"})
        g.add_node("a2", "album", {"release": 1989})
        g.add_node("ar", "artist", {"name": "Nirvana"})
        g.add_edge("a1", "by", "ar")
        g.add_edge("a2", "by", "ar")
        q = Pattern(
            {"x": "album", "y": "album", "z": "artist"},
            [("x", "by", "z"), ("y", "by", "z")],
        )
        rule = GED(q, [], [IdLiteral("x", "y")])
        violations = find_violations(g, [rule])
        assert violations
        plans = suggest_repairs(g, violations[0], allow_backward=False)
        assert (MergeNodes("a1", "a2"),) in plans

    def test_id_literal_no_merge_on_attribute_conflict(self):
        g = Graph()
        g.add_node("a1", "album", {"title": "Bleach"})
        g.add_node("a2", "album", {"title": "Nevermind"})
        g.add_node("ar", "artist")
        g.add_edge("a1", "by", "ar")
        g.add_edge("a2", "by", "ar")
        q = Pattern(
            {"x": "album", "y": "album", "z": "artist"},
            [("x", "by", "z"), ("y", "by", "z")],
        )
        rule = GED(q, [], [IdLiteral("x", "y")])
        violations = find_violations(g, [rule])
        plans = suggest_repairs(g, violations[0], allow_backward=False)
        assert not any(isinstance(op, MergeNodes) for plan in plans for op in plan)

    def test_forbidding_constraint_has_no_forward_repair(self):
        g = Graph()
        g.add_node("p1", "person")
        g.add_node("p2", "person")
        g.add_edge("p1", "child", "p2")
        g.add_edge("p1", "parent", "p2")
        q = Pattern(
            {"x": "person", "y": "person"},
            [("x", "child", "y"), ("x", "parent", "y")],
        )
        rule = GED(q, [], [FALSE], name="phi4")
        (violation,) = find_violations(g, [rule])
        assert suggest_repairs(g, violation, allow_backward=False) == []


class TestBackwardSuggestions:
    def test_backward_retracts_premise_attribute(self):
        g = creator_graph()
        (violation,) = find_violations(g, [creator_rule()])
        plans = suggest_repairs(g, violation, allow_backward=True)
        assert (RemoveAttribute("g", "type"),) in plans

    def test_backward_deletes_match_edge(self):
        g = creator_graph()
        (violation,) = find_violations(g, [creator_rule()])
        plans = suggest_repairs(g, violation, allow_backward=True)
        assert (DeleteEdge("t", "create", "g"),) in plans

    def test_forbidding_constraint_backward_repairs_work(self):
        g = Graph()
        g.add_node("p1", "person")
        g.add_node("p2", "person")
        g.add_edge("p1", "child", "p2")
        g.add_edge("p1", "parent", "p2")
        q = Pattern(
            {"x": "person", "y": "person"},
            [("x", "child", "y"), ("x", "parent", "y")],
        )
        rule = GED(q, [], [FALSE])
        (violation,) = find_violations(g, [rule])
        plans = suggest_repairs(g, violation, allow_backward=True)
        assert plans
        for plan in plans:
            repaired = apply_operations(g, plan)
            assert not find_violations(repaired, [rule])

    def test_plan_preview_is_readable(self):
        g = creator_graph()
        (violation,) = find_violations(g, [creator_rule()])
        previews = plan_preview(suggest_repairs(g, violation))
        assert any("programmer" in line for line in previews)


class TestCostModel:
    def test_default_prefers_forward_value_repair(self):
        model = CostModel()
        assert model.cost(SetAttribute("n", "a", 1)) < model.cost(RemoveAttribute("n", "a"))
        assert model.cost(RemoveAttribute("n", "a")) < model.cost(MergeNodes("n", "m"))
        assert model.cost(MergeNodes("n", "m")) < model.cost(DeleteEdge("n", "e", "m"))
        assert model.cost(DeleteEdge("n", "e", "m")) < model.cost(DeleteNode("n"))

    def test_protected_attribute_is_unrepairable(self):
        model = CostModel()
        model.protect_attribute("n", "a")
        assert model.cost(SetAttribute("n", "a", 1)) == UNREPAIRABLE
        assert model.cost(RemoveAttribute("n", "a")) == UNREPAIRABLE
        assert model.cost(SetAttribute("n", "b", 1)) < UNREPAIRABLE

    def test_protected_node_blocks_merge_and_delete(self):
        model = CostModel()
        model.protect_node("n")
        assert model.cost(MergeNodes("m", "n")) == UNREPAIRABLE
        assert model.cost(DeleteNode("n")) == UNREPAIRABLE
        # merging INTO a protected node keeps it: allowed
        assert model.cost(MergeNodes("n", "m")) < UNREPAIRABLE

    def test_protected_edge(self):
        model = CostModel()
        model.protect_edge("a", "e", "b")
        assert model.cost(DeleteEdge("a", "e", "b")) == UNREPAIRABLE

    def test_plan_cost_sums(self):
        model = CostModel()
        plan = [SetAttribute("n", "a", 1), SetAttribute("n", "b", 2)]
        assert model.plan_cost(plan) == 2 * model.set_attribute
        assert model.affordable(plan)

    def test_unknown_operation_rejected(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            CostModel().cost(Bogus())
