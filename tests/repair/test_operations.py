"""Unit tests for primitive repair operations."""

import pytest

from repro.errors import RepairError
from repro.graph.graph import Graph
from repro.repair.operations import (
    DeleteEdge,
    DeleteNode,
    MergeNodes,
    RemoveAttribute,
    SetAttribute,
    apply_operations,
)


def small_graph() -> Graph:
    g = Graph()
    g.add_node("a", "person", {"name": "Ada", "age": 36})
    g.add_node("b", "person", {"name": "Bob"})
    g.add_node("p", "product", {"title": "Game"})
    g.add_edge("a", "create", "p")
    g.add_edge("b", "create", "p")
    return g


class TestSetAttribute:
    def test_sets_new_attribute(self):
        g2 = SetAttribute("b", "age", 40).apply(small_graph())
        assert g2.node("b").get("age") == 40

    def test_overwrites_existing(self):
        g2 = SetAttribute("a", "age", 37).apply(small_graph())
        assert g2.node("a").get("age") == 37

    def test_does_not_mutate_input(self):
        g = small_graph()
        SetAttribute("a", "age", 99).apply(g)
        assert g.node("a").get("age") == 36

    def test_unknown_node_raises(self):
        with pytest.raises(RepairError):
            SetAttribute("zzz", "age", 1).apply(small_graph())


class TestRemoveAttribute:
    def test_removes(self):
        g2 = RemoveAttribute("a", "age").apply(small_graph())
        assert not g2.node("a").has_attribute("age")
        assert g2.node("a").get("name") == "Ada"

    def test_preserves_edges(self):
        g2 = RemoveAttribute("a", "age").apply(small_graph())
        assert g2.has_edge("a", "create", "p")

    def test_missing_attribute_raises(self):
        with pytest.raises(RepairError):
            RemoveAttribute("b", "age").apply(small_graph())


class TestDeleteEdge:
    def test_deletes(self):
        g2 = DeleteEdge("a", "create", "p").apply(small_graph())
        assert not g2.has_edge("a", "create", "p")
        assert g2.has_edge("b", "create", "p")

    def test_missing_edge_raises(self):
        with pytest.raises(RepairError):
            DeleteEdge("a", "likes", "p").apply(small_graph())


class TestDeleteNode:
    def test_deletes_node_and_incident_edges(self):
        g2 = DeleteNode("p").apply(small_graph())
        assert not g2.has_node("p")
        assert g2.num_edges == 0

    def test_missing_node_raises(self):
        with pytest.raises(RepairError):
            DeleteNode("zzz").apply(small_graph())


class TestMergeNodes:
    def test_attribute_conflict_raises(self):
        # name differs: Ada vs Bob
        with pytest.raises(RepairError):
            MergeNodes("b", "a").apply(small_graph())

    def test_merge_without_conflicts(self):
        g = Graph()
        g.add_node("x", "city", {"name": "Oslo"})
        g.add_node("y", "city", {"country": "NO"})
        g.add_node("z", "country")
        g.add_edge("z", "capital", "x")
        g.add_edge("y", "in", "z")
        g2 = MergeNodes("x", "y").apply(g)
        assert g2.node("x").get("name") == "Oslo"
        assert g2.node("x").get("country") == "NO"
        assert g2.has_edge("z", "capital", "x")
        assert g2.has_edge("x", "in", "z")

    def test_label_conflict_raises(self):
        g = small_graph()
        with pytest.raises(RepairError):
            MergeNodes("a", "p").apply(g)

    def test_self_merge_raises(self):
        with pytest.raises(RepairError):
            MergeNodes("a", "a").apply(small_graph())

    def test_merge_creates_loop_from_pair_edge(self):
        g = Graph()
        g.add_node("u", "n")
        g.add_node("v", "n")
        g.add_edge("u", "e", "v")
        g2 = MergeNodes("u", "v").apply(g)
        assert g2.has_edge("u", "e", "u")


class TestApplyOperations:
    def test_sequences_compose(self):
        g = small_graph()
        g2 = apply_operations(
            g, [SetAttribute("b", "age", 36), DeleteEdge("b", "create", "p")]
        )
        assert g2.node("b").get("age") == 36
        assert not g2.has_edge("b", "create", "p")

    def test_empty_sequence_is_identity(self):
        g = small_graph()
        assert apply_operations(g, []) == g
