"""Tests for GED∨ (disjunctive) repair."""


from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.extensions.gedvee import GEDVee
from repro.extensions.gedvee_reasoning import vee_find_violations, vee_validates
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.repair import CostModel, repair_vee, suggest_vee_repairs
from repro.repair.operations import RemoveAttribute, SetAttribute, apply_operations


def boolean_domain_rule() -> GEDVee:
    """Example 10: every item's A attribute is 0 or 1."""
    q = Pattern({"x": "item"})
    return GEDVee(
        q,
        [VariableLiteral("x", "A", "x", "A")],  # premise: A exists
        [ConstantLiteral("x", "A", 0), ConstantLiteral("x", "A", 1)],
        name="boolean-A",
    )


def out_of_domain_graph() -> Graph:
    g = Graph()
    g.add_node("n", "item", {"A": 7})
    return g


class TestSuggestVeeRepairs:
    def test_one_forward_plan_per_disjunct(self):
        g = out_of_domain_graph()
        (violation,) = vee_find_violations(g, [boolean_domain_rule()])
        plans = suggest_vee_repairs(g, violation, allow_backward=False)
        assert (SetAttribute("n", "A", 0),) in plans
        assert (SetAttribute("n", "A", 1),) in plans

    def test_each_forward_plan_fixes_violation(self):
        g = out_of_domain_graph()
        rule = boolean_domain_rule()
        (violation,) = vee_find_violations(g, [rule])
        for plan in suggest_vee_repairs(g, violation, allow_backward=False):
            repaired = apply_operations(g, plan)
            assert vee_validates(repaired, [rule])

    def test_backward_plans_available(self):
        g = out_of_domain_graph()
        (violation,) = vee_find_violations(g, [boolean_domain_rule()])
        plans = suggest_vee_repairs(g, violation, allow_backward=True)
        assert (RemoveAttribute("n", "A"),) in plans

    def test_empty_disjunction_has_only_backward_plans(self):
        """Empty Y = forbidding: no forward repair exists."""
        q = Pattern({"x": "item"})
        forbid = GEDVee(q, [ConstantLiteral("x", "A", 7)], [], name="no-sevens")
        g = out_of_domain_graph()
        (violation,) = vee_find_violations(g, [forbid])
        assert suggest_vee_repairs(g, violation, allow_backward=False) == []
        plans = suggest_vee_repairs(g, violation, allow_backward=True)
        assert (RemoveAttribute("n", "A"),) in plans


class TestRepairVee:
    def test_domain_violation_repaired(self):
        rule = boolean_domain_rule()
        report = repair_vee(out_of_domain_graph(), [rule])
        assert report.clean
        assert report.graph.node("n").get("A") in {0, 1}
        assert vee_validates(report.graph, [rule])

    def test_clean_graph_untouched(self):
        g = Graph()
        g.add_node("n", "item", {"A": 1})
        report = repair_vee(g, [boolean_domain_rule()])
        assert report.clean
        assert report.applied == []

    def test_protections_force_backward(self):
        model = CostModel()
        model.protect_attribute("n", "A")
        rule = boolean_domain_rule()
        report = repair_vee(out_of_domain_graph(), [rule], cost_model=model)
        # A is protected both ways -> only breaking the premise... but the
        # premise *is* A's existence, also protected. Nothing affordable.
        assert not report.clean
        assert report.stopped_reason == "no affordable repair plan"

    def test_budget_exhaustion(self):
        report = repair_vee(
            out_of_domain_graph(), [boolean_domain_rule()], max_operations=0
        )
        assert not report.clean
        assert report.stopped_reason == "operation budget exhausted"

    def test_multiple_nodes_all_repaired(self):
        g = Graph()
        for i, value in enumerate([5, 0, 9, 1, 3]):
            g.add_node(f"n{i}", "item", {"A": value})
        rule = boolean_domain_rule()
        report = repair_vee(g, [rule])
        assert report.clean
        assert len(report.applied) == 3  # exactly the out-of-domain nodes
        for node in report.graph.nodes:
            assert node.get("A") in {0, 1}

    def test_trace_replayable(self):
        g = out_of_domain_graph()
        report = repair_vee(g, [boolean_domain_rule()])
        assert apply_operations(g, report.applied) == report.graph

    def test_mixed_rules(self):
        """A disjunctive domain rule plus an empty-disjunction ban."""
        q = Pattern({"x": "item"})
        domain = boolean_domain_rule()
        ban = GEDVee(q, [ConstantLiteral("x", "banned", 1)], [], name="ban")
        g = Graph()
        g.add_node("a", "item", {"A": 7})
        g.add_node("b", "item", {"A": 0, "banned": 1})
        report = repair_vee(g, [domain, ban])
        assert report.clean
        assert vee_validates(report.graph, [domain, ban])
        assert not report.graph.node("b").has_attribute("banned")
