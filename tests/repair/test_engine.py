"""Tests for the greedy repair engine."""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import FALSE, ConstantLiteral, IdLiteral
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import find_violations, validates
from repro.repair.cost import CostModel
from repro.repair.engine import repair
from repro.repair.operations import DeleteEdge, RemoveAttribute, apply_operations


def creator_rule() -> GED:
    q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
    return GED(
        q,
        [ConstantLiteral("y", "type", "video game")],
        [ConstantLiteral("x", "type", "programmer")],
        name="phi1",
    )


def dirty_creator_graph() -> Graph:
    g = Graph()
    g.add_node("t", "person", {"type": "psychologist"})
    g.add_node("g", "product", {"type": "video game"})
    g.add_edge("t", "create", "g")
    return g


class TestRepairBasics:
    def test_clean_graph_untouched(self):
        g = Graph()
        g.add_node("p", "person", {"type": "programmer"})
        report = repair(g, [creator_rule()])
        assert report.clean
        assert report.applied == []
        assert report.graph == g

    def test_single_forward_repair(self):
        report = repair(dirty_creator_graph(), [creator_rule()])
        assert report.clean
        assert report.graph.node("t").get("type") == "programmer"
        assert report.total_cost == pytest.approx(1.0)

    def test_report_trace_is_replayable(self):
        g = dirty_creator_graph()
        report = repair(g, [creator_rule()])
        replayed = apply_operations(g, report.applied)
        assert replayed == report.graph

    def test_input_graph_not_mutated(self):
        g = dirty_creator_graph()
        repair(g, [creator_rule()])
        assert g.node("t").get("type") == "psychologist"

    def test_verified_clean_flag_matches_validates(self):
        report = repair(dirty_creator_graph(), [creator_rule()])
        assert report.clean == validates(report.graph, [creator_rule()])


class TestProtections:
    def test_protected_attribute_forces_backward_repair(self):
        model = CostModel()
        model.protect_attribute("t", "type")
        report = repair(dirty_creator_graph(), [creator_rule()], cost_model=model)
        assert report.clean
        # the curator pinned t.type, so the engine must retract the
        # premise or break the match instead
        assert report.graph.node("t").get("type") == "psychologist"
        assert any(
            isinstance(op, (RemoveAttribute, DeleteEdge)) for op in report.applied
        )

    def test_fully_protected_instance_stops_dirty(self):
        model = CostModel()
        model.protect_attribute("t", "type")
        model.protect_attribute("g", "type")
        model.protect_edge("t", "create", "g")
        report = repair(dirty_creator_graph(), [creator_rule()], cost_model=model)
        assert not report.clean
        assert report.stopped_reason == "no affordable repair plan"
        assert report.remaining

    def test_forward_only_cannot_fix_forbidding(self):
        g = Graph()
        g.add_node("p1", "person")
        g.add_node("p2", "person")
        g.add_edge("p1", "child", "p2")
        g.add_edge("p1", "parent", "p2")
        q = Pattern(
            {"x": "person", "y": "person"},
            [("x", "child", "y"), ("x", "parent", "y")],
        )
        rule = GED(q, [], [FALSE], name="phi4")
        report = repair(g, [rule], allow_backward=False)
        assert not report.clean
        report_backward = repair(g, [rule], allow_backward=True)
        assert report_backward.clean
        assert g.num_edges - report_backward.graph.num_edges == 1


class TestCascades:
    def test_forward_repairs_cascade_like_chase(self):
        """Fixing rule A's violation creates rule B's premise; the engine
        must keep going until both hold."""
        g = Graph()
        g.add_node("n", "item")
        q = Pattern({"x": "item"})
        rule_a = GED(q, [], [ConstantLiteral("x", "status", "checked")])
        rule_b = GED(
            q,
            [ConstantLiteral("x", "status", "checked")],
            [ConstantLiteral("x", "grade", "A")],
        )
        report = repair(g, [rule_a, rule_b])
        assert report.clean
        assert report.graph.node("n").get("status") == "checked"
        assert report.graph.node("n").get("grade") == "A"
        assert report.rounds >= 2

    def test_conflicting_rules_terminate_via_backward(self):
        """Two rules demand different values for the same attribute: the
        forward repairs oscillate, so the engine must escape through a
        backward repair and still terminate."""
        g = Graph()
        g.add_node("n", "item", {"kind": "widget"})
        q = Pattern({"x": "item"})
        rule1 = GED(
            q, [ConstantLiteral("x", "kind", "widget")], [ConstantLiteral("x", "v", 1)]
        )
        rule2 = GED(
            q, [ConstantLiteral("x", "kind", "widget")], [ConstantLiteral("x", "v", 2)]
        )
        report = repair(g, [rule1, rule2])
        assert report.clean
        # only retracting `kind` (or `v`... but v repairs oscillate) works
        assert not report.graph.node("n").has_attribute("kind")

    def test_budget_exhaustion_reported(self):
        g = dirty_creator_graph()
        report = repair(g, [creator_rule()], max_operations=0)
        assert not report.clean
        assert report.stopped_reason == "operation budget exhausted"


class TestEntityMergeRepairs:
    def test_gkey_violation_repaired_by_merge(self):
        g = Graph()
        g.add_node("a1", "album", {"title": "Bleach"})
        g.add_node("a2", "album", {"release": 1989})
        g.add_node("ar", "artist", {"name": "Nirvana"})
        g.add_edge("a1", "by", "ar")
        g.add_edge("a2", "by", "ar")
        q = Pattern(
            {"x": "album", "y": "album", "z": "artist"},
            [("x", "by", "z"), ("y", "by", "z")],
        )
        rule = GED(q, [], [IdLiteral("x", "y")], name="one-album-per-artist")
        report = repair(g, [rule])
        assert report.clean
        assert report.graph.num_nodes == 2
        (album,) = [n for n in report.graph.nodes if n.label == "album"]
        assert album.get("title") == "Bleach"
        assert album.get("release") == 1989

    def test_merge_conflict_falls_back_to_destructive(self):
        g = Graph()
        g.add_node("a1", "album", {"title": "Bleach"})
        g.add_node("a2", "album", {"title": "Nevermind"})
        g.add_node("ar", "artist")
        g.add_edge("a1", "by", "ar")
        g.add_edge("a2", "by", "ar")
        q = Pattern(
            {"x": "album", "y": "album", "z": "artist"},
            [("x", "by", "z"), ("y", "by", "z")],
        )
        rule = GED(q, [], [IdLiteral("x", "y")])
        report = repair(g, [rule])
        assert report.clean
        assert not find_violations(report.graph, [rule])


class TestMultiRuleWorkload:
    def test_example1_rules_on_planted_errors(self):
        """The knowledge-base rules of Example 1 on a dirty KB: repair
        converges and the result validates."""
        from repro.quality.inconsistencies import example1_rules
        from repro.workloads.kb import synthetic_knowledge_base

        graph, _expected = synthetic_knowledge_base(
            n_products=5, n_countries=3, n_species=3, n_families=3, n_albums=3, rng=7
        )
        rules = example1_rules()
        report = repair(graph, rules, max_operations=500)
        assert report.clean
        assert validates(report.graph, rules)
