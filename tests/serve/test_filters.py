"""Subscription filters: parsing, predicate semantics, and the
server-side filtered fan-out (every subscriber still gets every seq —
filtering narrows frames, never skips them)."""

import asyncio

import pytest

from repro.deps import GED, ConstantLiteral
from repro.graph import GraphBuilder
from repro.graph.update import GraphUpdate
from repro.patterns import WILDCARD, Pattern
from repro.serve import ProtocolError, ServeClient, SubscriptionFilter, ViolationServer


def demo_graph():
    return (
        GraphBuilder()
        .node("c1", "city", {"pop": 1})
        .node("c2", "city", {"pop": 2})
        .node("p1", "person", {"age": 0})
        .node("p2", "person", {"age": 0})
        .edge("p1", "lives_in", "c1")
        .edge("p2", "lives_in", "c2")
        .build()
    )


def demo_sigma():
    """Two named rules: one over (person, city) pairs, one wildcard."""
    residents = GED(
        Pattern({"p": "person", "c": "city"}, [("p", "lives_in", "c")]),
        [],
        [ConstantLiteral("p", "age", 30)],
        name="resident-age",
    )
    anything = GED(
        Pattern({"x": WILDCARD}, []),
        [],
        [ConstantLiteral("x", "checked", 1)],
        name="everything-checked",
    )
    return [residents, anything]


class TestParsing:
    def test_none_and_empty_are_match_all(self):
        assert SubscriptionFilter.from_dict(None).is_all
        assert SubscriptionFilter.from_dict({}).is_all

    def test_rules_split_names_from_positions(self):
        flt = SubscriptionFilter.from_dict({"rules": ["resident-age", 1]})
        assert flt.rule_names == {"resident-age"}
        assert flt.rule_positions == {1}

    def test_roundtrip_through_to_dict(self):
        payload = {"labels": ["city"], "nodes": ["c1", "c2"], "rules": ["r", 0]}
        assert SubscriptionFilter.from_dict(payload).to_dict() == payload

    @pytest.mark.parametrize(
        "bad",
        [
            "city",  # not an object
            {"labls": ["city"]},  # unknown field
            {"nodes": "c1"},  # not a list
            {"labels": [1]},  # wrong element type
            {"rules": [True]},  # bool is not a position
            {"rules": [{"name": "x"}]},  # wrong element type
        ],
    )
    def test_malformed_filters_rejected(self, bad):
        with pytest.raises(ProtocolError):
            SubscriptionFilter.from_dict(bad)


class TestPredicates:
    def setup_method(self):
        self.graph = demo_graph()
        self.sigma = demo_sigma()
        from repro.reasoning import find_violations

        report = find_violations(self.graph, self.sigma)
        self.by_rule = {}
        for violation in report:
            self.by_rule.setdefault(violation.ged.name, []).append(violation)

    def match(self, flt, violation):
        position = self.sigma.index(violation.ged)
        return SubscriptionFilter.from_dict(flt).matches(
            position, violation, self.graph
        )

    def test_rule_name_and_position(self):
        v = self.by_rule["resident-age"][0]
        assert self.match({"rules": ["resident-age"]}, v)
        assert self.match({"rules": [0]}, v)
        assert not self.match({"rules": ["everything-checked"]}, v)
        assert not self.match({"rules": [1]}, v)

    def test_nodes_match_any_embedding_node(self):
        v = next(
            v for v in self.by_rule["resident-age"] if ("c", "c1") in v.match
        )
        assert self.match({"nodes": ["c1"]}, v)
        assert self.match({"nodes": ["p1", "unrelated"]}, v)
        assert not self.match({"nodes": ["c2"]}, v)

    def test_labels_match_declared_variable_labels(self):
        v = self.by_rule["resident-age"][0]
        assert self.match({"labels": ["city"]}, v)
        assert self.match({"labels": ["person"]}, v)
        assert not self.match({"labels": ["shop"]}, v)

    def test_wildcard_labels_resolve_against_live_graph(self):
        v = next(
            v for v in self.by_rule["everything-checked"] if ("x", "c1") in v.match
        )
        assert self.match({"labels": ["city"]}, v)
        assert not self.match({"labels": ["person"]}, v)
        # Deleting the node makes the wildcard unresolvable: no label match.
        self.graph.remove_node("c1")
        assert not self.match({"labels": ["city"]}, v)

    def test_predicates_combine_with_and(self):
        v = next(
            v for v in self.by_rule["resident-age"] if ("c", "c1") in v.match
        )
        assert self.match({"rules": ["resident-age"], "nodes": ["c1"]}, v)
        assert not self.match({"rules": ["resident-age"], "nodes": ["c2"]}, v)


class TestFilteredFanOut:
    def test_each_subscriber_sees_its_slice_with_full_seq_stream(self):
        graph = demo_graph()
        sigma = demo_sigma()

        async def scenario():
            async with ViolationServer(graph, sigma) as server:
                rule_sub = await ServeClient.connect("127.0.0.1", server.port)
                node_sub = await ServeClient.connect("127.0.0.1", server.port)
                label_sub = await ServeClient.connect("127.0.0.1", server.port)
                pub = await ServeClient.connect("127.0.0.1", server.port)

                rule_boot = await rule_sub.subscribe({"rules": ["resident-age"]})
                node_boot = await node_sub.subscribe({"nodes": ["c9"]})
                label_boot = await label_sub.subscribe({"labels": ["person"]})

                assert {v["rule"] for v in rule_boot["violations"]} == {"resident-age"}
                assert node_boot["violations"] == []  # c9 does not exist yet
                assert len(label_boot["violations"]) == 4  # 2 residents + 2 wildcard

                # A new city violating both rules, in c9.
                await pub.send_update(
                    GraphUpdate(
                        nodes=[("c9", "city", {})],
                        edges=[("p1", "lives_in", "c9")],
                    )
                )
                rule_delta = await rule_sub.next_event(timeout=5)
                node_delta = await node_sub.next_event(timeout=5)
                label_delta = await label_sub.next_event(timeout=5)

                # Same seq for everyone — filtering never skips frames.
                assert rule_delta["seq"] == node_delta["seq"] == label_delta["seq"] == 1
                assert {v["rule"] for v in rule_delta["introduced"]} == {"resident-age"}
                assert all(
                    ["c", "c9"] in v["match"] or ["x", "c9"] in v["match"]
                    for v in node_delta["introduced"]
                )
                assert len(node_delta["introduced"]) == 2
                # person-labeled variables: only the resident rule's pair.
                assert {v["rule"] for v in label_delta["introduced"]} == {"resident-age"}

                for client in (rule_sub, node_sub, label_sub, pub):
                    await client.close()

        asyncio.run(scenario())

    def test_bad_filter_is_nonfatal_and_keeps_old_subscription(self):
        graph = demo_graph()
        sigma = demo_sigma()

        async def scenario():
            async with ViolationServer(graph, sigma) as server:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.subscribe({"rules": ["resident-age"]})
                with pytest.raises(ProtocolError, match="unknown filter field"):
                    await client.subscribe({"nope": []})
                # Still subscribed with the old filter.
                await client.send_update(GraphUpdate(nodes=[("c3", "city", {})]))
                delta = await client.next_event(timeout=5)
                assert delta["type"] == "delta" and delta["seq"] == 1
                await client.close()

        asyncio.run(scenario())

    def test_resubscribe_replaces_filter_and_rebootstraps(self):
        graph = demo_graph()
        sigma = demo_sigma()

        async def scenario():
            async with ViolationServer(graph, sigma) as server:
                client = await ServeClient.connect("127.0.0.1", server.port)
                first = await client.subscribe({"rules": ["resident-age"]})
                assert {v["rule"] for v in first["violations"]} == {"resident-age"}
                second = await client.subscribe({"rules": ["everything-checked"]})
                assert {v["rule"] for v in second["violations"]} == {
                    "everything-checked"
                }
                assert server.subscriber_count == 1  # replaced, not duplicated
                await client.close()

        asyncio.run(scenario())
