"""Unit tests for the wire codec: canonical encoding, both framings,
first-byte auto-detection, and malformed-input rejection."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    LENGTH_PREFIXED,
    LINE_DELIMITED,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frames,
    decode_payload,
    detect_framing,
    encode_frame,
    encode_payload,
    read_frame,
)


def run(coro):
    return asyncio.run(coro)


def feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestCanonicalEncoding:
    def test_compact_sorted_utf8(self):
        payload = encode_payload({"type": "bye", "reason": "x", "a": 1})
        assert payload == b'{"a":1,"reason":"x","type":"bye"}'

    def test_key_order_independent(self):
        a = encode_payload({"type": "ack", "seq": 1, "introduced": 0})
        b = encode_payload({"introduced": 0, "seq": 1, "type": "ack"})
        assert a == b

    def test_roundtrip_preserves_value_types(self):
        frame = {
            "type": "update",
            "update": {"attrs": [["n", "score", 1.5], ["m", "flag", True], ["o", "x", None]]},
        }
        assert decode_payload(encode_payload(frame)) == frame

    def test_unknown_type_rejected_on_encode_and_decode(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            encode_payload({"type": "gossip"})
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_payload(b'{"type":"gossip"}')

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            encode_payload(["type", "bye"])
        with pytest.raises(ProtocolError):
            decode_payload(b"[1,2]")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_payload(b"{nope")

    def test_unserializable_frame_rejected(self):
        with pytest.raises(ProtocolError, match="not JSON-representable"):
            encode_payload({"type": "bye", "reason": {1, 2}})


class TestFraming:
    def test_length_prefix_layout(self):
        frame = {"type": "bye"}
        wire = encode_frame(frame, LENGTH_PREFIXED)
        payload = encode_payload(frame)
        assert wire[:4] == len(payload).to_bytes(4, "big")
        assert wire[0] == 0  # the auto-detection invariant
        assert wire[4:] == payload

    def test_line_layout(self):
        wire = encode_frame({"type": "bye"}, LINE_DELIMITED)
        assert wire.endswith(b"\n") and wire.count(b"\n") == 1
        assert wire[0:1] == b"{"  # the auto-detection invariant

    def test_decode_frames_multiple(self):
        frames = [{"type": "bye"}, {"type": "ack", "seq": 2}]
        for framing in (LENGTH_PREFIXED, LINE_DELIMITED):
            wire = b"".join(encode_frame(f, framing) for f in frames)
            assert decode_frames(wire, framing) == frames

    def test_decode_frames_truncation(self):
        wire = encode_frame({"type": "bye"}, LENGTH_PREFIXED)
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frames(wire[:-1], LENGTH_PREFIXED)
        with pytest.raises(ProtocolError, match="trailing bytes"):
            decode_frames(b'{"type":"bye"}', LINE_DELIMITED)  # no newline

    def test_bad_framing_name(self):
        with pytest.raises(ProtocolError, match="framing"):
            encode_frame({"type": "bye"}, "morse")
        with pytest.raises(ProtocolError, match="framing"):
            decode_frames(b"", "morse")

    def test_oversized_length_prefix_rejected(self):
        wire = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(ProtocolError, match="cap"):
            decode_frames(wire, LENGTH_PREFIXED)


class TestStreamReaders:
    def test_detect_length_prefixed(self):
        async def scenario():
            reader = feed(encode_frame({"type": "bye"}, LENGTH_PREFIXED))
            framing = await detect_framing(reader)
            assert framing == LENGTH_PREFIXED
            # Detection must not consume the byte it peeked.
            assert await read_frame(reader, framing) == {"type": "bye"}

        run(scenario())

    def test_detect_line_delimited(self):
        async def scenario():
            reader = feed(encode_frame({"type": "bye"}, LINE_DELIMITED))
            framing = await detect_framing(reader)
            assert framing == LINE_DELIMITED
            assert await read_frame(reader, framing) == {"type": "bye"}

        run(scenario())

    def test_detect_garbage(self):
        async def scenario():
            with pytest.raises(ProtocolError, match="cannot detect framing"):
                await detect_framing(feed(b"GET / HTTP/1.1\r\n"))

        run(scenario())

    def test_read_frame_clean_eof_returns_none(self):
        async def scenario():
            assert await read_frame(feed(b""), LENGTH_PREFIXED) is None
            assert await read_frame(feed(b""), LINE_DELIMITED) is None

        run(scenario())

    def test_read_frame_mid_frame_eof_raises(self):
        async def scenario():
            wire = encode_frame({"type": "bye"}, LENGTH_PREFIXED)
            with pytest.raises(ProtocolError, match="mid length prefix"):
                await read_frame(feed(wire[:2]), LENGTH_PREFIXED)
            with pytest.raises(ProtocolError, match="mid frame payload"):
                await read_frame(feed(wire[:-2]), LENGTH_PREFIXED)
            with pytest.raises(ProtocolError, match="mid line-delimited"):
                await read_frame(feed(b'{"type":"bye"'), LINE_DELIMITED)

        run(scenario())

    def test_read_frame_sequence(self):
        async def scenario():
            frames = [{"type": "ack", "seq": n} for n in range(3)]
            reader = feed(b"".join(encode_frame(f, LENGTH_PREFIXED) for f in frames))
            seen = []
            while (frame := await read_frame(reader, LENGTH_PREFIXED)) is not None:
                seen.append(frame)
            assert seen == frames

        run(scenario())


def test_update_payload_matches_log_encoding():
    """The update frame body is exactly the update-log encoding —
    a log line's ``update`` field can be re-published verbatim."""
    from repro.graph.io import update_from_dict, update_to_dict
    from repro.graph.update import GraphUpdate

    update = GraphUpdate(
        nodes=[("u7", "user", {"score": 2})],
        edges=[("u7", "buys", "i3")],
        del_nodes=["u2"],
    )
    body = update_to_dict(update)
    frame = {"type": "update", "update": body}
    decoded = decode_payload(encode_payload(frame))
    assert update_to_dict(update_from_dict(decoded["update"])) == body
    assert json.dumps(decoded["update"], sort_keys=True) == json.dumps(body, sort_keys=True)
