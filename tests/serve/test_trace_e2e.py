"""End-to-end distributed tracing through a real `cli serve` process.

The acceptance scenario: one published batch produces one assembled
causal tree whose spans were recorded in at least three different
processes — the server loop (``serve.batch`` and the ``serve.push``
delivery), and two engine pool workers (``stream.shard``) — all linked
by the ``TraceContext`` that rode the task payloads and came home on
the ``collect=True`` snapshot channel.

Plus the incremental-flush fix: the exported NDJSON must hold the
batch's spans *before* the server exits, so a SIGKILLed server leaves
usable traces.
"""

import asyncio
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.deps import GED, ConstantLiteral
from repro.deps.io import ged_to_dict
from repro.graph import GraphBuilder
from repro.graph.io import graph_to_json
from repro.graph.update import GraphUpdate
from repro.patterns import Pattern
from repro.serve import ServeClient
from repro.telemetry import assemble_traces
from repro.telemetry.trace import ref_process

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


@pytest.fixture
def fixture_files(tmp_path):
    graph = (
        GraphBuilder()
        .node("c1", "city", {"pop": 1})
        .node("p1", "person", {"age": 0})
        .edge("p1", "lives_in", "c1")
        .build()
    )
    rule = GED(
        Pattern({"p": "person", "c": "city"}, [("p", "lives_in", "c")]),
        [],
        [ConstantLiteral("p", "age", 30)],
        name="resident-age",
    )
    graph_path = tmp_path / "kb.json"
    graph_path.write_text(graph_to_json(graph))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps([ged_to_dict(rule)]))
    return graph_path, rules_path, tmp_path / "updates.jsonl"


def start_serve(args) -> tuple[subprocess.Popen, dict]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=subprocess_env(),
    )
    listening = json.loads(proc.stdout.readline())
    assert listening["type"] == "listening"
    return proc, listening


def subscribe_and_publish(port: int, update: GraphUpdate) -> dict:
    """One subscriber (push delivery) + one publisher; returns the ack."""

    async def run():
        watcher = await ServeClient.connect("127.0.0.1", port)
        publisher = await ServeClient.connect("127.0.0.1", port)
        try:
            await watcher.subscribe()
            ack = await publisher.send_update(update)
            event = await watcher.next_event()
            assert event.get("type") in ("delta", "resync")
            return ack
        finally:
            await publisher.close()
            await watcher.close()

    return asyncio.run(run())


def trace_records(path: pathlib.Path) -> list[dict]:
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def two_node_update() -> GraphUpdate:
    # Two added nodes -> two introduced-scan shards -> two pool workers.
    return GraphUpdate(
        nodes=[("p2", "person", {"age": 30}), ("p3", "person", {"age": 0})]
    )


class TestAssembledTraceAcrossProcesses:
    def test_one_batch_one_tree_three_process_tags(self, fixture_files, tmp_path):
        graph_path, rules_path, log_path = fixture_files
        trace_path = tmp_path / "trace.ndjson"
        proc, listening = start_serve(
            [
                "--log", str(log_path), "--rules", str(rules_path),
                "--graph", str(graph_path),
                "--backend", "engine", "--workers", "2",
                "--telemetry", f"ndjson:{trace_path}",
                "--max-batches", "1",
            ]
        )
        try:
            ack = subscribe_and_publish(listening["port"], two_node_update())
            assert ack["type"] == "ack" and ack["seq"] == 1
            # the ack echoes the batch's trace id (new optional field)
            assert "trace_id" in ack
        finally:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise

        forests = assemble_traces(trace_records(trace_path))
        assert ack["trace_id"] in forests
        (root,) = forests[ack["trace_id"]]
        assert root.name == "serve.batch"

        names = set()
        processes = set()
        for _, node in root.walk():
            names.add(node.name)
            if node.ref:
                processes.add(ref_process(node.ref))
        # the serve pipeline children, in one tree
        assert {
            "serve.validate",
            "serve.log_append",
            "stream.introduce",
            "stream.shard",
            "serve.push",
        } <= names
        # spans recorded in >= 3 distinct processes: the server loop
        # plus the two pool workers that ran the introduced scan
        assert len(processes) >= 3, processes
        shard_tags = {
            ref_process(node.ref)
            for _, node in root.walk()
            if node.name == "stream.shard"
        }
        assert ref_process(root.ref) not in shard_tags

    def test_ack_trace_id_matches_client_supplied_context(self, fixture_files, tmp_path):
        # A client that is itself traced propagates its context over
        # the wire; the server adopts it instead of minting a new one.
        from repro.telemetry.trace import TraceContext

        graph_path, rules_path, log_path = fixture_files
        trace_path = tmp_path / "trace.ndjson"
        proc, listening = start_serve(
            [
                "--log", str(log_path), "--rules", str(rules_path),
                "--graph", str(graph_path),
                "--telemetry", f"ndjson:{trace_path}",
                "--max-batches", "1",
            ]
        )
        try:

            async def publish():
                client = await ServeClient.connect("127.0.0.1", listening["port"])
                try:
                    ctx = TraceContext("cafe0123deadbeef", "client-proc:7")
                    return await client.send_update(two_node_update(), trace=ctx)
                finally:
                    await client.close()

            ack = asyncio.run(publish())
            assert ack["trace_id"] == "cafe0123deadbeef"
        finally:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise

        forests = assemble_traces(trace_records(trace_path))
        (root,) = forests["cafe0123deadbeef"]
        assert root.name == "serve.batch"


class TestIncrementalFlush:
    def test_killed_server_leaves_usable_traces(self, fixture_files, tmp_path):
        graph_path, rules_path, log_path = fixture_files
        trace_path = tmp_path / "trace.ndjson"
        # no --max-batches: the server would run forever; we kill it
        proc, listening = start_serve(
            [
                "--log", str(log_path), "--rules", str(rules_path),
                "--graph", str(graph_path),
                "--telemetry", f"ndjson:{trace_path}",
            ]
        )
        try:
            ack = subscribe_and_publish(listening["port"], two_node_update())
            assert ack["type"] == "ack"

            # the batch's spans must reach disk without waiting for
            # exit — poll briefly, then hard-kill
            deadline = time.time() + 10
            while time.time() < deadline:
                if trace_path.exists() and any(
                    r.get("name") == "serve.batch"
                    for r in trace_records(trace_path)
                ):
                    break
                time.sleep(0.05)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        records = trace_records(trace_path)
        names = {r.get("name") for r in records if r.get("type") == "span"}
        assert "serve.batch" in names, (
            "killed server left no usable trace on disk"
        )
        forests = assemble_traces(records)
        assert ack["trace_id"] in forests
        # no metrics line: close_export never ran, and that is fine
        assert all(r.get("type") != "metrics" for r in records)
