"""The bounded-queue overflow policy (``docs/serve-protocol.md`` §4.2).

Driven deterministically: the subscriber's writer task writes into a
gated fake transport, so the test controls exactly when the queue
drains.  While the gate is shut the apply path keeps enqueueing —
the queue overflows, the backlog is dropped, and one resync marker
takes its place.  When the gate opens, the wire must show: resync
(with an accurate ``dropped`` count), a fresh bootstrap at drain-time
seq, then only deltas *beyond* that bootstrap — no gap, no duplicate.
"""

import asyncio

from repro.serve.protocol import LINE_DELIMITED, decode_frames
from repro.serve.server import DEFAULT_QUEUE_SIZE, ViolationServer, _Subscriber
from repro.workloads import churn_stream


class GatedWriter:
    """A fake StreamWriter whose ``drain`` blocks until the gate opens."""

    def __init__(self):
        self.buffer = bytearray()
        self.gate = asyncio.Event()

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    async def drain(self) -> None:
        await self.gate.wait()


def make_stream():
    return churn_stream(n_nodes=30, batches=12, batch_size=6, rng=25)


def attach(server: ViolationServer, queue_size: int) -> tuple[_Subscriber, GatedWriter]:
    wire = GatedWriter()
    subscriber = _Subscriber(server, wire, LINE_DELIMITED, queue_size)
    server._subscribers.append(subscriber)
    subscriber.enqueue_frame(server._bootstrap_frame(subscriber.filter))
    subscriber.start()
    return subscriber, wire


def test_overflow_emits_one_resync_then_rebased_gap_free_stream():
    stream = make_stream()
    graph = stream.base.copy()

    async def scenario():
        server = ViolationServer(graph, stream.sigma, queue_size=4)
        subscriber, wire = attach(server, queue_size=4)
        await asyncio.sleep(0)  # writer task picks up the bootstrap, blocks in drain

        for update in stream.updates:  # 12 batches >> queue of 4: overflow
            server._apply(update)
        assert server.stats()["serve.frames_dropped"] > 0

        wire.gate.set()
        while not subscriber.queue.empty():
            await asyncio.sleep(0.01)
        await asyncio.sleep(0.05)  # let the last write land
        subscriber.alive = False
        if subscriber.task:
            subscriber.task.cancel()
        server.ledger.close()
        return bytes(wire.buffer), server.seq

    wire_bytes, final_seq = asyncio.run(scenario())
    frames = decode_frames(wire_bytes, LINE_DELIMITED)
    kinds = [f["type"] for f in frames]

    # Shape: initial bootstrap, exactly one resync + re-base, then deltas.
    assert kinds[0] == "bootstrap" and frames[0]["seq"] == 0
    assert kinds.count("resync") == 1
    resync_at = kinds.index("resync")
    resync, rebase = frames[resync_at], frames[resync_at + 1]
    assert resync["dropped"] > 0
    assert rebase["type"] == "bootstrap"
    # The re-base snapshot is taken at drain time — every batch had
    # already been applied, so it carries the final seq ...
    assert rebase["seq"] == final_seq
    # ... and every queued delta at or below it is suppressed: nothing
    # follows that would gap or duplicate the re-based stream.
    tail = frames[resync_at + 2 :]
    seqs = [f["seq"] for f in tail]
    assert all(f["type"] == "delta" for f in tail)
    assert seqs == list(range(rebase["seq"] + 1, rebase["seq"] + 1 + len(tail)))


def test_slow_but_not_overflowing_subscriber_sees_everything():
    """Queue large enough for the burst: the same gated drain, but no
    overflow — the whole stream arrives gap-free with no resync."""
    stream = make_stream()
    graph = stream.base.copy()

    async def scenario():
        server = ViolationServer(graph, stream.sigma)
        subscriber, wire = attach(server, queue_size=DEFAULT_QUEUE_SIZE)
        await asyncio.sleep(0)

        for update in stream.updates:
            server._apply(update)

        wire.gate.set()
        while not subscriber.queue.empty():
            await asyncio.sleep(0.01)
        await asyncio.sleep(0.05)
        subscriber.alive = False
        if subscriber.task:
            subscriber.task.cancel()
        server.ledger.close()
        return bytes(wire.buffer)

    frames = decode_frames(asyncio.run(scenario()), LINE_DELIMITED)
    assert [f["type"] for f in frames] == ["bootstrap"] + ["delta"] * len(
        make_stream().updates
    )
    assert [f["seq"] for f in frames] == list(range(len(make_stream().updates) + 1))


def test_close_sentinel_survives_overflow():
    """A shutdown queued behind a full backlog must still say bye."""
    stream = make_stream()
    graph = stream.base.copy()

    async def scenario():
        server = ViolationServer(graph, stream.sigma, queue_size=2)
        subscriber, wire = attach(server, queue_size=2)
        await asyncio.sleep(0)
        for update in stream.updates[:6]:
            server._apply(update)
        subscriber.enqueue_close()
        # More overflow *after* the close is queued must not lose it.
        for update in stream.updates[6:]:
            server._apply(update)
        wire.gate.set()
        if subscriber.task:
            await asyncio.wait_for(subscriber.task, timeout=5)
        server.ledger.close()
        return bytes(wire.buffer)

    frames = decode_frames(asyncio.run(scenario()), LINE_DELIMITED)
    assert frames[-1]["type"] == "bye"
