"""The docs/serve-protocol.md conformance test.

Every fenced ```json block in the spec is a frame example; each must
encode/decode byte-identically through the real codec, in both
framings.  The examples must also *cover* the protocol: the set of
frame types shown in the document equals the set the codec accepts —
so adding a frame type without documenting it (or documenting one the
codec rejects) fails CI, which is what keeps the spec honest.
"""

import json
import pathlib
import re

import pytest

from repro.serve.protocol import (
    FRAME_TYPES,
    FRAMINGS,
    decode_frames,
    decode_payload,
    encode_frame,
    encode_payload,
)

SPEC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "serve-protocol.md"

_FENCE = re.compile(r"```json\n(.*?)```", re.DOTALL)


def doc_frames() -> list[dict]:
    """Every fenced JSON example in the spec, parsed."""
    blocks = _FENCE.findall(SPEC.read_text())
    assert blocks, f"no fenced json examples found in {SPEC}"
    return [json.loads(block) for block in blocks]


@pytest.mark.parametrize(
    "frame", doc_frames(), ids=lambda f: f.get("type", "?")
)
def test_documented_frame_roundtrips(frame):
    # The example is a well-formed frame of a known type ...
    assert isinstance(frame, dict)
    assert frame.get("type") in FRAME_TYPES
    payload = encode_payload(frame)
    # ... whose canonical encoding decodes back to the same object ...
    assert decode_payload(payload) == frame
    # ... byte-stably (encode ∘ decode ∘ encode is the identity) ...
    assert encode_payload(decode_payload(payload)) == payload
    # ... in both documented framings.
    for framing in FRAMINGS:
        wire = encode_frame(frame, framing)
        assert decode_frames(wire, framing) == [frame]


def test_documented_examples_cover_every_frame_type():
    shown = {frame["type"] for frame in doc_frames()}
    assert shown == set(FRAME_TYPES), (
        f"spec examples cover {sorted(shown)} but the codec speaks "
        f"{sorted(FRAME_TYPES)} — document the difference or remove it"
    )


def test_spec_states_current_protocol_version():
    from repro.serve.protocol import PROTOCOL_VERSION

    text = SPEC.read_text()
    assert f"protocol version {PROTOCOL_VERSION}" in text.lower()
    hello = next(f for f in doc_frames() if f["type"] == "hello")
    assert hello["protocol"] == PROTOCOL_VERSION
