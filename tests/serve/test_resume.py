"""Kill the server mid-stream, resume from the durable log.

The acceptance property (``docs/serve-protocol.md`` §7.2–7.3): every
acked batch survives the crash, ``seq`` numbering continues monotonely
across incarnations, and a client that folds (bootstrap A + deltas up
to the crash) then re-attaches sees a bootstrap that equals its folded
state — seq-verified, so nothing was lost and nothing was duplicated.
Covered both without a checkpoint (recovery = full tail replay) and
with periodic checkpoints + deletions in the stream.
"""

import asyncio
import json

import pytest

from repro.graph.update import apply_update_plain
from repro.reasoning import find_violations
from repro.serve import ServeClient, ViolationServer
from repro.streaming import canonical_report, violation_to_dict
from repro.workloads import churn_stream

SEED = 25
CRASH_AFTER = 3  # batches applied before the kill


def stream_fixture():
    return churn_stream(n_nodes=30, batches=6, batch_size=6, rng=SEED)


def state_key(v: dict) -> tuple:
    return (v["rule"], json.dumps(v["match"]))


def fold(state: dict, delta: dict) -> None:
    for v in delta["retired"]:
        del state[state_key(v)]
    for v in delta["updated"]:
        state[state_key(v)] = v
    for v in delta["introduced"]:
        assert state_key(v) not in state
        state[state_key(v)] = v


def canonical(state_or_list) -> str:
    values = (
        list(state_or_list.values())
        if isinstance(state_or_list, dict)
        else list(state_or_list)
    )
    return json.dumps(
        sorted(values, key=lambda v: json.dumps(v, sort_keys=True)), sort_keys=True
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        {},  # crash recovery = base + full tail replay
        {"checkpoint_every": 2},  # recovery = latest checkpoint + tail
    ],
    ids=["tail-replay", "checkpointed"],
)
def test_crash_and_resume_loses_and_duplicates_nothing(tmp_path, kwargs):
    stream = stream_fixture()
    log = tmp_path / "updates.jsonl"

    async def phase_a():
        """Serve, ack CRASH_AFTER batches, then die without a shutdown
        checkpoint (the crash simulation)."""
        server = ViolationServer.from_log(
            log, stream.sigma, base_graph=stream.base.copy(), **kwargs
        )
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        bootstrap = await client.subscribe()
        state = {state_key(v): v for v in bootstrap["violations"]}
        seqs = []
        for update in stream.updates[:CRASH_AFTER]:
            ack = await client.send_update(update)
            delta = await client.next_event(timeout=5)
            assert delta["seq"] == ack["seq"]
            seqs.append(delta["seq"])
            fold(state, delta)
        await server.stop(checkpoint=False)
        assert (await client.next_event(timeout=5))["type"] == "bye"
        await client.close()
        return state, seqs, server.epoch

    async def phase_b(folded_state):
        """Resume from the log alone; verify continuity, then finish the
        stream and check the final state against a from-scratch report."""
        server = ViolationServer.from_log(log, stream.sigma, **kwargs)
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        bootstrap = await client.subscribe()
        hello = client.hello
        # seq numbering continued; the epoch records the resume point.
        assert hello["seq"] == CRASH_AFTER
        assert hello["epoch"] == CRASH_AFTER
        assert bootstrap["seq"] == CRASH_AFTER
        # No lost, no duplicated deltas: the resumed snapshot IS the
        # folded pre-crash view.
        assert canonical(bootstrap["violations"]) == canonical(folded_state)

        state = {state_key(v): v for v in bootstrap["violations"]}
        for n, update in enumerate(stream.updates[CRASH_AFTER:], start=CRASH_AFTER + 1):
            ack = await client.send_update(update)
            assert ack["seq"] == n  # gap-free across the crash
            delta = await client.next_event(timeout=5)
            assert delta["seq"] == n
            fold(state, delta)
        await client.close()
        await server.stop()  # clean: writes a shutdown checkpoint
        return state

    state_a, seqs_a, epoch_a = asyncio.run(phase_a())
    assert seqs_a == list(range(1, CRASH_AFTER + 1))
    assert epoch_a == 0
    state_b = asyncio.run(phase_b(state_a))

    # The end state equals a from-scratch validation of base + all batches.
    reference = stream.base.copy()
    for update in stream.updates:
        apply_update_plain(reference, update)
    expected = [
        violation_to_dict(v)
        for v in canonical_report(stream.sigma, find_violations(reference, stream.sigma))
    ]
    assert canonical(state_b) == canonical(expected)

    # And a third incarnation (after the clean stop) resumes at seq 6
    # from the shutdown checkpoint.
    async def phase_c():
        server = ViolationServer.from_log(log, stream.sigma, **kwargs)
        await server.start()
        client = await ServeClient.connect("127.0.0.1", server.port)
        bootstrap = await client.subscribe()
        assert client.hello["seq"] == len(stream.updates)
        await client.close()
        await server.stop(checkpoint=False)
        return bootstrap["violations"]

    assert canonical(asyncio.run(phase_c())) == canonical(expected)


def test_resume_requires_base_graph_for_fresh_log(tmp_path):
    from repro.errors import GraphError

    with pytest.raises(GraphError, match="base_graph"):
        ViolationServer.from_log(tmp_path / "missing.jsonl", stream_fixture().sigma)


def test_ephemeral_server_has_no_durability(tmp_path):
    """Without a log path nothing is written anywhere (ephemeral mode)."""
    stream = stream_fixture()
    graph = stream.base.copy()

    async def scenario():
        async with ViolationServer(graph, stream.sigma) as server:
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.send_update(stream.updates[0])
            await client.close()

    asyncio.run(scenario())
    assert list(tmp_path.iterdir()) == []
