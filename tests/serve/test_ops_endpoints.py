"""The HTTP ops surface on the serve listener: /healthz and /metrics.

Plain HTTP/1.1 GETs share the TCP listener with the framed protocol
(docs/serve-protocol.md §9): the server routes on the first byte, so a
protocol client and a curl can coexist on one port.  These tests speak
raw HTTP over asyncio sockets — no client library — against an
in-process :class:`ViolationServer`.
"""

import asyncio
import json

import pytest

from repro.graph.update import GraphUpdate
from repro.serve import ServeClient, ViolationServer
from repro.telemetry import metrics
from repro.workloads import churn_stream

from tests.telemetry.test_prometheus_parse import check_histogram, parse_exposition

SEED = 25


def stream_fixture():
    return churn_stream(n_nodes=30, batches=6, batch_size=6, rng=SEED)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


async def http_request(port: int, request: str) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request.encode("ascii"))
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response


def split_response(raw: bytes) -> tuple[str, dict, bytes]:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("ascii").split("\r\n")
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(": ")
        headers[key.lower()] = value
    return lines[0], headers, body


class TestHealthz:
    def test_health_payload_fields(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                raw = await http_request(
                    server.port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                status, headers, body = split_response(raw)
                assert status == "HTTP/1.1 200 OK"
                assert headers["content-type"].startswith("application/json")
                assert int(headers["content-length"]) == len(body)
                assert headers["connection"] == "close"
                payload = json.loads(body)
                assert payload["status"] == "ok"
                assert payload["seq"] == server.seq
                assert payload["epoch"] == server.epoch
                assert payload["backend"] == "serial"
                assert payload["subscribers"] == 0
                assert payload["violations"] == len(server.ledger)
                assert "queue_depth_p99" in payload
                assert payload["telemetry"] is False

        run(scenario())

    def test_subscriber_count_is_live(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.subscribe()
                raw = await http_request(
                    server.port, "GET /healthz HTTP/1.1\r\n\r\n"
                )
                _, _, body = split_response(raw)
                assert json.loads(body)["subscribers"] == 1
                await client.close()

        run(scenario())


class TestMetrics:
    def test_exposition_parses_and_carries_serve_gauges(self):
        stream = stream_fixture()
        graph = stream.base.copy()
        metrics.enable()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.send_update(stream.updates[0])
                raw = await http_request(
                    server.port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                status, headers, body = split_response(raw)
                assert status == "HTTP/1.1 200 OK"
                assert headers["content-type"].startswith("text/plain")
                assert "version=0.0.4" in headers["content-type"]
                families = parse_exposition(body.decode("utf-8"))
                assert families["repro_serve_seq"]["samples"][0][2] == 1.0
                assert families["repro_serve_updates"]["type"] == "counter"
                assert "repro_serve_subscribers" in families
                check_histogram(
                    "repro_serve_apply_seconds",
                    families["repro_serve_apply_seconds"],
                )
                await client.close()

        run(scenario())

    def test_metrics_respond_even_when_telemetry_disabled(self):
        # The scrape must not 500 on a cold registry: serve.seq/epoch
        # gauges are folded in from server state at scrape time.
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                raw = await http_request(server.port, "GET /metrics HTTP/1.1\r\n\r\n")
                status, _, body = split_response(raw)
                assert status == "HTTP/1.1 200 OK"
                families = parse_exposition(body.decode("utf-8"))
                assert "repro_serve_seq" in families

        run(scenario())


class TestHttpEdges:
    def test_unknown_path_404s(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                raw = await http_request(server.port, "GET /nope HTTP/1.1\r\n\r\n")
                status, _, body = split_response(raw)
                assert status == "HTTP/1.1 404 Not Found"
                assert json.loads(body) == {"error": "not found"}

        run(scenario())

    def test_head_sends_headers_only(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                raw = await http_request(server.port, "HEAD /healthz HTTP/1.1\r\n\r\n")
                status, headers, body = split_response(raw)
                assert status == "HTTP/1.1 200 OK"
                assert int(headers["content-length"]) > 0
                assert body == b""

        run(scenario())

    def test_protocol_clients_unaffected_by_http_traffic(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                await http_request(server.port, "GET /healthz HTTP/1.1\r\n\r\n")
                client = await ServeClient.connect("127.0.0.1", server.port)
                ack = await client.send_update(stream.updates[0])
                assert ack["type"] == "ack" and ack["seq"] == 1
                await client.close()

        run(scenario())

    def test_http_requests_counted(self):
        stream = stream_fixture()
        graph = stream.base.copy()
        metrics.enable()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                await http_request(server.port, "GET /healthz HTTP/1.1\r\n\r\n")
                raw = await http_request(server.port, "GET /metrics HTTP/1.1\r\n\r\n")
                families = parse_exposition(raw.partition(b"\r\n\r\n")[2].decode())
                assert families["repro_serve_http_requests"]["samples"][0][2] >= 2.0

        run(scenario())
