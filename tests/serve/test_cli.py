"""The `serve` and `subscribe` CLI subcommands.

`serve` runs as a real subprocess (its ``listening`` NDJSON line is the
documented way scripts discover the ephemeral port); `subscribe` runs
as a second subprocess consuming the push stream; the publisher drives
both through :class:`~repro.serve.client.ServeClient` in-process.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.deps import GED, ConstantLiteral
from repro.deps.io import ged_to_dict
from repro.graph import GraphBuilder
from repro.graph.io import graph_to_json
from repro.graph.update import GraphUpdate
from repro.patterns import Pattern

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


@pytest.fixture
def fixture_files(tmp_path):
    graph = (
        GraphBuilder()
        .node("c1", "city", {"pop": 1})
        .node("p1", "person", {"age": 0})
        .edge("p1", "lives_in", "c1")
        .build()
    )
    rule = GED(
        Pattern({"p": "person", "c": "city"}, [("p", "lives_in", "c")]),
        [],
        [ConstantLiteral("p", "age", 30)],
        name="resident-age",
    )
    graph_path = tmp_path / "kb.json"
    graph_path.write_text(graph_to_json(graph))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps([ged_to_dict(rule)]))
    return graph_path, rules_path, tmp_path / "updates.jsonl"


def publish(port: int, updates) -> list[dict]:
    """Send update batches from this process; returns the acks."""
    import asyncio

    from repro.serve import ServeClient

    async def run():
        client = await ServeClient.connect("127.0.0.1", port)
        acks = [await client.send_update(update) for update in updates]
        await client.close()
        return acks

    return asyncio.run(run())


def start_serve(args) -> tuple[subprocess.Popen, dict]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=subprocess_env(),
    )
    listening = json.loads(proc.stdout.readline())
    assert listening["type"] == "listening"
    return proc, listening


class TestServeSubscribeEndToEnd:
    def test_full_session_and_log_resume(self, fixture_files):
        graph_path, rules_path, log_path = fixture_files
        common = ["--log", str(log_path), "--rules", str(rules_path)]

        proc, listening = start_serve(
            [*common, "--graph", str(graph_path), "--max-batches", "2"]
        )
        try:
            assert listening["seq"] == 0 and listening["violations"] == 1
            port = listening["port"]

            consumer = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "subscribe",
                    "--port", str(port), "--label", "city",
                    "--lines", "--max-events", "2",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=subprocess_env(),
            )
            time.sleep(0.5)  # let the subscriber attach before publishing

            acks = publish(
                port,
                [
                    GraphUpdate(
                        nodes=[("c9", "city", {})], edges=[("p1", "lives_in", "c9")]
                    ),
                    GraphUpdate(nodes=[("p9", "person", {"age": 30})]),
                ],
            )
            assert [ack["seq"] for ack in acks] == [1, 2]

            out, err = consumer.communicate(timeout=10)
            assert consumer.returncode == 0, err
            events = [json.loads(line) for line in out.splitlines()]
            assert events[0]["type"] == "hello"
            assert events[1]["type"] == "bootstrap"
            assert {v["rule"] for v in events[1]["violations"]} == {"resident-age"}
            deltas = [e for e in events if e["type"] == "delta"]
            assert deltas and deltas[0]["introduced"]

            out, err = proc.communicate(timeout=10)
            assert proc.returncode == 0, err
            served = json.loads(out.splitlines()[-1])
            assert served["type"] == "served"
            assert served["batches_applied"] == 2
        finally:
            if proc.poll() is None:
                proc.kill()

        # A second incarnation resumes seq numbering from the same log
        # (no --graph needed once the log exists).
        proc2, listening2 = start_serve([*common, "--max-batches", "1"])
        try:
            assert listening2["seq"] == 2 and listening2["epoch"] == 2
            publish(listening2["port"], [GraphUpdate(del_nodes=["p9"])])
            out, err = proc2.communicate(timeout=10)
            assert proc2.returncode == 0, err
            assert json.loads(out.splitlines()[-1])["seq"] == 3
        finally:
            if proc2.poll() is None:
                proc2.kill()


class TestArgumentHandling:
    def test_fresh_log_requires_graph(self, fixture_files, capsys):
        _, rules_path, log_path = fixture_files
        code = main(["serve", "--log", str(log_path), "--rules", str(rules_path)])
        assert code == 2
        assert "base_graph" in capsys.readouterr().err

    def test_subscribe_connection_refused_exits_2(self, capsys):
        # A port nothing listens on: bind-then-close to find a free one.
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        code = main(["subscribe", "--port", str(port), "--max-events", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_rule_filter_flag_parses_positions(self):
        """`--rule 0` means Σ position 0, `--rule name` a rule name."""
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["subscribe", "--port", "1", "--rule", "0", "--rule", "my-rule"]
        )
        entries = [
            int(entry) if entry.lstrip("-").isdigit() else entry
            for entry in args.rule
        ]
        assert entries == [0, "my-rule"]
