"""End-to-end tests for :class:`~repro.serve.server.ViolationServer`.

Real TCP on localhost, real clients, both framings.  The scenarios map
onto the guarantees of ``docs/serve-protocol.md`` §7: serial
application, ack ⇒ durable, gap-free per-subscriber streams, snapshot
consistency, cross-subscriber agreement — plus the failure paths
(malformed frames, rejected updates, dead subscribers, queue overflow,
and server crash + resume from the durable log).
"""

import asyncio
import json

import pytest

from repro.graph.update import GraphUpdate
from repro.reasoning import find_violations
from repro.serve import ProtocolError, ServeClient, ViolationServer
from repro.serve.protocol import LENGTH_PREFIXED, LINE_DELIMITED, decode_frames, encode_frame
from repro.streaming import canonical_report, violation_to_dict
from repro.workloads import churn_stream

# rng=25: 6 bootstrap violations across all three named rules, and the
# update batches introduce/retire violations (nonzero delta activity).
SEED = 25


def stream_fixture():
    return churn_stream(n_nodes=30, batches=6, batch_size=6, rng=SEED)


def run(coro):
    return asyncio.run(coro)


def expected_report(graph, sigma):
    """The from-scratch violation set, in the wire representation."""
    return [
        violation_to_dict(v)
        for v in canonical_report(sigma, find_violations(graph, sigma))
    ]


def fold(state: dict, delta_frame: dict) -> dict:
    """Fold one delta frame over a bootstrap-derived state dict, asserting
    the introduced/retired/updated key discipline along the way."""
    def key(v):
        return (v["rule"], json.dumps(v["match"]))

    for v in delta_frame["retired"]:
        assert key(v) in state, f"retired unknown violation {v}"
        del state[key(v)]
    for v in delta_frame["updated"]:
        assert key(v) in state, f"updated unknown violation {v}"
        state[key(v)] = v
    for v in delta_frame["introduced"]:
        assert key(v) not in state, f"introduced duplicate violation {v}"
        state[key(v)] = v
    return state


def as_state(bootstrap_frame: dict) -> dict:
    return {
        (v["rule"], json.dumps(v["match"])): v
        for v in bootstrap_frame["violations"]
    }


def sorted_values(state: dict) -> list[dict]:
    return sorted(state.values(), key=lambda v: json.dumps(v, sort_keys=True))


class TestSessionBasics:
    def test_hello_bootstrap_and_ack_delta_agreement(self):
        """One subscriber, one publisher: the bootstrap equals the
        from-scratch report, acks and deltas share gap-free seqs, and
        folding the deltas over the bootstrap reproduces the end state."""
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                sub = await ServeClient.connect("127.0.0.1", server.port)
                pub = await ServeClient.connect("127.0.0.1", server.port)
                bootstrap = await sub.subscribe()
                assert sub.hello["protocol"] == 1
                assert sub.hello["rules"] == len(stream.sigma)
                assert bootstrap["seq"] == 0 and bootstrap["epoch"] == 0
                assert bootstrap["violations"] == expected_report(graph, stream.sigma)

                state = as_state(bootstrap)
                for n, update in enumerate(stream.updates, start=1):
                    ack = await pub.send_update(update)
                    assert ack["type"] == "ack" and ack["seq"] == n
                    delta = await sub.next_event(timeout=5)
                    assert delta["type"] == "delta" and delta["seq"] == n
                    assert len(delta["introduced"]) == ack["introduced"]
                    assert len(delta["retired"]) == ack["retired"]
                    assert len(delta["updated"]) == ack["updated"]
                    fold(state, delta)

                assert sorted_values(state) == sorted(
                    expected_report(graph, stream.sigma),
                    key=lambda v: json.dumps(v, sort_keys=True),
                )
                await sub.close()
                await pub.close()

        run(scenario())

    def test_mixed_framings_same_session(self):
        """A length-prefixed subscriber and a line-delimited publisher
        interoperate; the server answers each in its own framing."""
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                sub = await ServeClient.connect(
                    "127.0.0.1", server.port, framing=LENGTH_PREFIXED
                )
                pub = await ServeClient.connect(
                    "127.0.0.1", server.port, framing=LINE_DELIMITED
                )
                await sub.subscribe()
                ack = await pub.send_update(stream.updates[0])
                assert ack["seq"] == 1
                delta = await sub.next_event(timeout=5)
                assert delta["type"] == "delta" and delta["seq"] == 1
                await sub.close()
                await pub.close()

        run(scenario())

    def test_late_attach_bootstrap_is_snapshot_consistent(self):
        """A subscriber attaching after k batches bootstraps at seq k
        with exactly the state an early subscriber folded to (§7.4)."""
        stream = stream_fixture()
        graph = stream.base.copy()
        k = 3

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                early = await ServeClient.connect("127.0.0.1", server.port)
                pub = await ServeClient.connect("127.0.0.1", server.port)
                state = as_state(await early.subscribe())
                for update in stream.updates[:k]:
                    await pub.send_update(update)
                    fold(state, await early.next_event(timeout=5))

                late = await ServeClient.connect("127.0.0.1", server.port)
                bootstrap = await late.subscribe()
                assert bootstrap["seq"] == k
                assert sorted_values(as_state(bootstrap)) == sorted_values(state)

                # Both streams continue gap-free and agree (§7.5).
                await pub.send_update(stream.updates[k])
                early_delta = await early.next_event(timeout=5)
                late_delta = await late.next_event(timeout=5)
                assert early_delta == late_delta
                assert late_delta["seq"] == k + 1
                for client in (early, late, pub):
                    await client.close()

        run(scenario())

    def test_publisher_can_also_subscribe(self):
        """One connection acting as both roles gets its own deltas."""
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                both = await ServeClient.connect("127.0.0.1", server.port)
                await both.subscribe()
                ack = await both.send_update(stream.updates[0])
                delta = await both.next_event(timeout=5)
                assert delta["type"] == "delta" and delta["seq"] == ack["seq"]
                await both.close()

        run(scenario())

    @pytest.mark.parametrize("backend", ["serial", "fragment"])
    def test_backends_serve_identical_streams(self, backend):
        """The wire stream is backend-independent (the fragment-routed
        ledger pushes byte-identical frames to the serial one)."""
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            server = ViolationServer(
                graph, stream.sigma, backend=backend, workers=2
            )
            async with server:
                sub = await ServeClient.connect("127.0.0.1", server.port)
                frames = [await sub.subscribe()]
                for update in stream.updates:
                    await sub.send_update(update)
                    frames.append(await sub.next_event(timeout=5))
                await sub.close()
            return frames

        frames = run(scenario())
        if not hasattr(TestSessionBasics, "_reference_frames"):
            TestSessionBasics._reference_frames = frames
        assert frames == TestSessionBasics._reference_frames


class TestErrorPaths:
    def test_garbage_first_byte_closes_connection(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"XYZZY\n")
                await writer.drain()
                assert await reader.read() == b""  # server hung up, silently
                writer.close()

        run(scenario())

    def test_unknown_http_path_gets_404_then_close(self):
        # GET/HEAD first bytes now select the ops surface (spec §9);
        # unknown paths answer 404 and the connection closes.
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                response = await reader.read()
                assert response.startswith(b"HTTP/1.1 404")
                assert b"Connection: close" in response
                writer.close()

        run(scenario())

    def test_malformed_frame_gets_fatal_error_then_bye(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"{this is not json\n")
                await writer.drain()
                frames = decode_frames(await reader.read(), LINE_DELIMITED)
                assert [f["type"] for f in frames] == ["hello", "error", "bye"]
                assert frames[1]["code"] == "bad-frame" and frames[1]["fatal"]
                writer.close()

        run(scenario())

    def test_server_only_frame_type_is_rejected_nonfatally(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(encode_frame({"type": "delta", "seq": 9}, LINE_DELIMITED))
                writer.write(encode_frame({"type": "bye"}, LINE_DELIMITED))
                await writer.drain()
                frames = decode_frames(await reader.read(), LINE_DELIMITED)
                assert [f["type"] for f in frames] == ["hello", "error"]
                assert frames[1]["code"] == "bad-type" and not frames[1]["fatal"]
                writer.close()

        run(scenario())

    def test_rejected_update_consumes_no_seq_and_leaves_no_trace(self, tmp_path):
        """A batch that fails validation is refused before the log
        append: no ack, no seq, no delta, no durable record (§5.2)."""
        stream = stream_fixture()
        graph = stream.base.copy()
        log = tmp_path / "updates.jsonl"

        async def scenario():
            server = ViolationServer(graph, stream.sigma, log_path=log)
            async with server:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.subscribe()
                with pytest.raises(ProtocolError, match="no-such-node"):
                    await client.send_update(GraphUpdate(del_nodes=["no-such-node"]))
                # The connection survives; the next good batch is seq 1.
                ack = await client.send_update(stream.updates[0])
                assert ack["seq"] == 1
                assert server.stats()["serve.updates_rejected"] == 1
                await client.close()

        run(scenario())
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert [r["seq"] for r in records if r["type"] == "update"] == [1]

    def test_undecodable_update_is_rejected(self):
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                client = await ServeClient.connect("127.0.0.1", server.port)
                with pytest.raises(ProtocolError):
                    await client.send_update({"nodes": "not-a-list"})
                await client.close()

        run(scenario())


class TestSubscriberDeath:
    def test_killed_subscriber_detaches_and_service_continues(self):
        """An abrupt disconnect (no bye) detaches the subscriber; other
        clients keep their gap-free stream."""
        stream = stream_fixture()
        graph = stream.base.copy()

        async def scenario():
            async with ViolationServer(graph, stream.sigma) as server:
                victim = await ServeClient.connect("127.0.0.1", server.port)
                survivor = await ServeClient.connect("127.0.0.1", server.port)
                pub = await ServeClient.connect("127.0.0.1", server.port)
                await victim.subscribe()
                await survivor.subscribe()
                assert server.subscriber_count == 2

                await pub.send_update(stream.updates[0])
                assert (await survivor.next_event(timeout=5))["seq"] == 1

                # Kill the victim's socket without a bye frame.
                victim._writer.transport.abort()

                for n, update in enumerate(stream.updates[1:4], start=2):
                    await pub.send_update(update)
                    assert (await survivor.next_event(timeout=5))["seq"] == n

                # The dead connection has been reaped.
                for _ in range(50):
                    if server.subscriber_count == 1:
                        break
                    await asyncio.sleep(0.02)
                assert server.subscriber_count == 1
                await survivor.close()
                await pub.close()

        run(scenario())
