"""The durable update log: JSONL round trips, checkpoints, replay."""

import json

import pytest

from repro.errors import GraphError
from repro.graph.io import (
    UPDATE_LOG_FORMAT,
    UpdateLogWriter,
    read_update_log,
    replay_update_log,
    update_from_dict,
    update_to_dict,
)
from repro.graph.update import GraphUpdate
from repro.indexing import attach_index, get_index
from repro.reasoning.incremental import apply_update
from repro.workloads import churn_stream


def sample_update():
    return GraphUpdate(
        nodes=[("n", "L", {"x": 1})],
        edges=[("n", "r", "a")],
        attrs=[("a", "x", 2)],
        del_nodes=["z"],
        del_edges=[("a", "r", "b")],
        del_attrs=[("b", "y")],
    )


class TestDictRoundTrip:
    def test_round_trip(self):
        update = sample_update()
        restored = update_from_dict(json.loads(json.dumps(update_to_dict(update))))
        assert restored == GraphUpdate(
            nodes=[("n", "L", {"x": 1})],
            edges=[("n", "r", "a")],
            attrs=[("a", "x", 2)],
            del_nodes=["z"],
            del_edges=[("a", "r", "b")],
            del_attrs=[("b", "y")],
        )

    def test_empty_fields_omitted(self):
        assert update_to_dict(GraphUpdate()) == {}
        assert update_from_dict({}).is_empty()


class TestLogReplay:
    def stream_and_log(self, tmp_path, checkpoint_every=None, write_base=False):
        stream = churn_stream(n_nodes=40, batches=6, rng=2)
        live = stream.base.copy()
        path = tmp_path / "updates.jsonl"
        with UpdateLogWriter(path, checkpoint_every=checkpoint_every) as writer:
            if write_base:
                writer.write_base(live)
            for update in stream.updates:
                apply_update(live, update)
                writer.append(update, live)
        return stream, live, path

    def test_replay_from_base_graph(self, tmp_path):
        stream, live, path = self.stream_and_log(tmp_path)
        result = replay_update_log(path, stream.base.copy())
        assert result.graph == live
        assert result.applied == 6
        assert result.last_seq == 6
        assert result.resumed_from == 0

    def test_replay_resumes_from_latest_checkpoint(self, tmp_path):
        stream, live, path = self.stream_and_log(tmp_path, checkpoint_every=2)
        result = replay_update_log(path)
        assert result.graph == live
        assert result.resumed_from == 6  # checkpoints at 2, 4, 6
        assert result.applied == 0

    def test_replay_checkpoint_plus_tail(self, tmp_path):
        stream, live, path = self.stream_and_log(tmp_path, checkpoint_every=4)
        result = replay_update_log(path)
        assert result.resumed_from == 4
        assert result.applied == 2
        assert result.graph == live

    def test_full_replay_cross_checks_checkpoints(self, tmp_path):
        stream, live, path = self.stream_and_log(tmp_path, checkpoint_every=2)
        result = replay_update_log(path, stream.base.copy(), use_checkpoints=False)
        assert result.graph == live
        assert result.applied == 6

    def test_replay_without_checkpoint_or_base_errors(self, tmp_path):
        _, _, path = self.stream_and_log(tmp_path)
        with pytest.raises(GraphError, match="no checkpoint"):
            replay_update_log(path)

    def test_replay_maintains_attached_index(self, tmp_path):
        stream, live, path = self.stream_and_log(tmp_path)
        base = stream.base.copy()
        attach_index(base)
        result = replay_update_log(path, base)
        assert result.graph == live
        assert get_index(base) is not None, "replay must keep the index synced"

    def test_base_checkpoint_round_trip(self, tmp_path):
        stream, live, path = self.stream_and_log(tmp_path, write_base=True)
        records = list(read_update_log(path))
        assert records[0].type == "checkpoint" and records[0].seq == 0
        assert records[0].graph == stream.base


class TestCheckpointResumeWithDeletions:
    """Resume-after-checkpoint must survive deletion-heavy batches.

    A checkpoint captures post-batch state stamped with that batch's
    seq (docs/update-log.md §1.2); a writer fed pre-batch graphs would
    replay the checkpoint batch's deletions against a state that never
    saw them.  These logs delete nodes, edges, and attributes around
    every checkpoint boundary, then assert checkpointed resume, full
    from-base replay, and the live graph all agree.
    """

    def deletion_heavy_log(self, tmp_path, checkpoint_every):
        from repro.graph import GraphBuilder

        base = (
            GraphBuilder()
            .node("a", "L", {"x": 1})
            .node("b", "L", {"x": 2})
            .node("c", "L", {"x": 3})
            .edge("a", "r", "b")
            .edge("b", "r", "c")
            .build()
        )
        updates = [
            GraphUpdate(
                del_edges=[("a", "r", "b")],
                nodes=[("d", "L", {})],
                edges=[("c", "r", "d")],
            ),
            GraphUpdate(del_nodes=["b"], attrs=[("a", "x", 9)]),
            GraphUpdate(
                del_attrs=[("a", "x")],
                del_nodes=["d"],
                nodes=[("e", "L", {"x": 1})],
                edges=[("a", "r", "e")],
            ),
            GraphUpdate(del_edges=[("a", "r", "e")], del_nodes=["e"]),
        ]
        live = base.copy()
        path = tmp_path / "deletions.jsonl"
        with UpdateLogWriter(path, checkpoint_every=checkpoint_every) as writer:
            writer.write_base(base)
            for update in updates:
                apply_update(live, update)
                writer.append(update, live)
        return base, live, path

    @pytest.mark.parametrize("checkpoint_every", [1, 2, 3])
    def test_checkpointed_resume_equals_full_replay(self, tmp_path, checkpoint_every):
        base, live, path = self.deletion_heavy_log(tmp_path, checkpoint_every)
        resumed = replay_update_log(path)
        full = replay_update_log(path, base.copy(), use_checkpoints=False)
        assert resumed.graph == live
        assert full.graph == live
        assert resumed.resumed_from == (4 // checkpoint_every) * checkpoint_every
        assert full.applied == 4

    def test_churn_checkpoints_with_deletions(self, tmp_path):
        stream = churn_stream(n_nodes=60, batches=10, delete_fraction=0.5, rng=8)
        assert any(u.del_nodes or u.del_edges or u.del_attrs for u in stream.updates)
        live = stream.base.copy()
        path = tmp_path / "churn.jsonl"
        with UpdateLogWriter(path, checkpoint_every=3) as writer:
            writer.write_base(stream.base)
            for update in stream.updates:
                apply_update(live, update)
                writer.append(update, live)
        assert replay_update_log(path).graph == live
        assert (
            replay_update_log(path, stream.base.copy(), use_checkpoints=False).graph
            == live
        )


class TestLogFormat:
    def test_records_carry_format_stamp(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with UpdateLogWriter(path) as writer:
            writer.append(GraphUpdate(nodes=[("n", "L", {})]))
        line = json.loads(path.read_text().strip())
        assert line["format"] == UPDATE_LOG_FORMAT
        assert line["type"] == "update"
        assert line["seq"] == 1

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"format": 99, "type": "update", "seq": 1, "update": {}}) + "\n")
        with pytest.raises(GraphError, match="unsupported update-log format"):
            list(read_update_log(path))

    def test_garbage_line_rejected_with_position(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("not json\n")
        with pytest.raises(GraphError, match=":1:"):
            list(read_update_log(path))

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"format": 1, "type": "mystery", "seq": 1}) + "\n")
        with pytest.raises(GraphError, match="unknown record type"):
            list(read_update_log(path))

    def test_reopening_resumes_sequence_numbers(self, tmp_path):
        """A writer reopened on an existing log continues the monotone
        numbering instead of restarting at 1."""
        path = tmp_path / "log.jsonl"
        with UpdateLogWriter(path) as writer:
            writer.append(GraphUpdate(nodes=[("n1", "L", {})]))
            writer.append(GraphUpdate(nodes=[("n2", "L", {})]))
        with UpdateLogWriter(path) as writer:
            assert writer.seq == 2
            assert writer.append(GraphUpdate(nodes=[("n3", "L", {})])) == 3
        assert [r.seq for r in read_update_log(path)] == [1, 2, 3]

    def test_reopening_after_checkpoint_resumes(self, tmp_path):
        from repro.graph import GraphBuilder

        path = tmp_path / "log.jsonl"
        graph = GraphBuilder().node("a", "L").build()
        with UpdateLogWriter(path, checkpoint_every=1) as writer:
            writer.append(GraphUpdate(nodes=[("n1", "L", {})]), graph)
        with UpdateLogWriter(path) as writer:
            assert writer.seq == 1

    def test_reopening_corrupt_log_refuses(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(GraphError, match="cannot resume"):
            UpdateLogWriter(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with UpdateLogWriter(path) as writer:
            writer.append(GraphUpdate(nodes=[("n", "L", {})]))
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_update_log(path))) == 1
