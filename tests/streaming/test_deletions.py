"""Deletion support: graph primitives and index maintenance parity."""

import random

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder
from repro.graph.update import GraphUpdate
from repro.indexing import (
    IndexMaintenance,
    attach_index,
    build_indexes,
    get_index,
)
from repro.reasoning.incremental import apply_update
from repro.workloads import validation_workload


def small_graph():
    return (
        GraphBuilder()
        .node("a", "L", x=1)
        .node("b", "M", y=2)
        .node("c", "L")
        .edge("a", "r", "b")
        .edge("b", "s", "c")
        .edge("a", "r", "c")
        .build()
    )


class TestGraphPrimitives:
    def test_remove_edge(self):
        g = small_graph()
        v = g.version
        g.remove_edge("a", "r", "b")
        assert not g.has_edge("a", "r", "b")
        assert g.successors("a", "r") == {"c"}
        assert g.predecessors("b") == set()
        assert g.version == v + 1

    def test_remove_missing_edge_raises(self):
        g = small_graph()
        with pytest.raises(GraphError, match="missing edge"):
            g.remove_edge("a", "r", "a")

    def test_remove_attribute(self):
        g = small_graph()
        g.remove_attribute("a", "x")
        assert not g.node("a").has_attribute("x")
        with pytest.raises(GraphError, match="no attribute"):
            g.remove_attribute("a", "x")

    def test_remove_node_cascades_edges(self):
        g = small_graph()
        removed = g.remove_node("c")
        assert set(removed) == {("b", "s", "c"), ("a", "r", "c")}
        assert not g.has_node("c")
        assert g.num_edges == 1
        assert g.successors("a") == {"b"}
        assert "c" not in g.nodes_with_label("L")

    def test_remove_last_node_of_label_clears_label(self):
        g = small_graph()
        g.remove_node("b")
        assert "M" not in g.labels

    def test_removed_node_id_can_be_reused(self):
        g = small_graph()
        g.remove_node("b")
        g.add_node("b", "N")
        assert g.node("b").label == "N"

    def test_self_loop_removal(self):
        g = GraphBuilder().node("a", "L").build()
        g.add_edge("a", "r", "a")
        removed = g.remove_node("a")
        assert removed == [("a", "r", "a")]
        assert g.num_nodes == 0 and g.num_edges == 0


def assert_patch_equals_rebuild(graph, index):
    fresh = build_indexes(graph)
    patched, rebuilt = index.snapshot(), fresh.snapshot()
    for structure in patched:
        assert patched[structure] == rebuilt[structure], structure


class TestMaintenanceDeletions:
    def test_mixed_batch_parity(self):
        g = small_graph()
        index = attach_index(g)
        update = GraphUpdate(
            nodes=[("d", "L", {"x": 2})],
            edges=[("d", "r", "a")],
            attrs=[("a", "x", 9)],
            del_edges=[("b", "s", "c")],
            del_attrs=[("b", "y")],
            del_nodes=["c"],
        )
        report = IndexMaintenance(g, index).apply(update)
        assert report.edges_removed == 1
        assert report.attrs_removed == 1
        assert report.nodes_removed == 1
        assert index.synced_version == g.version
        assert_patch_equals_rebuild(g, index)

    def test_node_deletion_repairs_neighbor_signatures(self):
        g = small_graph()
        index = attach_index(g)
        apply_update(g, GraphUpdate(del_nodes=["c"]))
        # a lost its (r, L) out-pair witness through c; b its (s, L).
        assert ("r", "L") not in index.out_pairs["a"]
        assert ("r", "M") in index.out_pairs["a"]
        assert index.out_total["b"] == 0
        assert_patch_equals_rebuild(g, index)

    def test_surviving_witness_keeps_pair(self):
        g = small_graph()
        index = attach_index(g)
        # a has two (r, L)-shaped witnesses? No: (a,r,b) is (r,M),
        # (a,r,c) is (r,L).  Add a second L-target first.
        apply_update(g, GraphUpdate(nodes=[("c2", "L", {})], edges=[("a", "r", "c2")]))
        apply_update(g, GraphUpdate(del_edges=[("a", "r", "c")]))
        assert ("r", "L") in index.out_pairs["a"]
        assert_patch_equals_rebuild(g, index)

    def test_unindexable_flag_clears_when_last_unhashable_goes(self):
        g = GraphBuilder().node("a", "L").node("b", "L").build()
        g.set_attribute("a", "tags", [1, 2])  # unhashable
        g.set_attribute("b", "tags", "ok")
        index = attach_index(g)
        assert "tags" in index.unindexable_attrs
        apply_update(g, GraphUpdate(del_attrs=[("a", "tags")]))
        assert "tags" not in index.unindexable_attrs
        assert index.nodes_with_attr_value("tags", "ok") == {"b"}
        assert_patch_equals_rebuild(g, index)

    def test_unindexable_flag_clears_on_overwrite(self):
        g = GraphBuilder().node("a", "L").build()
        g.set_attribute("a", "tags", [1, 2])
        index = attach_index(g)
        assert "tags" in index.unindexable_attrs
        apply_update(g, GraphUpdate(attrs=[("a", "tags", "plain")]))
        assert "tags" not in index.unindexable_attrs
        assert_patch_equals_rebuild(g, index)

    def test_unindexable_flag_persists_when_another_remains(self):
        g = GraphBuilder().node("a", "L").node("b", "L").build()
        g.set_attribute("a", "tags", [1])
        g.set_attribute("b", "tags", [2])
        index = attach_index(g)
        apply_update(g, GraphUpdate(del_attrs=[("a", "tags")]))
        assert "tags" in index.unindexable_attrs
        assert_patch_equals_rebuild(g, index)

    def test_deletion_retires_warm_engine_pool(self):
        """Deletions advance the mutation version, so a warm engine
        pool snapshotted before the batch must not be reused."""
        from repro.engine import get_pool, release_pool

        g = validation_workload(30, rng=1)
        pool = get_pool(g, workers=2)
        try:
            apply_update(g, GraphUpdate(del_nodes=[g.node_ids[0]]))
            fresh = get_pool(g, workers=2)
            assert fresh is not pool
            assert pool.closed
        finally:
            release_pool(g)

    def test_randomized_delete_heavy_parity(self):
        rng = random.Random(99)
        g = validation_workload(80, rng=99)
        index = attach_index(g)
        for step in range(25):
            kind = rng.choice(("edge", "attr", "node", "mixed"))
            update = None
            if kind == "edge" and g.num_edges:
                update = GraphUpdate(del_edges=[rng.choice(sorted(g.edges))])
            elif kind == "attr":
                carriers = [n for n in g.node_ids if g.node(n).attributes]
                if carriers:
                    n = rng.choice(carriers)
                    update = GraphUpdate(
                        del_attrs=[(n, rng.choice(sorted(g.node(n).attributes)))]
                    )
            elif kind == "node" and g.num_nodes > 10:
                update = GraphUpdate(del_nodes=[rng.choice(g.node_ids)])
            else:
                update = GraphUpdate(
                    nodes=[(f"x{step}", "user", {"score": 1})],
                    edges=[(f"x{step}", "buys", rng.choice(g.node_ids))],
                )
            if update is None:
                continue
            apply_update(g, update)
            assert get_index(g) is index, "index must stay synced"
        assert_patch_equals_rebuild(g, index)
