"""Satellites: whole-batch validation up front, duplicate-add semantics."""

import pytest

from repro.errors import GraphError, ReproError
from repro.graph import GraphBuilder
from repro.graph.update import GraphUpdate, validate_update
from repro.indexing import attach_index, build_indexes, get_index
from repro.reasoning.incremental import apply_update


def base_graph():
    return (
        GraphBuilder()
        .node("a", "L", x=1)
        .node("b", "M")
        .edge("a", "r", "b")
        .build()
    )


def snapshot(graph):
    index = get_index(graph)
    return (
        graph.version,
        sorted(graph.node_ids),
        sorted(graph.edges),
        {n.id: dict(n.attributes) for n in graph.nodes},
        index.snapshot() if index is not None else None,
    )


BAD_BATCHES = [
    # (update, error fragment) — each must name the offending tuple
    (GraphUpdate(edges=[("a", "r", "ghost")]), "ghost"),
    (GraphUpdate(edges=[("ghost", "r", "a")]), "ghost"),
    (GraphUpdate(attrs=[("ghost", "x", 1)]), "ghost"),
    (GraphUpdate(attrs=[("a", "id", 1)]), "id"),
    (GraphUpdate(del_edges=[("a", "zz", "b")]), "zz"),
    (GraphUpdate(del_nodes=["ghost"]), "ghost"),
    (GraphUpdate(del_attrs=[("a", "nope")]), "nope"),
    (GraphUpdate(del_attrs=[("ghost", "x")]), "ghost"),
    (GraphUpdate(nodes=[("a", "L", {})]), "already exists"),
    (GraphUpdate(nodes=[("n1", "L", {}), ("n1", "L", {})]), "duplicate node addition"),
    (GraphUpdate(del_nodes=["a", "a"]), "duplicate node deletion"),
    (GraphUpdate(del_edges=[("a", "r", "b"), ("a", "r", "b")]), "duplicate edge deletion"),
    (GraphUpdate(del_attrs=[("a", "x"), ("a", "x")]), "duplicate attribute deletion"),
    (GraphUpdate(nodes=[("", "L", {})]), "invalid node id"),
    (GraphUpdate(nodes=[("n2", "", {})]), "invalid node label"),
    # references a node that the same batch deletes
    (GraphUpdate(del_nodes=["b"], edges=[("a", "r", "b")]), "missing node"),
    (GraphUpdate(del_nodes=["b"], attrs=[("b", "x", 1)]), "missing node"),
]


class TestAtomicValidation:
    @pytest.mark.parametrize("indexed", [False, True], ids=["plain", "indexed"])
    @pytest.mark.parametrize(
        "update,fragment", BAD_BATCHES, ids=[f for _, f in BAD_BATCHES]
    )
    def test_bad_batch_rejected_before_any_mutation(self, update, fragment, indexed):
        g = base_graph()
        if indexed:
            attach_index(g)
        before = snapshot(g)
        with pytest.raises(ReproError, match=fragment):
            apply_update(g, update)
        assert snapshot(g) == before, "a rejected batch must not mutate anything"

    def test_bad_tail_does_not_apply_good_head(self):
        """The original failure mode: a bad element mid-batch used to
        leave the earlier elements applied."""
        g = base_graph()
        attach_index(g)
        before = snapshot(g)
        update = GraphUpdate(
            nodes=[("fresh", "L", {"x": 1})],
            edges=[("fresh", "r", "a"), ("fresh", "r", "missing")],
        )
        with pytest.raises(GraphError, match="missing"):
            apply_update(g, update)
        assert snapshot(g) == before
        assert not g.has_node("fresh")

    def test_validate_update_standalone(self):
        g = base_graph()
        validate_update(g, GraphUpdate(nodes=[("n", "L", {})], edges=[("n", "r", "a")]))
        with pytest.raises(GraphError):
            validate_update(g, GraphUpdate(edges=[("n", "r", "a")]))


class TestDuplicateAddSemantics:
    """Re-adding an existing node id is an error (documented on
    GraphUpdate), uniformly across the plain and indexed apply paths."""

    @pytest.mark.parametrize("indexed", [False, True], ids=["plain", "indexed"])
    def test_readding_existing_id_errors(self, indexed):
        g = base_graph()
        if indexed:
            attach_index(g)
        with pytest.raises(GraphError, match="already exists"):
            apply_update(g, GraphUpdate(nodes=[("a", "L", {"x": 5})]))
        assert g.node("a").get("x") == 1, "the existing node must be untouched"

    @pytest.mark.parametrize("indexed", [False, True], ids=["plain", "indexed"])
    def test_replace_via_same_batch_delete(self, indexed):
        g = base_graph()
        if indexed:
            attach_index(g)
        apply_update(g, GraphUpdate(del_nodes=["a"], nodes=[("a", "N", {"x": 5})]))
        assert g.node("a").label == "N"
        assert g.node("a").get("x") == 5
        assert g.num_edges == 0  # the old a's edges cascaded away
        if indexed:
            index = get_index(g)
            assert index is not None
            assert index.snapshot() == build_indexes(g).snapshot()

    def test_attribute_overwrite_is_allowed(self):
        """Attribute writes overwrite (unlike node adds): documented
        contrast enforced here."""
        g = base_graph()
        apply_update(g, GraphUpdate(attrs=[("a", "x", 42)]))
        assert g.node("a").get("x") == 42

    def test_edge_readd_is_idempotent(self):
        g = base_graph()
        v = g.version
        apply_update(g, GraphUpdate(edges=[("a", "r", "b")]))
        assert g.num_edges == 1
        assert g.version == v  # no effective mutation
