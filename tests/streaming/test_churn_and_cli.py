"""Churn workload validity/determinism and the `stream` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.deps.io import ged_from_dict, ged_to_dict
from repro.graph.io import UpdateLogWriter, graph_to_json
from repro.graph.update import validate_update
from repro.reasoning import find_violations
from repro.reasoning.incremental import apply_update
from repro.workloads import churn_stream, social_churn_stream


class TestChurnStreams:
    @pytest.mark.parametrize("maker", [churn_stream, social_churn_stream])
    def test_every_batch_validates_in_sequence(self, maker):
        stream = maker(batches=10, rng=4)
        graph = stream.base.copy()
        for update in stream.updates:
            validate_update(graph, update)  # would raise on a bad batch
            apply_update(graph, update)

    @pytest.mark.parametrize("maker", [churn_stream, social_churn_stream])
    def test_seed_determinism(self, maker):
        first = maker(batches=8, rng=21)
        second = maker(batches=8, rng=21)
        assert first.base == second.base
        for a, b in zip(first.updates, second.updates):
            assert a == b

    def test_streams_contain_deletions_and_additions(self):
        stream = churn_stream(batches=20, rng=8)
        assert any(u.del_edges or u.del_nodes or u.del_attrs for u in stream.updates)
        assert any(u.nodes for u in stream.updates)
        assert stream.total_operations() > 0

    def test_rules_fire_on_the_stream(self):
        """The churn workload must actually exercise the rules."""
        stream = churn_stream(n_nodes=150, batches=10, rng=13)
        graph = stream.base.copy()
        for update in stream.updates:
            apply_update(graph, update)
        assert find_violations(graph, stream.sigma), "workload should be dirty"


@pytest.fixture
def stream_files(tmp_path):
    stream = churn_stream(n_nodes=50, batches=5, rng=6)
    live = stream.base.copy()
    log_path = tmp_path / "updates.jsonl"
    with UpdateLogWriter(log_path, checkpoint_every=2) as writer:
        writer.write_base(live)
        for update in stream.updates:
            apply_update(live, update)
            writer.append(update, live)
    graph_path = tmp_path / "base.json"
    graph_path.write_text(graph_to_json(stream.base))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps([ged_to_dict(g) for g in stream.sigma]))
    final = len(find_violations(live, stream.sigma))
    return graph_path, rules_path, log_path, final


class TestStreamCLI:
    def parse_ndjson(self, capsys):
        return [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]

    def test_replay_emits_ndjson_deltas(self, stream_files, capsys):
        graph_path, rules_path, log_path, final = stream_files
        code = main(
            [
                "stream",
                "--log", str(log_path),
                "--rules", str(rules_path),
                "--graph", str(graph_path),
                "--index",
            ]
        )
        lines = self.parse_ndjson(capsys)
        assert lines[0]["type"] == "bootstrap"
        deltas = [line for line in lines if line["type"] == "delta"]
        assert [d["seq"] for d in deltas] == [1, 2, 3, 4, 5]
        assert all(
            set(d) >= {"introduced", "retired", "updated", "touched", "wall_seconds"}
            for d in deltas
        )
        summary = lines[-1]
        assert summary["type"] == "summary"
        assert summary["violations"] == final
        assert code == (0 if final == 0 else 1)

    def test_base_from_leading_checkpoint(self, stream_files, capsys):
        _, rules_path, log_path, final = stream_files
        main(["stream", "--log", str(log_path), "--rules", str(rules_path)])
        lines = self.parse_ndjson(capsys)
        assert lines[-1]["violations"] == final

    def test_limit_zero_suppresses_sample(self, stream_files, capsys):
        _, rules_path, log_path, _ = stream_files
        main(
            ["stream", "--log", str(log_path), "--rules", str(rules_path), "--limit", "0"]
        )
        lines = self.parse_ndjson(capsys)
        assert lines[-1]["sample"] == []

    def test_summary_matches_replay_and_documented_shape(self, stream_files, capsys):
        """The summary line agrees with `replay_update_log` on the final
        state and carries the transport counters docs/update-log.md §2.3
        documents (zeros off the fragment backend)."""
        from repro.graph.io import replay_update_log

        _, rules_path, log_path, final = stream_files
        main(["stream", "--log", str(log_path), "--rules", str(rules_path)])
        summary = self.parse_ndjson(capsys)[-1]
        replayed = replay_update_log(log_path)
        rules = [ged_from_dict(d) for d in json.loads(rules_path.read_text())]
        assert summary["violations"] == len(find_violations(replayed.graph, rules))
        assert summary["violations"] == final
        assert summary["batches"] == replayed.last_seq
        assert (
            summary["routed_ops"] == summary["full_ops"]
            == summary["escalated_nodes"] == 0
        )

    def test_missing_checkpoint_without_graph_is_usage_error(self, tmp_path, capsys):
        stream = churn_stream(n_nodes=30, batches=2, rng=1)
        log_path = tmp_path / "bare.jsonl"
        live = stream.base.copy()
        with UpdateLogWriter(log_path) as writer:
            for update in stream.updates:
                apply_update(live, update)
                writer.append(update)
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(json.dumps([ged_to_dict(g) for g in stream.sigma]))
        code = main(["stream", "--log", str(log_path), "--rules", str(rules_path)])
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err
