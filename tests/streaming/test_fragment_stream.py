"""Fragment-routed streaming: the ledger's ``fragment`` backend stays
byte-identical to serial while each fragment's replication log carries
only its slice."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.fragments import PARTITION_MODES
from repro.indexing import attach_index
from repro.reasoning import find_violations
from repro.streaming import FragmentDeltaRouter, ViolationLedger, canonical_report
from repro.workloads import churn_stream, social_churn_stream


def run_ledger(stream, backend, indexed=False, **kwargs):
    graph = stream.base.copy()
    if indexed:
        attach_index(graph)
    with ViolationLedger(graph, stream.sigma, backend=backend, **kwargs) as ledger:
        ledger.bootstrap()
        deltas = []
        for update in stream.updates:
            delta = ledger.refresh(update)
            payload = delta.to_dict()
            payload.pop("wall_seconds")
            deltas.append(payload)
        final = ledger.violations()
        fresh = canonical_report(stream.sigma, find_violations(graph, stream.sigma))
        assert final == fresh  # the ledger invariant, per backend
        return deltas, final, ledger


class TestLedgerFragmentBackend:
    @pytest.mark.parametrize("mode", PARTITION_MODES)
    @pytest.mark.parametrize("indexed", [False, True])
    def test_random_churn_byte_identical(self, mode, indexed):
        make = lambda: churn_stream(n_nodes=100, batches=10, batch_size=8, rng=11)
        serial_deltas, serial_final, _ = run_ledger(make(), "serial", indexed)
        fragment_deltas, fragment_final, _ = run_ledger(
            make(), "fragment", indexed, workers=3, fragment_mode=mode
        )
        assert fragment_deltas == serial_deltas
        assert [str(v) for v in fragment_final] == [str(v) for v in serial_final]

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_social_churn_byte_identical(self, mode):
        """The social rules include a radius-4 pattern — deep balls
        cross cuts constantly, so this drives the escalation path."""
        make = lambda: social_churn_stream(n_rings=3, batches=8, batch_size=6, rng=4)
        serial_deltas, _, _ = run_ledger(make(), "serial")
        fragment_deltas, _, ledger = run_ledger(
            make(), "fragment", workers=3, fragment_mode=mode
        )
        assert fragment_deltas == serial_deltas

    @given(seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=6, deadline=None)
    def test_property_equivalence(self, seed):
        make = lambda: churn_stream(n_nodes=50, batches=6, batch_size=6, rng=seed)
        serial_deltas, _, _ = run_ledger(make(), "serial")
        fragment_deltas, _, _ = run_ledger(
            make(), "fragment", workers=2, fragment_mode="greedy"
        )
        assert fragment_deltas == serial_deltas

    def test_bad_backend_rejected(self):
        stream = churn_stream(n_nodes=20, batches=1, rng=1)
        with pytest.raises(ValueError, match="backend"):
            ViolationLedger(stream.base.copy(), stream.sigma, backend="sharded")


class TestRouterAccounting:
    def test_routed_log_smaller_than_full_replication(self):
        stream = churn_stream(n_nodes=120, batches=10, batch_size=8, rng=13)
        with ViolationLedger(
            stream.base.copy(),
            stream.sigma,
            backend="fragment",
            workers=4,
            fragment_mode="greedy",
        ) as ledger:
            ledger.bootstrap()
            for update in stream.updates:
                ledger.refresh(update)
            router = ledger._router
            assert router is not None
            assert router.ops_full == 4 * sum(u.size() for u in stream.updates)
            # The whole point: per-fragment slices ship less than k-way
            # full replication (coherence traffic included).
            assert router.ops_routed < router.ops_full

    def test_router_mirror_tracks_the_stream(self):
        stream = churn_stream(n_nodes=60, batches=6, batch_size=6, rng=3)
        graph = stream.base.copy()
        router = FragmentDeltaRouter(graph, stream.sigma, fragments=3, mode="hash")
        from repro.reasoning.incremental import apply_update

        for update in stream.updates:
            apply_update(graph, update)
            router.refresh(graph, update, update.touched_nodes())
        assert router.mirror.to_graph() == graph
