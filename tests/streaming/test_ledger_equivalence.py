"""The ledger-equivalence property (ISSUE 3 acceptance).

After any seeded stream of update batches — including deletions — the
:class:`~repro.streaming.ViolationLedger` state must be byte-identical
(canonically ordered, NDJSON-serialized) to a from-scratch
``find_violations`` report on the final graph: with and without an
index attached, across the serial and engine delta backends.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.update import GraphUpdate
from repro.indexing import attach_index, get_index
from repro.reasoning import find_violations
from repro.streaming import (
    EngineDeltaExecutor,
    ViolationLedger,
    canonical_report,
    violation_to_dict,
)
from repro.workloads import churn_stream, social_churn_stream


def ndjson(violations):
    return "\n".join(json.dumps(violation_to_dict(v), sort_keys=True) for v in violations)


def assert_ledger_equals_full(ledger, graph, sigma):
    maintained = ndjson(ledger.violations())
    recomputed = ndjson(canonical_report(sigma, find_violations(graph, sigma)))
    assert maintained == recomputed


class TestSerialProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000), st.booleans())
    def test_ledger_equals_full_revalidation(self, seed, indexed):
        """The property, over random churn streams (random-graph
        workload) and the index toggle."""
        stream = churn_stream(
            n_nodes=random.Random(seed).randint(20, 60),
            batches=8,
            batch_size=6,
            rng=seed,
        )
        graph = stream.base.copy()
        if indexed:
            attach_index(graph)
        ledger = ViolationLedger(graph, stream.sigma)
        ledger.bootstrap()
        for update in stream.updates:
            ledger.refresh(update)
            if indexed:
                assert get_index(graph) is not None, "index must stay synced"
        assert_ledger_equals_full(ledger, graph, stream.sigma)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_social_stream(self, seed):
        stream = social_churn_stream(n_rings=3, batches=6, batch_size=6, rng=seed)
        graph = stream.base.copy()
        attach_index(graph)
        ledger = ViolationLedger(graph, stream.sigma)
        ledger.bootstrap()
        for update in stream.updates:
            ledger.refresh(update)
        assert_ledger_equals_full(ledger, graph, stream.sigma)

    def test_deltas_compose_to_final_state(self):
        """introduced − retired, folded over the stream, reproduces the
        ledger (delta emission is lossless)."""
        stream = churn_stream(n_nodes=50, batches=10, rng=17)
        graph = stream.base.copy()
        ledger = ViolationLedger(graph, stream.sigma)
        state = {
            (v.ged, v.match): v for v in ledger.bootstrap()
        }
        for update in stream.updates:
            delta = ledger.refresh(update)
            for violation in delta.retired:
                del state[(violation.ged, violation.match)]
            for violation in delta.updated:
                assert (violation.ged, violation.match) in state
                state[(violation.ged, violation.match)] = violation
            for violation in delta.introduced:
                key = (violation.ged, violation.match)
                assert key not in state, "introduced key must be new"
                state[key] = violation
        assert set(state.values()) == set(ledger.violations())

    def test_introduced_order_is_canonical_not_pin_order(self):
        """Two violations introduced by one batch whose pin-enumeration
        order differs from canonical (dep, embedding) order: the delta
        must come back canonically sorted (backend-independent)."""
        from repro.deps import GED, ConstantLiteral
        from repro.graph import GraphBuilder
        from repro.patterns import Pattern

        graph = (
            GraphBuilder()
            .node("z", "L")
            .node("a", "L")
            .node("b", "L")
            .node("c", "L")
            .build()
        )
        rule = GED(
            Pattern({"x": "L", "y": "L"}, [("x", "r", "y")]),
            [],
            [ConstantLiteral("y", "ok", 1)],
        )
        ledger = ViolationLedger(graph, [rule])
        ledger.bootstrap()
        delta = ledger.refresh(GraphUpdate(edges=[("z", "r", "a"), ("b", "r", "c")]))
        matches = [v.match for v in delta.introduced]
        # Pin enumeration (sorted touched: a, b, c, z) finds (z, a)
        # before (b, c); canonical embedding order is the reverse.
        assert matches == [
            (("x", "b"), ("y", "c")),
            (("x", "z"), ("y", "a")),
        ]

    def test_empty_batch_is_a_noop_delta(self):
        stream = churn_stream(n_nodes=30, batches=1, rng=1)
        graph = stream.base.copy()
        ledger = ViolationLedger(graph, stream.sigma)
        ledger.bootstrap()
        delta = ledger.refresh(GraphUpdate())
        assert delta.is_empty()
        assert delta.rechecked == 0


class TestEngineBackend:
    """The engine-pooled delta path (process workers: a few fixed seeds
    rather than a hypothesis sweep)."""

    @pytest.mark.parametrize("indexed", [False, True], ids=["plain", "indexed"])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_engine_equals_full_revalidation(self, seed, indexed):
        stream = churn_stream(n_nodes=60, batches=8, rng=seed)
        graph = stream.base.copy()
        if indexed:
            attach_index(graph)
        with ViolationLedger(graph, stream.sigma, backend="engine", workers=2) as ledger:
            ledger.bootstrap()
            for update in stream.updates:
                ledger.refresh(update)
            assert_ledger_equals_full(ledger, graph, stream.sigma)

    def test_engine_deltas_match_serial_deltas(self):
        """Batch-by-batch determinism across backends, not just final
        state."""
        stream = churn_stream(n_nodes=60, batches=6, rng=7)
        serial_graph = stream.base.copy()
        engine_graph = stream.base.copy()
        serial = ViolationLedger(serial_graph, stream.sigma)
        serial.bootstrap()
        with ViolationLedger(
            engine_graph, stream.sigma, backend="engine", workers=2
        ) as engine:
            engine.bootstrap()
            for update in stream.updates:
                serial_delta = serial.refresh(update)
                engine_delta = engine.refresh(update)
                assert ndjson(serial_delta.introduced) == ndjson(engine_delta.introduced)
                assert ndjson(serial_delta.retired) == ndjson(engine_delta.retired)
                assert ndjson(serial_delta.updated) == ndjson(engine_delta.updated)

    def test_rebroadcast_checkpoint_path(self):
        """A tiny replication-log bound forces mid-stream re-broadcasts;
        correctness must be unaffected and the executor must record them."""
        stream = churn_stream(n_nodes=50, batches=8, rng=5)
        graph = stream.base.copy()
        ledger = ViolationLedger(graph, stream.sigma, backend="engine", workers=2)
        # Pre-build the executor with a tiny log bound, then stream.
        ledger._executor = EngineDeltaExecutor(
            graph, ledger.sigma, workers=2, max_pending=2
        )
        try:
            ledger.bootstrap()
            for update in stream.updates:
                ledger.refresh(update)
            assert ledger._executor.rebroadcasts >= 2
            assert_ledger_equals_full(ledger, graph, stream.sigma)
        finally:
            ledger.close()
