"""Cross-module integration and property tests.

These tie the follow-on subsystems together the way a deployment would:
discovery feeds the cover, the cover feeds (parallel) validation, the
violations feed repair, and the repaired graph must validate.  Each
property is checked over randomized instances via hypothesis.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, IdLiteral, VariableLiteral
from repro.discovery import discover_gfds
from repro.graph.graph import Graph
from repro.matching.homomorphism import find_homomorphisms
from repro.optimization import compute_cover, minimize_pattern
from repro.parallel import parallel_find_violations
from repro.patterns.pattern import Pattern
from repro.reasoning.implication import implies
from repro.reasoning.validation import find_violations, validates
from repro.repair import repair


def random_creator_graph(seed: int, n: int = 6) -> Graph:
    """Creator pairs with randomly dirty person types."""
    rng = random.Random(seed)
    g = Graph()
    for i in range(n):
        kind = rng.choice(["programmer", "psychologist", "artist"])
        g.add_node(f"p{i}", "person", {"type": kind})
        g.add_node(f"g{i}", "product", {"type": "video game"})
        g.add_edge(f"p{i}", "create", f"g{i}")
    return g


def creator_rule() -> GED:
    q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
    return GED(
        q,
        [ConstantLiteral("y", "type", "video game")],
        [ConstantLiteral("x", "type", "programmer")],
        name="phi1",
    )


class TestDetectRepairValidateLoop:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_repair_always_reaches_validating_graph(self, seed):
        g = random_creator_graph(seed)
        rules = [creator_rule()]
        report = repair(g, rules, max_operations=100)
        assert report.clean
        assert validates(report.graph, rules)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_repair_is_idempotent_on_clean_graphs(self, seed):
        g = random_creator_graph(seed)
        rules = [creator_rule()]
        first = repair(g, rules, max_operations=100)
        second = repair(first.graph, rules, max_operations=100)
        assert second.clean
        assert second.applied == []
        assert second.graph == first.graph

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_repair_cost_bounded_by_violations(self, seed):
        """Each phi1 violation needs exactly one value repair, so the
        op count equals the violation count on this rule."""
        g = random_creator_graph(seed)
        rules = [creator_rule()]
        violations = find_violations(g, rules)
        report = repair(g, rules, max_operations=100)
        assert len(report.applied) == len(violations)


class TestDiscoveryFeedsDownstream:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_mined_cover_validates_everywhere_the_full_set_does(self, seed):
        g = random_creator_graph(seed, n=8)
        mined = [r.ged for r in discover_gfds(g, max_lhs=1, min_support=3)]
        if not mined:
            return
        report = compute_cover(mined)
        # cover equivalence: every dropped rule is implied
        for dropped in report.implied + report.structural_duplicates:
            assert implies(report.cover, dropped)
        # and the source graph validates the cover (it validated the set)
        assert validates(g, report.cover)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_parallel_validation_agrees_on_mined_rules(self, seed):
        g = random_creator_graph(seed, n=8)
        mined = [r.ged for r in discover_gfds(g, max_lhs=0, min_support=3)]
        reference = {v.match for v in find_violations(g, mined)}
        for workers in (1, 3):
            report = parallel_find_violations(g, mined, workers=workers)
            assert {v.match for v in report.violations} == reference


class TestMinimizationSoundness:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_minimized_query_preserves_answers_on_models(self, n, seed):
        """On graphs satisfying the key, the minimized query's matches
        are exactly the original query's matches projected through the
        variable mapping."""
        rng = random.Random(seed)
        g = Graph()
        for i in range(n):
            g.add_node(f"c{i}", "country")
            g.add_node(f"k{i}", "city", {"name": f"n{rng.randrange(3)}"})
            g.add_edge(f"c{i}", "capital", f"k{i}")
        key = GED(
            Pattern(
                {"c": "country", "p": "city", "q": "city"},
                [("c", "capital", "p"), ("c", "capital", "q")],
            ),
            [],
            [IdLiteral("p", "q")],
        )
        assert validates(g, [key])
        query = Pattern(
            {"x": "country", "y": "city", "z": "city"},
            [("x", "capital", "y"), ("x", "capital", "z")],
        )
        reduced = minimize_pattern(query, [key])
        original = {
            tuple(sorted((reduced.mapping[v], node) for v, node in m.items()))
            for m in find_homomorphisms(query, g)
        }
        minimized = {
            tuple(sorted(m.items())) for m in find_homomorphisms(reduced.pattern, g)
        }
        assert {frozenset(m) for m in original} == {frozenset(m) for m in minimized}


class TestChaseRepairConsistency:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_forward_repair_agrees_with_chase_on_variable_rules(self, seed):
        """For value-equalizing rules, the repair engine's forward fixes
        and the chase's coercion agree on which attribute classes end
        up equal (spot check: repaired graph satisfies the rule and the
        chase of the repaired graph applies zero steps)."""
        from repro.chase.engine import chase

        rng = random.Random(seed)
        g = Graph()
        g.add_node("c", "country")
        for i in range(3):
            g.add_node(f"k{i}", "city", {"name": f"n{rng.randrange(2)}"})
            g.add_edge("c", "capital", f"k{i}")
        rule = GED(
            Pattern(
                {"x": "country", "y": "city", "z": "city"},
                [("x", "capital", "y"), ("x", "capital", "z")],
            ),
            [],
            [VariableLiteral("y", "name", "z", "name")],
        )
        report = repair(g, [rule], max_operations=50)
        assert report.clean
        result = chase(report.graph, [rule])
        assert result.consistent
        assert result.steps == []
