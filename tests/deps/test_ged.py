"""Tests for GED construction, classification, and GKeys."""

import pytest

from repro import paper
from repro.deps import (
    FALSE,
    ConstantLiteral,
    GED,
    GKey,
    IdLiteral,
    VariableLiteral,
    ged_from_json,
    ged_to_json,
    make_gkey,
    sigma_size,
)
from repro.errors import DependencyError, LiteralError
from repro.patterns import Pattern


class TestGEDConstruction:
    def test_literals_must_use_pattern_variables(self):
        q = Pattern({"x": "a"}, [])
        with pytest.raises(LiteralError):
            GED(q, [ConstantLiteral("y", "A", 1)], [])
        with pytest.raises(LiteralError):
            GED(q, [], [IdLiteral("x", "y")])

    def test_false_not_allowed_in_x(self):
        q = Pattern({"x": "a"}, [])
        with pytest.raises(DependencyError):
            GED(q, [FALSE], [])

    def test_empty_x_and_y_allowed(self):
        q = Pattern({"x": "a"}, [])
        ged = GED(q)
        assert ged.X == frozenset() and ged.Y == frozenset()

    def test_equality_and_hash(self):
        assert paper.phi1() == paper.phi1()
        assert hash(paper.phi1()) == hash(paper.phi1())
        assert paper.phi1() != paper.phi2()

    def test_str_is_readable(self):
        text = str(paper.phi2())
        assert "phi2" in text and "y.name = z.name" in text

    def test_sigma_size(self):
        assert sigma_size([paper.phi2()]) == paper.q2().size() + 1


class TestClassification:
    def test_phi1_is_gfd_with_constants(self):
        phi1 = paper.phi1()
        assert phi1.is_gfd
        assert phi1.has_constant_literals
        assert not phi1.is_gedx
        assert "GFD" in phi1.classify() and "GFDx" not in phi1.classify()

    def test_phi2_phi3_are_gfdx(self):
        for ged in (paper.phi2(), paper.phi3()):
            assert ged.is_gfdx
            assert ged.is_gedx and ged.is_gfd
            assert {"GED", "GFD", "GEDx", "GFDx"} <= ged.classify()

    def test_phi4_forbidding_counts_as_constant(self):
        phi4 = paper.phi4()
        assert phi4.is_forbidding
        assert phi4.has_constant_literals
        assert phi4.is_gfd
        assert "forbidding" in phi4.classify()

    def test_phi5_is_gfd(self):
        assert paper.phi5().is_gfd
        assert not paper.phi5().is_gedx

    def test_psi_keys_are_gedx_not_gfdx(self):
        """Example 3: ψ1–ψ3 are GEDxs but not GFDxs."""
        for psi in (paper.psi1(), paper.psi2(), paper.psi3()):
            assert psi.is_gedx
            assert not psi.is_gfd
            assert not psi.is_gfdx
            assert "GKey" in psi.classify()


class TestGKeys:
    def test_gkey_pattern_is_two_copies(self):
        psi1 = paper.psi1()
        assert isinstance(psi1, GKey)
        assert set(psi1.pattern.variables) == {"x", "xp", "x'", "xp'"}
        assert psi1.pattern.num_edges == 2

    def test_gkey_y_is_single_id_literal(self):
        psi1 = paper.psi1()
        assert psi1.Y == frozenset({IdLiteral("x", "x'")})
        assert psi1.x0 == "x" and psi1.y0 == "x'"

    def test_psi1_x_content(self):
        """ψ1: same title + identified artists."""
        psi1 = paper.psi1()
        assert VariableLiteral("x", "title", "x'", "title") in psi1.X
        assert IdLiteral("xp", "xp'") in psi1.X

    def test_psi3_is_recursive_with_psi1(self):
        """ψ3 requires identified albums — the recursion of Example 1."""
        psi3 = paper.psi3()
        assert IdLiteral("x", "x'") in psi3.X
        assert psi3.Y == frozenset({IdLiteral("xp", "xp'")})

    def test_make_gkey_validates_variables(self):
        q = Pattern({"x": "album"})
        with pytest.raises(DependencyError):
            make_gkey(q, "nope")
        with pytest.raises(DependencyError):
            make_gkey(q, "x", value_attrs={"nope": ["a"]})
        with pytest.raises(DependencyError):
            make_gkey(q, "x", id_vars=["nope"])

    def test_make_gkey_constant_conditions_mirrored(self):
        q = Pattern({"x": "album"})
        key = make_gkey(
            q, "x", constant_conditions=[ConstantLiteral("x", "lang", "en")]
        )
        assert ConstantLiteral("x", "lang", "en") in key.X
        assert ConstantLiteral("x'", "lang", "en") in key.X

    def test_make_gkey_rejects_bad_condition_var(self):
        q = Pattern({"x": "album"})
        with pytest.raises(DependencyError):
            make_gkey(q, "x", constant_conditions=[ConstantLiteral("z", "lang", "en")])


class TestSerialization:
    def test_round_trip_all_paper_geds(self):
        for ged in (
            paper.phi1(),
            paper.phi2(),
            paper.phi3(),
            paper.phi4(),
            paper.phi5(),
            paper.example5_phi1(),
            paper.example7_phi(),
        ):
            back = ged_from_json(ged_to_json(ged))
            assert back == ged

    def test_round_trip_gkey_as_plain_ged(self):
        """GKeys serialize as their underlying GED (pattern + FD)."""
        psi1 = paper.psi1()
        back = ged_from_json(ged_to_json(psi1))
        assert back.pattern == psi1.pattern
        assert back.X == psi1.X and back.Y == psi1.Y
