"""Relational dependencies (FD / CFD / EGD) and their GED encodings.

Cross-checks: the direct relational semantics must agree with GED
validation over the tuples-as-nodes graph encoding (Section 3 (5)).
"""

import random

import pytest

from repro.deps import CFD, EGD, FD
from repro.errors import DependencyError
from repro.graph import Relation, relations_to_graph
from repro.reasoning import validates


def employee_relation(rows) -> Relation:
    r = Relation("emp", ["name", "dept", "floor"])
    for row in rows:
        r.insert(row)
    return r


class TestFD:
    def test_fd_holds_directly_and_encoded(self):
        r = employee_relation([["ada", "cs", 3], ["bob", "cs", 3], ["eve", "ee", 2]])
        fd = FD("emp", ["dept"], ["floor"])
        assert fd.holds_on(r)
        assert validates(relations_to_graph([r]), fd.encode())

    def test_fd_violated_directly_and_encoded(self):
        r = employee_relation([["ada", "cs", 3], ["bob", "cs", 4]])
        fd = FD("emp", ["dept"], ["floor"])
        assert not fd.holds_on(r)
        assert not validates(relations_to_graph([r]), fd.encode())

    def test_fd_with_empty_lhs_is_constancy(self):
        r = employee_relation([["ada", "cs", 3], ["bob", "ee", 3]])
        assert FD("emp", [], ["floor"]).holds_on(r)
        assert validates(relations_to_graph([r]), FD("emp", [], ["floor"]).encode())

    def test_fd_needs_rhs(self):
        with pytest.raises(DependencyError):
            FD("emp", ["dept"], [])
        with pytest.raises(DependencyError):
            FD("", ["dept"], ["floor"])

    def test_random_fd_agreement(self):
        """Property check: relational semantics == GED semantics."""
        rng = random.Random(4)
        for _ in range(30):
            rows = [
                [rng.randint(0, 2), rng.randint(0, 2), rng.randint(0, 1)]
                for _ in range(rng.randint(1, 5))
            ]
            r = Relation("R", ["A", "B", "C"])
            for row in rows:
                r.insert(row)
            fd = FD("R", ["A"], ["B"])
            encoded = validates(relations_to_graph([r]), fd.encode())
            assert encoded == fd.holds_on(r)


class TestCFD:
    def test_cfd_with_constants(self):
        """CFD: within dept 'cs', dept determines floor 3."""
        good = employee_relation([["ada", "cs", 3], ["bob", "cs", 3], ["eve", "ee", 9]])
        bad = employee_relation([["ada", "cs", 3], ["bob", "cs", 4]])
        cfd = CFD("emp", {"dept": "cs"}, {"floor": 3})
        assert cfd.holds_on(good)
        assert not cfd.holds_on(bad)
        assert validates(relations_to_graph([good]), cfd.encode())
        assert not validates(relations_to_graph([bad]), cfd.encode())

    def test_cfd_wildcard_rhs(self):
        """CFD with wildcard RHS behaves like a conditional FD."""
        good = employee_relation([["ada", "cs", 3], ["bob", "cs", 3], ["eve", "ee", 1]])
        cfd = CFD("emp", {"dept": "cs"}, {"floor": None})
        assert cfd.holds_on(good)
        assert validates(relations_to_graph([good]), cfd.encode())
        bad = employee_relation([["ada", "cs", 3], ["bob", "cs", 4]])
        assert not cfd.holds_on(bad)
        assert not validates(relations_to_graph([bad]), cfd.encode())

    def test_cfd_does_not_fire_outside_condition(self):
        r = employee_relation([["ada", "ee", 3], ["bob", "ee", 4]])
        cfd = CFD("emp", {"dept": "cs"}, {"floor": None})
        assert cfd.holds_on(r)
        assert validates(relations_to_graph([r]), cfd.encode())

    def test_cfd_needs_rhs(self):
        with pytest.raises(DependencyError):
            CFD("emp", {"dept": "cs"}, {})


class TestEGD:
    def test_egd_within_one_relation(self):
        """R(A,B), R(A,C) sharing A implies B = C (an FD as an EGD)."""
        egd = EGD(
            [("R", {"A": "a", "B": "b"}), ("R", {"A": "a", "B": "c"})],
            ("b", "c"),
        )
        good = Relation("R", ["A", "B"])
        good.insert([1, "x"])
        good.insert([2, "y"])
        assert egd.holds_on({"R": good})
        assert validates(relations_to_graph([good]), egd.encode())

        bad = Relation("R", ["A", "B"])
        bad.insert([1, "x"])
        bad.insert([1, "y"])
        assert not egd.holds_on({"R": bad})
        assert not validates(relations_to_graph([bad]), egd.encode())

    def test_egd_across_relations(self):
        """Join on a shared variable across two relations."""
        egd = EGD(
            [("R", {"K": "k", "V": "v1"}), ("S", {"K": "k", "V": "v2"})],
            ("v1", "v2"),
        )
        r = Relation("R", ["K", "V"])
        s = Relation("S", ["K", "V"])
        r.insert([1, "x"])
        s.insert([1, "x"])
        s.insert([2, "z"])
        assert egd.holds_on({"R": r, "S": s})
        assert validates(relations_to_graph([r, s]), egd.encode())
        s.insert([1, "DIFFERENT"])
        assert not egd.holds_on({"R": r, "S": s})
        assert not validates(relations_to_graph([r, s]), egd.encode())

    def test_egd_validation(self):
        with pytest.raises(DependencyError):
            EGD([], ("a", "b"))
        with pytest.raises(DependencyError):
            EGD([("R", {"A": "a"})], ("a", "zzz"))

    def test_egd_existence_part(self):
        """φ_R fails when a tuple node lacks a mentioned attribute."""
        egd = EGD(
            [("R", {"A": "a", "B": "b"}), ("R", {"A": "a", "B": "c"})],
            ("b", "c"),
        )
        g = relations_to_graph([])
        g.add_node("partial", "R", {"A": 1})  # no B attribute
        phi_r = egd.encode()[0]
        assert not validates(g, [phi_r])
