"""Unit tests for dependency literals."""

import pytest

from repro.deps import (
    FALSE,
    ConstantLiteral,
    IdLiteral,
    VariableLiteral,
    check_literal,
    desugar_false,
    literal_variables,
    substitute,
)
from repro.errors import LiteralError


class TestConstruction:
    def test_constant_literal(self):
        l = ConstantLiteral("x", "type", "video game")
        assert l.variables == {"x"}
        assert str(l) == "x.type = 'video game'"

    def test_constant_literal_rejects_id(self):
        with pytest.raises(LiteralError):
            ConstantLiteral("x", "id", 3)

    def test_constant_literal_rejects_empty(self):
        with pytest.raises(LiteralError):
            ConstantLiteral("", "a", 1)
        with pytest.raises(LiteralError):
            ConstantLiteral("x", "", 1)

    def test_variable_literal(self):
        l = VariableLiteral("x", "name", "y", "name")
        assert l.variables == {"x", "y"}
        assert l.flipped() == VariableLiteral("y", "name", "x", "name")

    def test_variable_literal_rejects_id(self):
        with pytest.raises(LiteralError):
            VariableLiteral("x", "id", "y", "name")
        with pytest.raises(LiteralError):
            VariableLiteral("x", "name", "y", "id")

    def test_self_variable_literal_allowed(self):
        # x.A = x.A is the paper's attribute-existence device.
        l = VariableLiteral("x", "A", "x", "A")
        assert l.variables == {"x"}

    def test_id_literal(self):
        l = IdLiteral("x", "y")
        assert l.variables == {"x", "y"}
        assert l.flipped() == IdLiteral("y", "x")
        assert str(l) == "x.id = y.id"

    def test_false_is_singleton(self):
        from repro.deps.literals import _FalseLiteral

        assert _FalseLiteral() is FALSE
        assert FALSE.variables == frozenset()
        assert str(FALSE) == "false"

    def test_literals_are_hashable_and_comparable(self):
        s = {ConstantLiteral("x", "a", 1), ConstantLiteral("x", "a", 1), FALSE}
        assert len(s) == 2


class TestHelpers:
    def test_desugar_false(self):
        l1, l2 = desugar_false("y")
        assert l1.var == l2.var == "y"
        assert l1.attr == l2.attr
        assert l1.const != l2.const

    def test_literal_variables(self):
        lits = [ConstantLiteral("x", "a", 1), IdLiteral("y", "z"), FALSE]
        assert literal_variables(lits) == {"x", "y", "z"}

    def test_check_literal(self):
        check_literal(IdLiteral("x", "y"), ["x", "y"])
        with pytest.raises(LiteralError):
            check_literal(IdLiteral("x", "z"), ["x", "y"])
        with pytest.raises(LiteralError):
            check_literal("not a literal", ["x"])

    def test_substitute(self):
        h = {"x": "n1", "y": "n2"}
        assert substitute(ConstantLiteral("x", "a", 1), h) == ConstantLiteral("n1", "a", 1)
        assert substitute(VariableLiteral("x", "a", "y", "b"), h) == VariableLiteral(
            "n1", "a", "n2", "b"
        )
        assert substitute(IdLiteral("x", "y"), h) == IdLiteral("n1", "n2")
        assert substitute(FALSE, h) is FALSE

    def test_substitute_partial(self):
        assert substitute(IdLiteral("x", "z"), {"x": "n1"}) == IdLiteral("n1", "z")
