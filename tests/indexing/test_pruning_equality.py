"""Pruning is purely necessary-condition: indexed results == unindexed.

The core contract of `repro.indexing`: attaching an index may shrink
candidate pools and skip doomed search branches, but `candidate_sets` /
`find_homomorphisms` / `find_violations` (and the sharded validator)
return exactly the same answers.  Property-style sweeps over the
workload generators, wildcard patterns, and adversarial label layouts.
"""

import random

import pytest

from repro.deps import GED, ConstantLiteral, VariableLiteral
from repro.graph import Graph, random_labeled_graph
from repro.indexing import attach_index, detach_index
from repro.matching import candidate_sets, find_homomorphisms
from repro.parallel import parallel_find_violations
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import find_violations
from repro.workloads import bounded_rule_set, validation_workload


def match_set(pattern, graph):
    return {tuple(sorted(m.items())) for m in find_homomorphisms(pattern, graph)}


def with_and_without_index(pattern, graph):
    detach_index(graph)
    raw_candidates = candidate_sets(pattern, graph)
    raw_matches = match_set(pattern, graph)
    attach_index(graph)
    pruned_candidates = candidate_sets(pattern, graph)
    pruned_matches = match_set(pattern, graph)
    detach_index(graph)
    return raw_candidates, raw_matches, pruned_candidates, pruned_matches


WILDCARD_PATTERNS = [
    Pattern({"x": WILDCARD}),
    Pattern({"x": WILDCARD, "y": WILDCARD}, [("x", WILDCARD, "y")]),
    Pattern({"x": "user", "y": WILDCARD}, [("x", "buys", "y")]),
    Pattern({"x": WILDCARD, "y": "item"}, [("x", WILDCARD, "y")]),
    Pattern({"x": "user", "y": "item", "z": "shop"}, [("x", "buys", "y"), ("z", "sells", "y")]),
    Pattern({"x": "user"}, [("x", "buys", "x")]),  # self-loop
]


class TestCandidateSubsets:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_pruned_pools_are_subsets(self, seed):
        graph = validation_workload(80, rng=seed)
        for pattern in WILDCARD_PATTERNS + [g.pattern for g in bounded_rule_set()]:
            raw_c, raw_m, pruned_c, pruned_m = with_and_without_index(pattern, graph)
            for variable in pattern.variables:
                assert pruned_c[variable] <= raw_c[variable]
            assert raw_m == pruned_m

    def test_use_index_false_bypasses(self):
        graph = validation_workload(50, rng=9)
        attach_index(graph)
        pattern = bounded_rule_set()[0].pattern
        bypassed = candidate_sets(pattern, graph, use_index=False)
        detach_index(graph)
        assert bypassed == candidate_sets(pattern, graph)


class TestMatchEquality:
    @pytest.mark.parametrize("seed", list(range(6)))
    def test_random_graphs_random_patterns(self, seed):
        rng = random.Random(seed)
        graph = random_labeled_graph(
            40,
            0.12,
            node_labels=["a", "b", "c"],
            edge_labels=["r", "s"],
            rng=rng.randrange(10**6),
            attribute_names=["p", "q"],
            attribute_values=[0, 1],
            attribute_probability=0.7,
        )
        for _ in range(8):
            n_vars = rng.randint(1, 3)
            variables = [f"v{i}" for i in range(n_vars)]
            nodes = {v: rng.choice(["a", "b", "c", WILDCARD]) for v in variables}
            edges = []
            for _ in range(rng.randint(0, 3)):
                edges.append(
                    (
                        rng.choice(variables),
                        rng.choice(["r", "s", WILDCARD]),
                        rng.choice(variables),
                    )
                )
            pattern = Pattern(nodes, edges)
            _, raw_m, _, pruned_m = with_and_without_index(pattern, graph)
            assert raw_m == pruned_m

    def test_fixed_and_restrict_compose_with_index(self):
        graph = validation_workload(60, rng=4)
        pattern = bounded_rule_set()[0].pattern
        some = next(iter(graph.nodes_with_label("user")), None)
        if some is None:
            pytest.skip("workload produced no user nodes")
        detach_index(graph)
        raw = {tuple(sorted(m.items()))
               for m in find_homomorphisms(pattern, graph, fixed={"u": some})}
        attach_index(graph)
        pruned = {tuple(sorted(m.items()))
                  for m in find_homomorphisms(pattern, graph, fixed={"u": some})}
        detach_index(graph)
        assert raw == pruned


class TestViolationEquality:
    @pytest.mark.parametrize("size,seed", [(100, 13), (200, 99), (400, 13)])
    def test_find_violations_identical(self, size, seed):
        graph = validation_workload(size, rng=seed)
        sigma = bounded_rule_set()
        detach_index(graph)
        raw = find_violations(graph, sigma)
        attach_index(graph)
        indexed = find_violations(graph, sigma)
        detach_index(graph)
        assert set(raw) == set(indexed)
        assert len(raw) == len(indexed)

    def test_parallel_validation_identical_and_flagged(self):
        graph = validation_workload(150, rng=21)
        sigma = bounded_rule_set()
        detach_index(graph)
        raw = parallel_find_violations(graph, sigma, workers=3)
        attach_index(graph)
        indexed = parallel_find_violations(graph, sigma, workers=3)
        detach_index(graph)
        assert raw.violations == indexed.violations  # same deterministic order
        assert indexed.indexed and not raw.indexed

    def test_x_restriction_via_attribute_index(self):
        # A rule whose X pins an attribute value: the indexed path must
        # restrict candidates through the inverted index yet report the
        # exact same violations.
        graph = Graph()
        for i in range(20):
            graph.add_node(f"u{i}", "user", score=3 if i % 4 == 0 else 1)
        graph.add_node("i0", "item", region=1)
        for i in range(20):
            graph.add_edge(f"u{i}", "buys", "i0")
        rule = GED(
            Pattern({"x": "user", "y": "item"}, [("x", "buys", "y")]),
            [ConstantLiteral("x", "score", 3)],
            [VariableLiteral("x", "region", "y", "region")],
            name="top-scorers-share-region",
        )
        raw = find_violations(graph, [rule])
        attach_index(graph)
        indexed = find_violations(graph, [rule])
        detach_index(graph)
        assert set(raw) == set(indexed)
        assert len(raw) == 5  # u0, u4, u8, u12, u16 lack region
