"""Unit tests for the index structures themselves (build + lookups)."""

from repro.graph import Graph, GraphBuilder, random_labeled_graph
from repro.indexing import (
    attach_index,
    build_indexes,
    detach_index,
    get_index,
    has_index,
    index_stats,
    node_in_signature,
    node_out_signature,
)


def small_graph() -> Graph:
    return (
        GraphBuilder()
        .node("p1", "person", name="tony", city="oulu")
        .node("p2", "person", name="gibbo")
        .node("g1", "product", title="blaster", city="oulu")
        .edge("p1", "create", "g1")
        .edge("p2", "create", "g1")
        .edge("p1", "knows", "p2")
        .build()
    )


class TestBuild:
    def test_attribute_inverted_index(self):
        index = build_indexes(small_graph())
        assert index.nodes_with_attr_value("name", "tony") == {"p1"}
        assert index.nodes_with_attr_value("city", "oulu") == {"p1", "g1"}
        assert index.nodes_with_attr_value("name", "nobody") == set()
        assert index.has_attr["name"] == {"p1", "p2"}

    def test_degree_counters_match_graph(self):
        graph = small_graph()
        index = build_indexes(graph)
        for node_id in graph.node_ids:
            assert index.out_degree(node_id) == graph.out_degree(node_id)
            assert index.in_degree(node_id) == graph.in_degree(node_id)
        assert index.out_degree("p1", "create") == 1
        assert index.out_degree("p1", "knows") == 1
        assert index.in_degree("g1", "create") == 2
        assert index.out_degree("g1", "create") == 0

    def test_neighborhood_signatures(self):
        graph = small_graph()
        index = build_indexes(graph)
        assert index.out_pairs["p1"] == {("create", "product"), ("knows", "person")}
        assert index.in_pairs["g1"] == {("create", "person")}
        assert index.out_nbr_labels["p1"] == {"product", "person"}
        assert index.in_pairs["p1"] == set()
        # from-scratch helpers agree with the built structures
        for node_id in graph.node_ids:
            assert index.out_pairs[node_id] == node_out_signature(graph, node_id)
            assert index.in_pairs[node_id] == node_in_signature(graph, node_id)

    def test_degree_counters_on_random_graph(self):
        graph = random_labeled_graph(60, 0.1, rng=5, attribute_names=["a"])
        index = build_indexes(graph)
        for node_id in graph.node_ids:
            assert index.out_degree(node_id) == graph.out_degree(node_id)
            assert index.in_degree(node_id) == graph.in_degree(node_id)
            for label in graph.edge_labels:
                assert index.out_degree(node_id, label) == len(
                    graph.successors(node_id, label)
                )
                assert index.in_degree(node_id, label) == len(
                    graph.predecessors(node_id, label)
                )

    def test_unhashable_attribute_values_degrade_to_unknown(self):
        graph = Graph()
        graph.add_node("n1", "thing", payload=[1, 2, 3], ok=1)  # type: ignore[arg-type]
        graph.add_node("n2", "thing", ok=1)
        index = build_indexes(graph)
        assert "payload" in index.unindexable_attrs
        assert index.nodes_with_attr_value("payload", "anything") is None
        assert index.nodes_with_attr_value("ok", 1) == {"n1", "n2"}
        # probing with an unhashable value is "unknown", not a crash
        assert index.nodes_with_attr_value("ok", [1]) is None


class TestRegistry:
    def test_attach_get_detach(self):
        graph = small_graph()
        assert get_index(graph) is None
        index = attach_index(graph)
        assert get_index(graph) is index
        assert has_index(graph)
        detach_index(graph)
        assert get_index(graph) is None
        assert not has_index(graph)

    def test_registry_is_per_object(self):
        g1, g2 = small_graph(), small_graph()
        attach_index(g1)
        assert get_index(g1) is not None
        assert get_index(g2) is None

    def test_direct_mutation_invalidates(self):
        graph = small_graph()
        attach_index(graph)
        graph.add_node("p3", "person")
        assert get_index(graph) is None  # stale -> not served
        assert has_index(graph)  # but still registered
        attach_index(graph)  # rebuild re-certifies
        assert get_index(graph) is not None

    def test_set_attribute_invalidates(self):
        graph = small_graph()
        attach_index(graph)
        graph.set_attribute("p1", "name", "toni")
        assert get_index(graph) is None

    def test_idempotent_edge_does_not_invalidate(self):
        graph = small_graph()
        attach_index(graph)
        graph.add_edge("p1", "create", "g1")  # already present: no-op
        assert get_index(graph) is not None


class TestVersionCounter:
    def test_version_advances_on_effective_changes_only(self):
        graph = Graph()
        v0 = graph.version
        graph.add_node("a", "l")
        graph.add_node("b", "l")
        assert graph.version == v0 + 2
        graph.add_edge("a", "e", "b")
        v1 = graph.version
        graph.add_edge("a", "e", "b")  # duplicate: set semantics, no bump
        assert graph.version == v1
        graph.set_attribute("a", "x", 1)
        assert graph.version == v1 + 1


class TestStats:
    def test_stats_summary(self):
        graph = small_graph()
        index = attach_index(graph)
        stats = index_stats(graph, index)
        assert stats.nodes == 3
        assert stats.edges == 3
        assert stats.attr_postings >= 4
        assert stats.synced
        text = stats.summary()
        assert "3 node(s)" in text and "synced: yes" in text

    def test_stats_reports_stale(self):
        graph = small_graph()
        index = attach_index(graph)
        graph.add_node("x", "person")
        assert not index_stats(graph, index).synced
