"""CLI tests for the `index` subcommand and the `--index` flags."""

import json

import pytest

from repro import paper
from repro.cli import main
from repro.deps.io import ged_to_dict
from repro.graph import GraphBuilder
from repro.graph.io import graph_to_json


@pytest.fixture
def kb_files(tmp_path):
    dirty = (
        GraphBuilder()
        .node("fin", "country")
        .node("hel", "city", name="Helsinki")
        .node("spb", "city", name="Saint Petersburg")
        .edge("fin", "capital", "hel")
        .edge("fin", "capital", "spb")
        .build()
    )
    graph_path = tmp_path / "kb.json"
    graph_path.write_text(graph_to_json(dirty))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps([ged_to_dict(paper.phi2())]))
    return graph_path, rules_path


class TestIndexCommand:
    def test_stats_only(self, kb_files, capsys):
        graph_path, _ = kb_files
        code = main(["index", "--graph", str(graph_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 node(s)" in out
        assert "attribute index" in out
        assert "synced: yes" in out

    def test_stats_with_rules_reports_pruning(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        code = main(["index", "--graph", str(graph_path), "--rules", str(rules_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "candidate pruning" in out
        assert "->" in out

    def test_missing_graph_file_exits_2(self, tmp_path, capsys):
        code = main(["index", "--graph", str(tmp_path / "nope.json")])
        assert code == 2


class TestIndexFlags:
    def test_validate_with_index_same_verdict(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        plain = main(["validate", "--graph", str(graph_path), "--rules", str(rules_path)])
        plain_out = capsys.readouterr().out
        indexed = main(
            ["validate", "--graph", str(graph_path), "--rules", str(rules_path), "--index"]
        )
        indexed_out = capsys.readouterr().out
        assert plain == indexed == 1
        assert plain_out.splitlines()[0] == indexed_out.splitlines()[0]

    def test_pvalidate_with_index_flagged(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        code = main(
            [
                "pvalidate",
                "--graph", str(graph_path),
                "--rules", str(rules_path),
                "--workers", "2",
                "--index",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "indexed" in out
