"""Incremental index maintenance == rebuild-from-scratch.

Randomized `GraphUpdate` batches are applied through the maintenance
layer; after every batch the patched index must equal a fresh
`build_indexes` of the updated graph, structure by structure, and the
incremental/validation results must match the unindexed ones.
"""

import random

import pytest

from repro.graph import Graph
from repro.indexing import (
    IndexMaintenance,
    apply_update_indexed,
    attach_index,
    build_indexes,
    detach_index,
    get_index,
)
from repro.reasoning import find_violations
from repro.reasoning.incremental import (
    GraphUpdate,
    IncrementalLedger,
    apply_update,
    incremental_violations,
)
from repro.workloads import bounded_rule_set, validation_workload


def random_update(graph: Graph, rng: random.Random, tag: str) -> GraphUpdate:
    """A well-formed additive batch against the current graph state."""
    existing = graph.node_ids
    labels = ["user", "item", "shop"]
    new_nodes = []
    for i in range(rng.randint(0, 3)):
        attrs = {}
        if rng.random() < 0.7:
            attrs["score"] = rng.choice([1, 2, 3])
        new_nodes.append((f"n_{tag}_{i}", rng.choice(labels), attrs))
    pool = existing + [node_id for node_id, _, _ in new_nodes]
    edges = []
    for _ in range(rng.randint(0, 4)):
        edges.append(
            (rng.choice(pool), rng.choice(["buys", "sells", "rates"]), rng.choice(pool))
        )
    attrs = []
    for _ in range(rng.randint(0, 3)):
        attrs.append(
            (rng.choice(pool), rng.choice(["score", "region"]), rng.choice([1, 2, 3]))
        )
    return GraphUpdate(nodes=new_nodes, edges=edges, attrs=attrs)


class TestMaintenanceEqualsRebuild:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_randomized_batches(self, seed):
        rng = random.Random(seed)
        graph = validation_workload(60, rng=seed)
        index = attach_index(graph)
        for round_no in range(6):
            update = random_update(graph, rng, f"{seed}_{round_no}")
            apply_update(graph, update)  # routes through maintenance
            assert get_index(graph) is index, "maintenance must keep the index synced"
            assert index.snapshot() == build_indexes(graph).snapshot()
        detach_index(graph)

    def test_maintenance_report_counts(self):
        graph = Graph()
        graph.add_node("a", "user", score=1)
        graph.add_node("b", "item")
        index = attach_index(graph)
        update = GraphUpdate(
            nodes=[("c", "shop", {"region": 2})],
            edges=[("a", "buys", "b"), ("c", "sells", "b"), ("a", "buys", "b")],
            attrs=[("a", "score", 3)],
        )
        report = IndexMaintenance(graph, index).apply(update)
        assert report.nodes_added == 1
        assert report.edges_added == 2  # the duplicate edge is a no-op
        assert report.attrs_written == 1
        assert report.dirty_nodes == {"a", "b", "c"}
        assert index.snapshot() == build_indexes(graph).snapshot()

    def test_attribute_overwrite_moves_posting(self):
        graph = Graph()
        graph.add_node("a", "user", score=1)
        index = attach_index(graph)
        apply_update(graph, GraphUpdate(attrs=[("a", "score", 3)]))
        assert index.nodes_with_attr_value("score", 1) == set()
        assert index.nodes_with_attr_value("score", 3) == {"a"}

    def test_stale_index_refused(self):
        graph = Graph()
        graph.add_node("a", "user")
        index = attach_index(graph)
        graph.add_node("b", "user")  # behind the maintainer's back
        with pytest.raises(ValueError, match="stale"):
            IndexMaintenance(graph, index).apply(GraphUpdate())

    def test_apply_update_indexed_without_index_matches_plain(self):
        g1 = validation_workload(40, rng=3)
        g2 = validation_workload(40, rng=3)
        update = GraphUpdate(
            nodes=[("x1", "user", {"score": 2})], edges=[("x1", "buys", "x1")]
        )
        apply_update_indexed(g1, update)  # no index attached -> plain path
        apply_update(g2, update)
        assert g1 == g2


class TestIncrementalValidationEquality:
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_incremental_violations_indexed_vs_not(self, seed):
        rng = random.Random(seed)
        sigma = bounded_rule_set()
        indexed_graph = validation_workload(50, rng=seed)
        plain_graph = validation_workload(50, rng=seed)
        attach_index(indexed_graph)
        for round_no in range(4):
            update = random_update(indexed_graph, rng, f"{seed}_{round_no}")
            apply_update(indexed_graph, update)
            apply_update(plain_graph, update)
            assert indexed_graph == plain_graph
            got = incremental_violations(indexed_graph, sigma, update)
            want = incremental_violations(plain_graph, sigma, update)
            assert set(got) == set(want)
            # full revalidation agrees too
            assert set(find_violations(indexed_graph, sigma)) == set(
                find_violations(plain_graph, sigma)
            )
        detach_index(indexed_graph)

    @pytest.mark.parametrize("seed", [20, 21])
    def test_ledger_equivalence_under_update_stream(self, seed):
        rng = random.Random(seed)
        sigma = bounded_rule_set()
        indexed_graph = validation_workload(50, rng=seed)
        plain_graph = validation_workload(50, rng=seed)
        attach_index(indexed_graph)
        led_indexed = IncrementalLedger(indexed_graph, sigma)
        led_plain = IncrementalLedger(plain_graph, sigma)
        assert set(led_indexed.bootstrap()) == set(led_plain.bootstrap())
        for round_no in range(4):
            update = random_update(indexed_graph, rng, f"{seed}_{round_no}")
            new_indexed = led_indexed.refresh(update)
            new_plain = led_plain.refresh(update)
            assert set(new_indexed) == set(new_plain)
            assert led_indexed.known == led_plain.known
            assert get_index(indexed_graph) is not None
        detach_index(indexed_graph)
