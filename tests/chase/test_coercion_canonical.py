"""Tests for coercion graphs and canonical graphs."""

import pytest

from repro.chase import (
    EquivalenceRelation,
    canonical_graph,
    canonical_graph_of_sigma,
    coerce,
    eq_from_literals,
    representative_map,
)
from repro.deps import FALSE, ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.errors import ChaseError
from repro.graph import GraphBuilder
from repro.patterns import WILDCARD, Pattern
from repro.paper import example4_graph


class TestCoercion:
    def test_identity_coercion(self):
        g = example4_graph()
        eq = EquivalenceRelation(g)
        coerced = coerce(eq)
        assert coerced.num_nodes == g.num_nodes
        assert coerced.edges == g.edges

    def test_merging_nodes_merges_edges(self):
        g = example4_graph()
        eq = EquivalenceRelation(g)
        eq.merge_nodes("v1", "v2")
        coerced = coerce(eq)
        assert coerced.num_nodes == 3
        # The merged node v1 keeps both outgoing edges.
        assert coerced.has_edge("v1", "r", "w1")
        assert coerced.has_edge("v1", "r", "w2")

    def test_merged_attributes_and_label(self):
        g = (
            GraphBuilder()
            .node("a", WILDCARD, p=1)
            .node("b", "thing", q=2)
            .build()
        )
        eq = EquivalenceRelation(g)
        eq.merge_nodes("a", "b")
        coerced = coerce(eq)
        node = coerced.node("a")
        assert node.label == "thing"  # non-wildcard label wins (rule (c))
        assert node.get("p") == 1 and node.get("q") == 2  # union (rule (d))

    def test_all_wildcard_class_stays_wildcard(self):
        g = GraphBuilder().node("a", WILDCARD).node("b", WILDCARD).build()
        eq = EquivalenceRelation(g)
        eq.merge_nodes("a", "b")
        assert coerce(eq).node("a").label == WILDCARD

    def test_generated_attribute_without_constant_is_none(self):
        g = GraphBuilder().node("a", "v").build()
        eq = EquivalenceRelation(g)
        eq.register_attr("a", "gen")
        node = coerce(eq).node("a")
        assert node.has_attribute("gen")
        assert node.get("gen") is None

    def test_inconsistent_coercion_undefined(self):
        g = example4_graph()
        eq = EquivalenceRelation(g)
        eq.merge_nodes("w1", "w2")  # labels b vs c
        with pytest.raises(ChaseError):
            coerce(eq)

    def test_representative_map(self):
        g = example4_graph()
        eq = EquivalenceRelation(g)
        eq.merge_nodes("v2", "v1")
        mapping = representative_map(eq)
        assert mapping["v1"] == mapping["v2"] == "v1"
        assert mapping["w1"] == "w1"

    def test_self_loop_from_merged_edge(self):
        g = GraphBuilder().nodes("v", "a", "b").edge("a", "r", "b").build()
        eq = EquivalenceRelation(g)
        eq.merge_nodes("a", "b")
        assert coerce(eq).has_edge("a", "r", "a")


class TestCanonicalGraphs:
    def test_canonical_graph_of_pattern(self):
        q = Pattern({"x": "album", "y": WILDCARD}, [("x", "r", "y")])
        g = canonical_graph(q)
        assert g.nodes_with_label("album") == {"x"}
        assert g.node("y").label == WILDCARD
        assert g.has_edge("x", "r", "y")
        assert g.node("x").attributes == {}

    def test_canonical_graph_prefix(self):
        q = Pattern({"x": "a"}, [])
        g = canonical_graph(q, prefix="p:")
        assert g.has_node("p:x")

    def test_canonical_graph_of_sigma_disjoint(self):
        q = Pattern({"x": "a", "y": "b"}, [("x", "r", "y")])
        ged1 = GED(q, [], [VariableLiteral("x", "A", "y", "A")])
        ged2 = GED(q, [], [IdLiteral("x", "y")])
        g, var_maps = canonical_graph_of_sigma([ged1, ged2])
        assert g.num_nodes == 4
        assert var_maps[0]["x"] == "g0:x"
        assert var_maps[1]["x"] == "g1:x"
        assert g.has_edge("g0:x", "r", "g0:y")
        assert g.has_edge("g1:x", "r", "g1:y")


class TestEqFromLiterals:
    def graph(self):
        return GraphBuilder().node("x", "a").node("y", "b").build()

    def test_constant_literal(self):
        eq = eq_from_literals(self.graph(), [ConstantLiteral("x", "A", 1)])
        assert eq.attr_has_constant("x", "A", 1)

    def test_variable_literal(self):
        eq = eq_from_literals(self.graph(), [VariableLiteral("x", "A", "y", "B")])
        assert eq.attrs_equal("x", "A", "y", "B")

    def test_id_literal(self):
        eq = eq_from_literals(self.graph(), [IdLiteral("x", "y")])
        assert eq.nodes_equal("x", "y")
        assert not eq.is_consistent  # labels a vs b conflict

    def test_inconsistent_x(self):
        eq = eq_from_literals(
            self.graph(),
            [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)],
        )
        assert not eq.is_consistent

    def test_false_in_x_marks_inconsistent(self):
        eq = eq_from_literals(self.graph(), [FALSE])
        assert not eq.is_consistent

    def test_explicit_assignment(self):
        eq = eq_from_literals(
            self.graph(), [ConstantLiteral("v", "A", 3)], assignment={"v": "y"}
        )
        assert eq.attr_has_constant("y", "A", 3)
