"""Tests for equivalence relations Eq: closure rules (a)-(d), consistency."""

from repro.chase import EquivalenceRelation
from repro.graph import GraphBuilder
from repro.patterns import WILDCARD


def small_graph():
    return (
        GraphBuilder()
        .node("u", "a", A=1)
        .node("v", "a", A=1)
        .node("w", "b", B=2)
        .node("t", WILDCARD)
        .build()
    )


class TestInitialRelation:
    def test_eq0_loads_attribute_constants(self):
        eq = EquivalenceRelation(small_graph())
        assert eq.attr_has_constant("u", "A", 1)
        assert eq.attr_constant("w", "B") == 2
        assert eq.is_consistent

    def test_eq0_singleton_node_classes(self):
        eq = EquivalenceRelation(small_graph())
        assert eq.node_class("u") == {"u"}
        assert not eq.nodes_equal("u", "v")

    def test_missing_attribute(self):
        eq = EquivalenceRelation(small_graph())
        assert not eq.attr_exists("u", "B")
        assert eq.attr_constant("u", "B") is None
        assert not eq.attr_has_constant("u", "B", 2)


class TestAttributeClasses:
    def test_constant_sharing_merges_classes(self):
        """Rule (b): c ∈ [x.A] and c ∈ [z.C] force [x.A] = [z.C] —
        u.A and v.A both hold constant 1, so they are one class."""
        eq = EquivalenceRelation(small_graph())
        assert eq.attrs_equal("u", "A", "v", "A")
        # Distinct constants stay in distinct classes.
        assert not eq.attrs_equal("u", "A", "w", "B")
        eq.merge_attrs("u", "A", "v", "A")  # no-op, already equal
        assert eq.is_consistent

    def test_attribute_generation(self):
        eq = EquivalenceRelation(small_graph())
        eq.register_attr("u", "C")  # generated, no constant
        assert eq.attr_exists("u", "C")
        assert eq.attr_constant("u", "C") is None

    def test_generated_attr_then_constant(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_attrs("u", "C", "v", "C")
        eq.set_attr_constant("u", "C", 9)
        assert eq.attr_has_constant("v", "C", 9)

    def test_attribute_conflict(self):
        eq = EquivalenceRelation(small_graph())
        eq.set_attr_constant("u", "A", 5)  # u.A already holds 1
        assert not eq.is_consistent
        assert "attribute conflict" in eq.inconsistent_reason

    def test_conflict_via_transitivity(self):
        eq = EquivalenceRelation(small_graph())
        # [u.A] has 1, [w.B] has 2; merging them is a conflict (rule (b)).
        eq.merge_attrs("u", "A", "w", "B")
        assert not eq.is_consistent

    def test_idempotent_merges_report_no_change(self):
        eq = EquivalenceRelation(small_graph())
        assert eq.merge_attrs("u", "A", "w", "C")  # C generated on w
        assert not eq.merge_attrs("u", "A", "w", "C")
        assert not eq.set_attr_constant("u", "A", 1)


class TestNodeClasses:
    def test_merge_nodes(self):
        eq = EquivalenceRelation(small_graph())
        assert eq.merge_nodes("u", "v")
        assert eq.nodes_equal("u", "v")
        assert eq.node_class("u") == {"u", "v"}
        assert not eq.merge_nodes("u", "v")

    def test_rule_d_merges_attribute_classes(self):
        """If y ∈ [x] then [x.B] = [y.B] for every shared attribute."""
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("u", "v")
        assert eq.attrs_equal("u", "A", "v", "A")

    def test_rule_d_applies_to_later_attributes(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("u", "v")
        eq.register_attr("u", "fresh")
        # v is the same node, so v.fresh is the same class.
        assert eq.attrs_equal("u", "fresh", "v", "fresh")

    def test_label_conflict(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("u", "w")  # labels a vs b
        assert not eq.is_consistent
        assert "label conflict" in eq.inconsistent_reason

    def test_wildcard_label_is_compatible(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("u", "t")  # a vs _
        assert eq.is_consistent
        assert eq.class_labels("t") == {"a"}

    def test_transitive_node_merge_conflict(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("t", "u")  # _ + a : fine
        eq.merge_nodes("t", "w")  # now a + b : conflict
        assert not eq.is_consistent

    def test_rule_d_conflict_through_node_merge(self):
        """Merging nodes whose same-name attributes hold distinct
        constants is an attribute conflict."""
        g = GraphBuilder().node("x", "a", A=1).node("y", "a", A=2).build()
        eq = EquivalenceRelation(g)
        eq.merge_nodes("x", "y")
        assert not eq.is_consistent
        assert "attribute conflict" in eq.inconsistent_reason

    def test_representative_is_min_member(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("v", "u")
        assert eq.node_representative("v") == "u"

    def test_node_classes_listing(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("u", "v")
        classes = eq.node_classes()
        assert {"u", "v"} in classes
        assert {"w"} in classes


class TestLiteralView:
    def test_as_literals_round_trip(self):
        eq = EquivalenceRelation(small_graph())
        eq.merge_nodes("u", "v")
        eq.merge_attrs("u", "A", "w", "B")
        literals = eq.as_literals()
        kinds = {l[0] for l in literals}
        assert "id" in kinds and "const" in kinds
        assert ("id", "u", "v") in literals

    def test_element_count_grows(self):
        eq = EquivalenceRelation(small_graph())
        before = eq.element_count()
        eq.register_attr("u", "new_attr")
        assert eq.element_count() == before + 1
