"""Unit + property tests for the union-find substrate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.chase import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        uf.add("a")
        assert uf.find("a") == "a"
        assert uf.num_classes == 1

    def test_add_is_idempotent(self):
        uf = UnionFind()
        assert uf.add("a")
        assert not uf.add("a")
        assert uf.num_elements == 1

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union("a", "b") is not None
        assert uf.same("a", "b")
        assert uf.union("a", "b") is None

    def test_union_reports_winner_loser(self):
        uf = UnionFind()
        result = uf.union("a", "b")
        winner, loser = result
        assert {winner, loser} == {"a", "b"}

    def test_find_registers_lazily(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_class_of(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.add("d")
        assert uf.class_of("a") == {"a", "b", "c"}
        assert uf.class_of("d") == {"d"}

    def test_classes(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        classes = sorted(sorted(c) for c in uf.classes())
        assert classes == [["a", "b"], ["c"]]

    def test_copy_is_independent(self):
        uf = UnionFind()
        uf.union("a", "b")
        clone = uf.copy()
        clone.union("a", "c")
        assert not uf.same("a", "c")
        assert clone.same("a", "c")

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
    def test_equivalence_closure_matches_reference(self, pairs):
        """Union-find equals a naive transitive-closure reference."""
        uf = UnionFind()
        groups: list[set[int]] = []
        for a, b in pairs:
            uf.union(a, b)
            ga = next((g for g in groups if a in g), None) or {a}
            gb = next((g for g in groups if b in g), None) or {b}
            if ga is not gb:
                if ga in groups:
                    groups.remove(ga)
                if gb in groups:
                    groups.remove(gb)
                groups.append(ga | gb)
            elif ga not in groups:
                groups.append(ga)
        for a, b in pairs:
            expected = any(a in g and b in g for g in groups)
            assert uf.same(a, b) == expected
