"""Chase engine tests: Example 4 golden tests, Theorem 1 properties."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.chase import chase, eq_from_literals
from repro.deps import FALSE, ConstantLiteral, GED, IdLiteral, VariableLiteral, sigma_size
from repro.graph import GraphBuilder, graph_to_dict, random_labeled_graph
from repro.patterns import WILDCARD, Pattern


class TestExample4:
    """The paper's Example 4, step by step."""

    def test_sigma1_chase_is_valid_and_merges_v1_v2(self):
        g = paper.example4_graph()
        result = chase(g, [paper.example4_phi1()])
        assert result.consistent
        # v1 and v2 are identified; the coercion G1 has 3 nodes.
        assert result.eq.nodes_equal("v1", "v2")
        assert result.graph.num_nodes == 3
        assert result.graph.has_edge("v1", "r", "w1")
        assert result.graph.has_edge("v1", "r", "w2")

    def test_sigma2_chase_is_invalid(self):
        """Adding φ2 forces w1 and w2 (distinct labels) to merge: ⊥."""
        g = paper.example4_graph()
        result = chase(g, [paper.example4_phi1(), paper.example4_phi2()])
        assert not result.consistent
        assert "label conflict" in result.reason

    def test_sigma2_invalid_in_any_order(self):
        g = paper.example4_graph()
        sigma = [paper.example4_phi2(), paper.example4_phi1()]
        result = chase(g, sigma)
        assert not result.consistent

    def test_phi2_alone_is_valid_on_g(self):
        """Before v1/v2 merge, Q2 has no match (v1, v2 have one r-edge
        each), so φ2 alone does nothing."""
        g = paper.example4_graph()
        result = chase(g, [paper.example4_phi2()])
        assert result.consistent
        assert result.steps == []


class TestBasicChasing:
    def test_empty_sigma_returns_input(self):
        g = paper.example4_graph()
        result = chase(g, [])
        assert result.consistent
        assert result.graph.num_nodes == g.num_nodes
        assert result.steps == []

    def test_constant_literal_generation(self):
        g = GraphBuilder().node("n", "item").build()
        ged = GED(Pattern({"x": "item"}), [], [ConstantLiteral("x", "grade", "A")])
        result = chase(g, [ged])
        assert result.consistent
        assert result.eq.attr_has_constant("n", "grade", "A")
        assert result.graph.node("n").get("grade") == "A"

    def test_attribute_existence_generation(self):
        """Q[x](∅ → x.A = x.A) generates the attribute (TGD flavor)."""
        g = GraphBuilder().node("n", "item").build()
        ged = GED(Pattern({"x": "item"}), [], [VariableLiteral("x", "A", "x", "A")])
        result = chase(g, [ged])
        assert result.consistent
        assert result.eq.attr_exists("n", "A")
        assert result.graph.node("n").has_attribute("A")

    def test_unmatched_x_means_no_step(self):
        g = GraphBuilder().node("n", "item").build()
        ged = GED(
            Pattern({"x": "item"}),
            [ConstantLiteral("x", "color", "red")],  # n has no color
            [ConstantLiteral("x", "grade", "A")],
        )
        result = chase(g, [ged])
        assert result.consistent
        assert result.steps == []

    def test_generated_attribute_enables_later_step(self):
        """Attribute generation feeds later X-checks (cascading)."""
        g = GraphBuilder().node("n", "item").build()
        first = GED(Pattern({"x": "item"}), [], [ConstantLiteral("x", "color", "red")])
        second = GED(
            Pattern({"x": "item"}),
            [ConstantLiteral("x", "color", "red")],
            [ConstantLiteral("x", "grade", "A")],
        )
        result = chase(g, [second, first])  # order should not matter
        assert result.consistent
        assert result.eq.attr_has_constant("n", "grade", "A")

    def test_forbidding_constraint_invalidates(self):
        g = GraphBuilder().node("n", "item", bad=1).build()
        ged = GED(Pattern({"x": "item"}), [ConstantLiteral("x", "bad", 1)], [FALSE])
        result = chase(g, [ged])
        assert not result.consistent
        assert "forbidding" in result.reason

    def test_forbidding_constraint_with_unmatched_x_is_fine(self):
        g = GraphBuilder().node("n", "item").build()
        ged = GED(Pattern({"x": "item"}), [ConstantLiteral("x", "bad", 1)], [FALSE])
        assert chase(g, [ged]).consistent

    def test_inconsistent_initial_eq(self):
        g = GraphBuilder().node("n", "item", A=1).build()
        eq = eq_from_literals(g, [ConstantLiteral("n", "A", 2)])
        result = chase(g, [], initial_eq=eq)
        assert not result.consistent

    def test_id_merge_cascades_new_matches(self):
        """Merging nodes can create matches that did not exist before
        (Example 4's φ2 firing only after φ1 merged v1, v2)."""
        g = paper.example4_graph()
        sigma = [paper.example4_phi1(), paper.example4_phi2()]
        result = chase(g, sigma)
        # φ2's pattern matches only in the coercion after φ1's merge.
        assert any(step.ged.name == "ex4-phi2" for step in result.steps)

    def test_steps_record_match_and_literal(self):
        g = paper.example4_graph()
        result = chase(g, [paper.example4_phi1()])
        step = result.steps[0]
        assert step.ged.name == "ex4-phi1"
        assert step.literal == IdLiteral("x", "y")
        assert set(step.assignment.values()) <= {"v1", "v2"}


class TestChurchRosserAndBounds:
    """Theorem 1: finiteness, size bounds, Church-Rosser."""

    def _random_instance(self, seed: int):
        rng = random.Random(seed)
        g = random_labeled_graph(
            rng.randint(2, 5),
            0.4,
            node_labels=["a", "b"],
            edge_labels=["r"],
            rng=rng.randint(0, 999),
            attribute_names=["A", "B"],
            attribute_values=[1, 2],
        )
        sigma = []
        for _ in range(rng.randint(1, 3)):
            k = rng.randint(1, 2)
            labels = {f"x{i}": rng.choice(["a", "b", WILDCARD]) for i in range(k)}
            variables = list(labels)
            edges = []
            if k == 2 and rng.random() < 0.7:
                edges.append(("x0", "r", "x1"))
            pattern = Pattern(labels, edges)
            lits = []
            for _ in range(rng.randint(1, 2)):
                choice = rng.random()
                v1, v2 = rng.choice(variables), rng.choice(variables)
                if choice < 0.4:
                    lits.append(ConstantLiteral(v1, rng.choice(["A", "B"]), rng.choice([1, 2])))
                elif choice < 0.7:
                    lits.append(VariableLiteral(v1, "A", v2, rng.choice(["A", "B"])))
                else:
                    lits.append(IdLiteral(v1, v2))
            split = rng.randint(0, len(lits))
            sigma.append(GED(pattern, lits[:split], lits[split:]))
        return g, sigma

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_church_rosser_random_orders(self, seed):
        """All application orders agree on validity and on the result."""
        g, sigma = self._random_instance(seed)
        baseline = chase(g.copy(), sigma)
        for order_seed in (1, 2):
            other = chase(g.copy(), sigma, rng=order_seed)
            assert other.consistent == baseline.consistent
            if baseline.consistent:
                assert graph_to_dict(other.graph) == graph_to_dict(baseline.graph)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_theorem1_bounds(self, seed):
        """|Eq| ≤ 4·|G|·|Σ| and chase length ≤ 8·|G|·|Σ|."""
        g, sigma = self._random_instance(seed)
        result = chase(g.copy(), sigma)
        bound = max(1, g.size()) * max(1, sigma_size(sigma))
        assert result.eq.element_count() <= 4 * bound
        assert len(result.steps) <= 8 * bound

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_valid_result_satisfies_sigma(self, seed):
        """Theorem 1: if the chase is valid then G_Eq |= Σ (checked on
        the concretized coercion, where generated attribute classes get
        fresh distinct values)."""
        from repro.reasoning.satisfiability import concretize
        from repro.reasoning.validation import validates

        g, sigma = self._random_instance(seed)
        result = chase(g.copy(), sigma)
        if result.consistent:
            assert validates(concretize(result, sigma), sigma)
