"""Differential tests: the Σ-DAG executor vs per-rule plans vs the seed.

The acceptance bar for the shared Σ-DAG (`repro.matching.sigma_dag`) is
*byte-identity per query*: for every pattern set, graph, and parameter
combination, each query's subsequence of the shared walk must equal its
solo :meth:`~repro.matching.plan.MatchPlan.matches` stream — which the
plan suite in turn pins to the seed enumerator.  These tests compare
all three elementwise (lists of matches, not sets) over

* hypothesis-random small graphs and multi-pattern query sets,
* the committed Σ-overlapping workload,
* with and without a :mod:`repro.indexing` index attached, and
* under per-query ``fixed`` / ``restrict`` / ``limit`` — including
  duplicate patterns sharing one leaf.

The backend sweep then pins the Σ-batched ``find_violations`` to every
parallel backend, and the last tests cover the two satellite carriers:
snapshot-broadcast Σ pre-compilation and the streaming kernel's
pin-stream replay.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import shutdown_pools
from repro.graph import random_labeled_graph
from repro.indexing import attach_index, detach_index
from repro.matching import count_matches, seed_find_homomorphisms
from repro.matching.plan import compile_plan
from repro.matching.sigma_dag import SigmaQuery, compile_sigma, count_sigma
from repro.parallel import parallel_find_violations
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import find_violations
from repro.telemetry import metrics
from repro.workloads import overlapping_rule_set, overlapping_workload
from repro.workloads.overlapping import TRI_SKELETON

BACKENDS = ("serial", "thread", "process", "engine", "fragment")


@st.composite
def sigma_case(draw):
    """Random graph + 1–3 patterns + per-query (fixed, restrict, limit).

    Small label alphabets make equal patterns (shared leaves) and equal
    prefixes (shared interior nodes) likely rather than contrived.
    """
    node_labels = ["a", "b"]
    edge_labels = ["r", "s"]
    n = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_labeled_graph(n, 0.45, node_labels, edge_labels, rng=seed)
    node_ids = list(graph.node_ids)

    queries = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        k = draw(st.integers(min_value=1, max_value=3))
        labels = {
            f"x{i}": draw(st.sampled_from(node_labels + [WILDCARD])) for i in range(k)
        }
        variables = list(labels)
        edges = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            edges.append(
                (
                    draw(st.sampled_from(variables)),
                    draw(st.sampled_from(edge_labels + [WILDCARD])),
                    draw(st.sampled_from(variables)),
                )
            )
        pattern = Pattern(labels, edges)
        restrict = None
        if draw(st.booleans()):
            restrict = {}
            for variable in draw(st.sets(st.sampled_from(variables), max_size=k)):
                restrict[variable] = set(
                    draw(st.sets(st.sampled_from(node_ids), max_size=len(node_ids)))
                )
        fixed = None
        if draw(st.booleans()):
            fixed = {draw(st.sampled_from(variables)): draw(st.sampled_from(node_ids))}
        limit = draw(st.sampled_from([None, 0, 1, 2, 5]))
        queries.append(SigmaQuery(pattern, fixed=fixed, restrict=restrict, limit=limit))
    use_index = draw(st.booleans())
    return graph, queries, use_index


class TestHypothesisByteIdentity:
    @settings(max_examples=150, deadline=None)
    @given(sigma_case())
    def test_per_query_streams_equal_plan_and_seed(self, case):
        graph, queries, use_index = case
        if use_index:
            attach_index(graph)
        try:
            dag = compile_sigma(graph, [q.pattern for q in queries])
            streams = dag.execute(queries)
            for query, stream in zip(queries, streams):
                solo = list(
                    compile_plan(graph, query.pattern).matches(
                        fixed=query.fixed, restrict=query.restrict, limit=query.limit
                    )
                )
                assert stream == solo  # elementwise: same matches, same order
                assert stream == list(
                    seed_find_homomorphisms(
                        query.pattern,
                        graph,
                        fixed=query.fixed,
                        restrict=query.restrict,
                        limit=query.limit,
                    )
                )
        finally:
            detach_index(graph)

    @settings(max_examples=80, deadline=None)
    @given(sigma_case())
    def test_count_sigma_equals_per_pattern_counting(self, case):
        graph, queries, use_index = case
        patterns = [q.pattern for q in queries]
        if use_index:
            attach_index(graph)
        try:
            assert count_sigma(graph, patterns) == [
                count_matches(pattern, graph) for pattern in patterns
            ]
        finally:
            detach_index(graph)


class TestWorkloadByteIdentity:
    def test_whole_set_execute_equals_per_rule_plans(self):
        graph = overlapping_workload(120, rng=3)
        sigma = overlapping_rule_set(6)
        patterns = [ged.pattern for ged in sigma]
        for indexed in (False, True):
            if indexed:
                attach_index(graph)
            try:
                dag = compile_sigma(graph, patterns)
                streams = dag.execute()
                assert len(streams) == len(dag.patterns) < len(patterns)  # deduped
                for pattern, stream in zip(dag.patterns, streams):
                    assert stream == list(compile_plan(graph, pattern).matches())
                    assert stream  # the workload must actually exercise the DAG
            finally:
                detach_index(graph)

    def test_duplicate_patterns_share_one_leaf(self):
        graph = overlapping_workload(80, rng=1)
        patterns = [TRI_SKELETON, TRI_SKELETON, TRI_SKELETON]
        counts = count_sigma(graph, patterns)
        assert counts == [count_matches(TRI_SKELETON, graph)] * 3

    def test_grouped_duplicate_queries_keep_solo_semantics(self):
        """Two queries over one pattern (the grouped-validation shape):
        each subsequence is that query's solo stream, limits applied
        per query."""
        graph = overlapping_workload(80, rng=1)
        dag = compile_sigma(graph, [TRI_SKELETON])
        solo = list(compile_plan(graph, TRI_SKELETON).matches())
        streams = dag.execute(
            [SigmaQuery(TRI_SKELETON), SigmaQuery(TRI_SKELETON, limit=3)]
        )
        assert streams[0] == solo
        assert streams[1] == solo[:3]


class TestBackendByteIdentity:
    """The Σ-batched ``find_violations`` against every parallel backend."""

    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        yield
        shutdown_pools()

    @pytest.mark.parametrize("indexed", [False, True])
    def test_all_backends_identical_on_overlapping_sigma(self, indexed):
        graph = overlapping_workload(120, rng=3)
        sigma = overlapping_rule_set(6)
        if indexed:
            attach_index(graph)
        else:
            detach_index(graph)
        reference = sorted(
            find_violations(graph, sigma),
            key=lambda v: (v.ged.name or "", str(v.ged), v.match),
        )
        assert reference  # the workload must produce violations to compare
        for backend in BACKENDS:
            report = parallel_find_violations(
                graph, sigma, workers=3, backend=backend
            )
            assert report.violations == reference, f"{backend} diverged"


class TestSatelliteCarriers:
    def test_snapshot_broadcast_precompiles_the_sigma_dag(self):
        from repro.engine.snapshot import snapshot_graph

        graph = overlapping_workload(60, rng=1)
        sigma = overlapping_rule_set(4)
        snapshot = snapshot_graph(graph, patterns=[ged.pattern for ged in sigma])
        assert snapshot.sigma_sets  # the deduplicated set rides the broadcast
        with metrics.collecting() as registry:
            restored = snapshot.restore()
            counters = registry.snapshot()["counters"]
        assert counters.get("matching.sigma.installs") == 1
        assert counters.get("matching.sigma.compiles") == 1
        # The worker-side DAG answers the Σ scan identically.
        assert find_violations(restored, sigma) == find_violations(graph, sigma)

    def test_delta_kernel_replays_pin_streams_across_rules(self):
        from repro.streaming import delta_violations

        graph = overlapping_workload(80, rng=2)
        sigma = overlapping_rule_set(6)
        touched = sorted(graph.node_ids)[:5]
        with metrics.collecting() as registry:
            first = delta_violations(graph, sigma, touched)
            counters = registry.snapshot()["counters"]
        # Literal variants over one skeleton replay the memoized stream
        # instead of re-running the ball search...
        assert counters.get("matching.sigma.stream_reuse", 0) > 0
        # ...and replays are invisible in the output: a fresh call (new
        # memo) reports the identical tagged violations.
        assert delta_violations(graph, sigma, touched) == first
