"""Brute-force homomorphism enumeration, used as a testing oracle.

Checks every assignment in the full cartesian product — exponential, but
obviously correct, which is the point of an oracle.
"""

from __future__ import annotations

from itertools import product

from repro.graph.graph import Graph
from repro.matching.homomorphism import Match
from repro.patterns.labels import WILDCARD, matches
from repro.patterns.pattern import Pattern


def brute_force_homomorphisms(pattern: Pattern, graph: Graph) -> list[Match]:
    """All matches of ``pattern`` in ``graph`` by exhaustive enumeration."""
    variables = list(pattern.variables)
    node_ids = list(graph.node_ids)
    results: list[Match] = []
    for images in product(node_ids, repeat=len(variables)):
        mapping = dict(zip(variables, images))
        if _is_match(pattern, graph, mapping):
            results.append(mapping)
    return results


def _is_match(pattern: Pattern, graph: Graph, mapping: Match) -> bool:
    for variable in pattern.variables:
        if not matches(pattern.label_of(variable), graph.node(mapping[variable]).label):
            return False
    for source, edge_label, target in pattern.edges:
        h_s, h_t = mapping[source], mapping[target]
        if edge_label == WILDCARD:
            if h_t not in graph.successors(h_s):
                return False
        elif not graph.has_edge(h_s, edge_label, h_t):
            return False
    return True
