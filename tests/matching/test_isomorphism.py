"""Tests for the injective matcher and the Section 3 semantics comparison."""

from repro.graph import GraphBuilder, complete_graph
from repro.matching import (
    count_injective_matches,
    count_matches,
    find_injective_matches,
    has_injective_match,
)
from repro.patterns import Pattern


class TestInjectiveMatching:
    def test_injective_excludes_collapsing_matches(self):
        g = GraphBuilder().node("a", "v").edge("a", "r", "a").build()
        q = Pattern({"x": "v", "y": "v"}, [("x", "r", "y")])
        assert count_matches(q, g) == 1
        assert count_injective_matches(q, g) == 0

    def test_injective_subset_of_homomorphisms(self):
        q = Pattern({"x": "v", "y": "v"}, [("x", "adj", "y")])
        g = complete_graph(3)
        hom = count_matches(q, g)
        inj = count_injective_matches(q, g)
        assert inj <= hom
        assert inj == 6 and hom == 6  # K3 has no self-loops: equal here

    def test_limit(self):
        q = Pattern({"x": "v"}, [])
        g = complete_graph(4)
        assert len(list(find_injective_matches(q, g, limit=2))) == 2

    def test_section3_gkey_motivation(self):
        """Reproduces the Section 3 argument: under injective semantics a
        GKey pattern made of two copies can never map both copies onto
        the *same* entity, so duplicate detection is impossible when the
        duplicate IS the same node; homomorphism semantics allows it."""
        # One album entity and its artist.
        g = (
            GraphBuilder()
            .node("alb", "album", title="Bleach")
            .node("art", "artist", name="Nirvana")
            .edge("alb", "primary_artist", "art")
            .build()
        )
        # Pattern: album--primary_artist-->artist composed with a copy.
        q_one = Pattern(
            {"x": "album", "xp": "artist"}, [("x", "primary_artist", "xp")]
        )
        q_copy, _ = q_one.renamed_copy("2")
        q = q_one.compose(q_copy)
        # Homomorphism: both copies can map onto the single album.
        from repro.matching import has_match

        assert has_match(q, g)
        # Injective: impossible — would need two distinct albums/artists.
        assert not has_injective_match(q, g)
