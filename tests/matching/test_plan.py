"""Unit tests for the interned view / compiled plan layers.

Covers the pieces the differential suite treats as a black box: the
canonical interning and CSR structure of :class:`GraphView`, plan
caching and version-based invalidation, the explain rendering and CLI
subcommand, compiled-plan reuse inside engine workers, plan shipping in
snapshot broadcasts, and the pattern-program cache the streaming delta
kernel leans on.
"""

import pytest

from repro.engine import pool as engine_pool
from repro.engine.snapshot import snapshot_graph
from repro.engine.scheduler import plan_tasks
from repro.graph import GraphBuilder
from repro.indexing import attach_index, detach_index
from repro.matching import compile_plan, find_homomorphisms, get_view
from repro.matching.plan import program_cache_info
from repro.matching.view import build_view, peek_view
from repro.patterns import WILDCARD, Pattern
from repro.workloads import bounded_rule_set, validation_workload


def diamond_graph():
    return (
        GraphBuilder()
        .node("d", "shop")
        .node("b", "user", score=1)
        .node("a", "user")
        .node("c", "item")
        .edge("a", "buys", "c")
        .edge("b", "buys", "c")
        .edge("d", "sells", "c")
        .edge("d", "sells", "d")  # self-loop
        .build()
    )


class TestGraphView:
    def test_canonical_interning(self):
        graph = diamond_graph()
        view = build_view(graph)
        assert view.node_of == ("a", "b", "c", "d")  # sorted, not insertion, order
        assert [view.slot_of[n] for n in view.node_of] == [0, 1, 2, 3]
        assert set(view.labels) == {"user", "item", "shop"}
        assert view.pools_by_label["user"] == (0, 1)

    def test_csr_rows_match_graph_adjacency(self):
        graph = diamond_graph()
        view = build_view(graph)
        for node_id in graph.node_ids:
            slot = view.slot_of[node_id]
            for label in graph.edge_labels | {"absent"}:
                expected = {view.slot_of[t] for t in graph.successors(node_id, label)}
                assert view.row_set(True, label, slot) == expected
                assert view.degree(True, label, slot) == graph.out_degree(node_id, label)
                expected_in = {
                    view.slot_of[s] for s in graph.predecessors(node_id, label)
                }
                assert view.row_set(False, label, slot) == expected_in
            # Wildcard (any-label) rows are the deduplicated unions.
            assert view.row_set(True, None, slot) == {
                view.slot_of[t] for t in graph.successors(node_id)
            }
            assert view.row_set(False, None, slot) == {
                view.slot_of[s] for s in graph.predecessors(node_id)
            }

    def test_view_cached_and_invalidated_by_version(self):
        graph = diamond_graph()
        view = get_view(graph)
        assert get_view(graph) is view
        assert peek_view(graph) is view
        graph.add_node("e", "user")
        assert peek_view(graph) is None  # stale view is never handed out
        fresh = get_view(graph)
        assert fresh is not view
        assert "e" in fresh.slot_of


class TestPlanCaching:
    def test_plan_reused_until_mutation(self):
        graph = diamond_graph()
        pattern = Pattern({"u": "user", "i": "item"}, [("u", "buys", "i")])
        plan = compile_plan(graph, pattern)
        assert compile_plan(graph, pattern) is plan
        assert get_view(graph).plan_compiles == 1
        graph.set_attribute("a", "score", 2)  # version bump
        assert compile_plan(graph, pattern) is not plan

    def test_plan_keyed_by_index_attachment(self):
        graph = diamond_graph()
        pattern = Pattern({"u": "user", "i": "item"}, [("u", "buys", "i")])
        unindexed = compile_plan(graph, pattern)
        attach_index(graph)
        try:
            indexed = compile_plan(graph, pattern)
            assert indexed is not unindexed
            assert indexed.indexed and not unindexed.indexed
            # Same view either way: attaching an index mutates nothing.
            assert indexed.view is unindexed.view
        finally:
            detach_index(graph)

    def test_self_loop_and_wildcard_steps(self):
        graph = diamond_graph()
        loop = Pattern({"x": "shop"}, [("x", "sells", "x")])
        assert list(find_homomorphisms(loop, graph)) == [{"x": "d"}]
        any_edge = Pattern({"x": WILDCARD, "y": WILDCARD}, [("x", WILDCARD, "y")])
        matches = list(find_homomorphisms(any_edge, graph))
        assert {(m["x"], m["y"]) for m in matches} == {
            ("a", "c"),
            ("b", "c"),
            ("d", "c"),
            ("d", "d"),
        }

    def test_explain_mentions_steps_and_pools(self):
        graph = diamond_graph()
        pattern = Pattern({"u": "user", "i": "item"}, [("u", "buys", "i")])
        text = compile_plan(graph, pattern).explain()
        assert "step 1: scan" in text
        assert "step 2: extend" in text
        assert "pool" in text and "est." in text


class TestPlanShipping:
    def test_snapshot_ships_installable_plans(self):
        graph = validation_workload(80, rng=3)
        sigma = bounded_rule_set()
        patterns = [ged.pattern for ged in sigma]
        snapshot = snapshot_graph(graph, patterns=patterns)
        assert len(snapshot.plan_pools) == len(patterns)
        restored = snapshot.restore()
        view = get_view(restored)
        assert view.plan_installs == len(patterns)
        assert view.plan_compiles == 0
        for pattern in patterns:
            assert list(find_homomorphisms(pattern, restored)) == list(
                find_homomorphisms(pattern, graph)
            )
        # The shipped plans were used, not recompiled.
        assert view.plan_compiles == 0

    def test_worker_entrypoint_reuses_plans_across_batches(self):
        """Drive the engine worker entry points in-process: the second
        batch must hit the warm plan cache, not recompile."""
        graph = validation_workload(80, rng=3)
        sigma = bounded_rule_set()
        units = plan_tasks(graph, sigma, 2)
        snapshot = snapshot_graph(graph, patterns=[ged.ged.pattern for ged in units])
        saved = engine_pool._WORKER_GRAPH
        try:
            engine_pool._initialize_worker(snapshot.payload())
            worker_graph = engine_pool._worker_graph()
            first = engine_pool._validate_batch(tuple(units))
            view = get_view(worker_graph)
            compiles_after_first = view.plan_compiles + view.plan_installs
            second = engine_pool._validate_batch(tuple(units))
            assert view.plan_compiles + view.plan_installs == compiles_after_first
            assert [v for v, _ in first] == [v for v, _ in second]
        finally:
            engine_pool._WORKER_GRAPH = saved


class TestProgramCache:
    def test_delta_kernel_reuses_pattern_programs(self):
        from repro.streaming.delta import delta_violations

        graph = validation_workload(80, rng=3)
        sigma = bounded_rule_set()
        touched = list(graph.node_ids)[:6]
        delta_violations(graph, sigma, touched)
        primed = program_cache_info()
        delta_violations(graph, sigma, touched)
        after = program_cache_info()
        assert after.misses == primed.misses  # second sweep compiled nothing new
        assert after.hits > primed.hits


class TestDegreeAccessors:
    def test_per_label_degrees(self):
        graph = diamond_graph()
        assert graph.out_degree("d") == 2
        assert graph.out_degree("d", "sells") == 2
        assert graph.out_degree("d", "buys") == 0
        assert graph.in_degree("c", "buys") == 2
        assert graph.in_degree("c", "sells") == 1
        assert graph.in_degree("c", "absent") == 0

    def test_rows_are_live_and_copyless(self):
        graph = diamond_graph()
        assert graph.out_row("a", "buys") is graph.out_row("a", "buys")
        assert graph.out_row("a", "nope") == frozenset()
        assert graph.in_row("c", "buys") == {"a", "b"}
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            graph.out_row("ghost", "buys")


class TestCliExplain:
    def test_explain_subcommand(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.deps.io import ged_to_dict
        from repro.graph.io import graph_to_json

        graph = validation_workload(40, rng=2)
        graph_path = tmp_path / "g.json"
        rules_path = tmp_path / "r.json"
        graph_path.write_text(graph_to_json(graph))
        rules_path.write_text(
            json.dumps([ged_to_dict(ged) for ged in bounded_rule_set()])
        )
        code = main(
            ["explain", "--graph", str(graph_path), "--rules", str(rules_path), "--index"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "match plan for Q[" in out
        assert "attr-filter" in out
        assert "indexed pools" in out
