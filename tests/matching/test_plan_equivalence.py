"""Differential tests: the plan executor vs the seed enumerator.

The acceptance bar for the plan-compiled core is *byte-identity*: for
every pattern, graph, and parameter combination, the new executor must
yield the seed matcher's exact stream — same matches, same order, same
prefixes under ``limit``.  These tests compare the two elementwise
(lists of matches, not sets) over

* hypothesis-random small graphs and patterns,
* the random-graph validation workload and the social workload,
* with and without a :mod:`repro.indexing` index attached, and
* under ``fixed`` / ``restrict`` / ``limit`` / caller-supplied
  candidate pools.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import random_labeled_graph
from repro.indexing import attach_index, detach_index
from repro.matching import find_homomorphisms, seed_find_homomorphisms
from repro.matching.candidates import candidate_sets
from repro.patterns import WILDCARD, Pattern
from repro.reasoning.validation import (
    Violation,
    evaluate_match,
    find_violations,
    x_literal_restrictions,
)
from repro.workloads import (
    bounded_rule_set,
    synthetic_social_network,
    validation_workload,
)


def streams_equal(pattern, graph, **kwargs):
    fast = list(find_homomorphisms(pattern, graph, **kwargs))
    slow = list(seed_find_homomorphisms(pattern, graph, **kwargs))
    assert fast == slow  # elementwise: same matches, same order
    return fast


@st.composite
def graph_pattern_params(draw):
    """Random graph + pattern + (restrict, fixed, limit) parameters."""
    node_labels = ["a", "b"]
    edge_labels = ["r", "s"]
    n = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_labeled_graph(n, 0.45, node_labels, edge_labels, rng=seed)
    k = draw(st.integers(min_value=1, max_value=3))
    labels = {f"x{i}": draw(st.sampled_from(node_labels + [WILDCARD])) for i in range(k)}
    variables = list(labels)
    edges = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        edges.append(
            (
                draw(st.sampled_from(variables)),
                draw(st.sampled_from(edge_labels + [WILDCARD])),
                draw(st.sampled_from(variables)),
            )
        )
    pattern = Pattern(labels, edges)

    node_ids = list(graph.node_ids)
    restrict = None
    if draw(st.booleans()):
        restrict = {}
        for variable in draw(st.sets(st.sampled_from(variables), max_size=k)):
            restrict[variable] = set(
                draw(st.sets(st.sampled_from(node_ids), max_size=len(node_ids)))
            )
    fixed = None
    if draw(st.booleans()):
        fixed = {draw(st.sampled_from(variables)): draw(st.sampled_from(node_ids))}
    limit = draw(st.sampled_from([None, 0, 1, 2, 5]))
    use_index = draw(st.booleans())
    return graph, pattern, restrict, fixed, limit, use_index


class TestHypothesisByteIdentity:
    @settings(max_examples=200, deadline=None)
    @given(graph_pattern_params())
    def test_stream_identity(self, case):
        graph, pattern, restrict, fixed, limit, use_index = case
        if use_index:
            attach_index(graph)
        try:
            streams_equal(
                pattern, graph, restrict=restrict, fixed=fixed, limit=limit
            )
        finally:
            detach_index(graph)

    @settings(max_examples=80, deadline=None)
    @given(graph_pattern_params())
    def test_caller_pool_identity(self, case):
        """Pool mode (caller candidates) matches the seed given the
        same pools — the streaming delta kernel's configuration."""
        graph, pattern, restrict, _fixed, limit, _ = case
        pools = candidate_sets(pattern, graph, use_index=False)
        fast = list(
            find_homomorphisms(
                pattern, graph, candidates=pools, restrict=restrict, limit=limit
            )
        )
        slow = list(
            seed_find_homomorphisms(
                pattern, graph, candidates=pools, restrict=restrict, limit=limit
            )
        )
        assert fast == slow

    @settings(max_examples=60, deadline=None)
    @given(graph_pattern_params())
    def test_limit_is_a_prefix(self, case):
        graph, pattern, restrict, fixed, limit, _ = case
        full = list(find_homomorphisms(pattern, graph, restrict=restrict, fixed=fixed))
        if limit:  # limit=0 is no prefix (seed stops at the first branch)
            head = list(
                find_homomorphisms(
                    pattern, graph, restrict=restrict, fixed=fixed, limit=limit
                )
            )
            assert head == full[:limit]

    def test_limit_zero_stops_at_first_fruitless_branch(self):
        """Degenerate limit<=0: the seed checks the limit after every
        branch, not just after yields — a fruitless first branch stops
        the whole enumeration before anything is emitted.  Regression
        for the executor's matching behavior."""
        from repro.graph import GraphBuilder

        graph = (
            GraphBuilder()
            .node("a1", "a")
            .node("a2", "a")
            .node("b1", "b")
            .edge("b1", "r", "a2")
            .edge("a2", "s", "a2")
            .build()
        )
        pattern = Pattern(
            {"v0": "a", "v1": "a", "v2": "b"},
            [("v2", WILDCARD, "v0"), ("v0", "s", "v1")],
        )
        for limit in (0, -1):
            streams_equal(pattern, graph, limit=limit)


def _workload_patterns():
    patterns = [ged.pattern for ged in bounded_rule_set()]
    patterns.append(
        Pattern(
            {"u": "user", "i": "item", "s": "shop"},
            [("u", "buys", "i"), ("s", "sells", "i")],
        )
    )
    patterns.append(Pattern({"x": WILDCARD, "y": "item"}, [("x", WILDCARD, "y")]))
    return patterns


class TestWorkloadByteIdentity:
    def test_random_graph_workload(self):
        graph = validation_workload(150, rng=7)
        for indexed in (False, True):
            if indexed:
                attach_index(graph)
            try:
                for pattern in _workload_patterns():
                    matches = streams_equal(pattern, graph)
                    assert matches  # the workload must actually exercise the search
                    node = matches[0][pattern.variables[0]]
                    streams_equal(pattern, graph, fixed={pattern.variables[0]: node})
                    streams_equal(
                        pattern,
                        graph,
                        restrict={pattern.variables[-1]: set(list(graph.node_ids)[::2])},
                    )
                    streams_equal(pattern, graph, limit=3)
            finally:
                detach_index(graph)

    def test_social_workload(self):
        graph, _truth = synthetic_social_network(rng=5)
        q5ish = Pattern(
            {"x": "account", "x2": "account", "y": "blog", "z": "blog"},
            [("x", "like", "y"), ("x2", "like", "y"), ("x", "post", "z")],
        )
        for indexed in (False, True):
            if indexed:
                attach_index(graph)
            try:
                matches = streams_equal(q5ish, graph)
                assert matches
                streams_equal(q5ish, graph, limit=4)
                streams_equal(
                    q5ish, graph, restrict={"y": set(list(graph.node_ids)[::3])}
                )
            finally:
                detach_index(graph)

    def test_validation_equals_seed_interpreter(self):
        """find_violations (plan-executed) == the seed interpretation,
        with and without an index — the perf gate's correctness half."""
        graph = validation_workload(150, rng=7)
        sigma = bounded_rule_set()

        def seed_violations():
            found = []
            for ged in sigma:
                restrict = x_literal_restrictions(graph, ged)
                for match in seed_find_homomorphisms(
                    ged.pattern, graph, restrict=restrict
                ):
                    failed = evaluate_match(graph, ged, match)
                    if failed:
                        found.append(
                            Violation(ged, tuple(sorted(match.items())), failed)
                        )
            return found

        for indexed in (False, True):
            if indexed:
                attach_index(graph)
            try:
                assert find_violations(graph, sigma) == seed_violations()
            finally:
                detach_index(graph)
