"""Unit + property tests for the homomorphism matcher."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import PatternError
from repro.graph import Graph, GraphBuilder, complete_graph, cycle_graph, random_labeled_graph
from repro.matching import (
    count_matches,
    find_homomorphisms,
    find_match,
    has_match,
    is_homomorphism,
)
from repro.patterns import WILDCARD, Pattern

from tests.matching.brute import brute_force_homomorphisms


def person_product_graph() -> Graph:
    return (
        GraphBuilder()
        .node("p1", "person", name="tony")
        .node("p2", "person", name="gibbo")
        .node("g1", "product", title="blaster")
        .edge("p1", "create", "g1")
        .edge("p2", "create", "g1")
        .build()
    )


class TestBasicMatching:
    def test_all_matches_found(self):
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        matches = list(find_homomorphisms(q, person_product_graph()))
        assert len(matches) == 2
        assert {m["x"] for m in matches} == {"p1", "p2"}
        assert all(m["y"] == "g1" for m in matches)

    def test_no_match_when_label_absent(self):
        q = Pattern({"x": "alien"}, [])
        assert not has_match(q, person_product_graph())

    def test_no_match_when_edge_absent(self):
        q = Pattern({"x": "product", "y": "person"}, [("x", "create", "y")])
        assert not has_match(q, person_product_graph())

    def test_edge_label_must_match(self):
        q = Pattern({"x": "person", "y": "product"}, [("x", "destroy", "y")])
        assert not has_match(q, person_product_graph())

    def test_wildcard_node_label(self):
        q = Pattern({"x": WILDCARD}, [])
        assert count_matches(q, person_product_graph()) == 3

    def test_wildcard_edge_label(self):
        g = person_product_graph()
        g.add_edge("p1", "like", "g1")
        q = Pattern({"x": "person", "y": "product"}, [("x", WILDCARD, "y")])
        # Wildcard edges count matches, not edges: p1 and p2 each match once.
        assert count_matches(q, g) == 2

    def test_homomorphism_not_injective(self):
        # Both pattern variables may map to the same node.
        g = GraphBuilder().node("a", "v").edge("a", "r", "a").build()
        q = Pattern({"x": "v", "y": "v"}, [("x", "r", "y")])
        matches = list(find_homomorphisms(q, g))
        assert matches == [{"x": "a", "y": "a"}]

    def test_triangle_pattern_in_k3(self):
        q = Pattern(
            {"a": "v", "b": "v", "c": "v"},
            [("a", "adj", "b"), ("b", "adj", "c"), ("c", "adj", "a")],
        )
        # In K3 all 6 cyclic assignments of distinct corners match.
        assert count_matches(q, complete_graph(3)) == 6

    def test_odd_cycle_has_no_hom_to_k2(self):
        q = Pattern(
            {f"v{i}": "v" for i in range(5)},
            [(f"v{i}", "adj", f"v{(i + 1) % 5}") for i in range(5)]
            + [(f"v{(i + 1) % 5}", "adj", f"v{i}") for i in range(5)],
        )
        assert not has_match(q, complete_graph(2))
        assert has_match(q, complete_graph(3))

    def test_even_cycle_has_hom_to_k2(self):
        q = Pattern(
            {f"v{i}": "v" for i in range(4)},
            [(f"v{i}", "adj", f"v{(i + 1) % 4}") for i in range(4)]
            + [(f"v{(i + 1) % 4}", "adj", f"v{i}") for i in range(4)],
        )
        assert has_match(q, complete_graph(2))


class TestFixedAndLimit:
    def test_fixed_assignment_restricts(self):
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        matches = list(find_homomorphisms(q, person_product_graph(), fixed={"x": "p1"}))
        assert matches == [{"x": "p1", "y": "g1"}]

    def test_fixed_to_impossible_node(self):
        q = Pattern({"x": "person"}, [])
        assert find_match(q, person_product_graph(), fixed={"x": "g1"}) is None

    def test_fixed_unknown_variable_raises(self):
        q = Pattern({"x": "person"}, [])
        with pytest.raises(PatternError):
            list(find_homomorphisms(q, person_product_graph(), fixed={"z": "p1"}))

    def test_fixed_unknown_node_raises(self):
        q = Pattern({"x": "person"}, [])
        with pytest.raises(PatternError):
            list(find_homomorphisms(q, person_product_graph(), fixed={"x": "nope"}))

    def test_limit(self):
        q = Pattern({"x": WILDCARD}, [])
        assert len(list(find_homomorphisms(q, person_product_graph(), limit=2))) == 2

    def test_deterministic_order(self):
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        a = list(find_homomorphisms(q, person_product_graph()))
        b = list(find_homomorphisms(q, person_product_graph()))
        assert a == b


class TestIsHomomorphismChecker:
    def test_accepts_valid(self):
        q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        assert is_homomorphism(q, person_product_graph(), {"x": "p1", "y": "g1"})

    def test_rejects_wrong_domain(self):
        q = Pattern({"x": "person"}, [])
        assert not is_homomorphism(q, person_product_graph(), {})
        assert not is_homomorphism(q, person_product_graph(), {"x": "p1", "y": "g1"})

    def test_rejects_label_violation(self):
        q = Pattern({"x": "person"}, [])
        assert not is_homomorphism(q, person_product_graph(), {"x": "g1"})

    def test_rejects_missing_edge(self):
        q = Pattern({"x": "person", "y": "person"}, [("x", "create", "y")])
        assert not is_homomorphism(q, person_product_graph(), {"x": "p1", "y": "p2"})

    def test_rejects_unknown_node(self):
        q = Pattern({"x": "person"}, [])
        assert not is_homomorphism(q, person_product_graph(), {"x": "ghost"})


@st.composite
def small_graph_and_pattern(draw):
    """Random small graph + random small pattern over shared vocabulary."""
    node_labels = ["a", "b"]
    edge_labels = ["r", "s"]
    n = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_labeled_graph(n, 0.4, node_labels, edge_labels, rng=seed)
    k = draw(st.integers(min_value=1, max_value=3))
    labels = {f"x{i}": draw(st.sampled_from(node_labels + [WILDCARD])) for i in range(k)}
    num_edges = draw(st.integers(min_value=0, max_value=3))
    edges = []
    variables = list(labels)
    for _ in range(num_edges):
        s = draw(st.sampled_from(variables))
        t = draw(st.sampled_from(variables))
        l = draw(st.sampled_from(edge_labels + [WILDCARD]))
        edges.append((s, l, t))
    return graph, Pattern(labels, edges)


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(small_graph_and_pattern())
    def test_matcher_equals_brute_force(self, case):
        graph, pattern = case
        fast = {tuple(sorted(m.items())) for m in find_homomorphisms(pattern, graph)}
        slow = {tuple(sorted(m.items())) for m in brute_force_homomorphisms(pattern, graph)}
        assert fast == slow

    def test_cycle_pattern_count_in_k4(self):
        q = Pattern(
            {"a": "v", "b": "v"},
            [("a", "adj", "b"), ("b", "adj", "a")],
        )
        # Ordered pairs of distinct nodes in K4: 4*3 = 12.
        assert count_matches(q, complete_graph(4)) == 12

    def test_path_pattern_in_cycle(self):
        q = Pattern(
            {"a": "v", "b": "v", "c": "v"},
            [("a", "adj", "b"), ("b", "adj", "c")],
        )
        g = cycle_graph(4)
        fast = count_matches(q, g)
        slow = len(brute_force_homomorphisms(q, g))
        assert fast == slow
