"""Integration: every example script runs to completion.

The examples contain their own assertions (detection scores, merge
expectations), so a clean exit is a real end-to-end check.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    # The scripts import repro from the src layout; make it importable
    # regardless of whether the invoking pytest exported PYTHONPATH.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"
