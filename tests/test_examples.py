"""Integration: every example script runs to completion.

The examples contain their own assertions (detection scores, merge
expectations), so a clean exit is a real end-to-end check.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"
