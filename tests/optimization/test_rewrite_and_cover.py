"""Tests for predicate pruning, constant propagation, and rule covers."""

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral
from repro.optimization.cover import compute_cover, structural_dedup
from repro.optimization.rewrite import implied_constants, prune_condition
from repro.patterns.pattern import Pattern
from repro.reasoning.implication import implies


def create_pattern() -> Pattern:
    return Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])


class TestPruneCondition:
    def test_removes_literal_implied_by_sigma(self):
        q = create_pattern()
        # Σ: video games are created by programmers
        phi = GED(
            q,
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
        )
        condition = [
            ConstantLiteral("y", "type", "video game"),
            ConstantLiteral("x", "type", "programmer"),  # implied by the first
        ]
        result = prune_condition(q, condition, [phi])
        assert result.pruned == [ConstantLiteral("x", "type", "programmer")]
        assert result.condition == [ConstantLiteral("y", "type", "video game")]

    def test_keeps_independent_literals(self):
        q = create_pattern()
        condition = [
            ConstantLiteral("y", "type", "video game"),
            ConstantLiteral("x", "name", "Tony"),
        ]
        result = prune_condition(q, condition, [])
        assert result.pruned == []
        assert result.condition == condition

    def test_duplicate_literal_pruned_without_sigma(self):
        q = create_pattern()
        lit = ConstantLiteral("y", "type", "video game")
        result = prune_condition(q, [lit, ConstantLiteral("y", "type", "video game")], [])
        assert len(result.condition) == 1

    def test_pruned_condition_still_implies_original(self):
        q = create_pattern()
        phi = GED(
            q,
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
        )
        condition = [
            ConstantLiteral("y", "type", "video game"),
            ConstantLiteral("x", "type", "programmer"),
        ]
        result = prune_condition(q, condition, [phi])
        for dropped in result.pruned:
            assert implies([phi], GED(q, result.condition, [dropped]))


class TestImpliedConstants:
    def test_forward_propagation(self):
        q = create_pattern()
        phi = GED(
            q,
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
        )
        result = implied_constants(
            q, [ConstantLiteral("y", "type", "video game")], [phi]
        )
        assert ConstantLiteral("x", "type", "programmer") in result.filters
        assert not result.empty

    def test_condition_constants_not_repeated(self):
        q = create_pattern()
        result = implied_constants(
            q, [ConstantLiteral("y", "type", "video game")], []
        )
        assert result.filters == []

    def test_contradictory_condition_marks_empty(self):
        q = create_pattern()
        condition = [
            ConstantLiteral("y", "type", "video game"),
            ConstantLiteral("y", "type", "board game"),
        ]
        result = implied_constants(q, condition, [])
        assert result.empty

    def test_sigma_contradiction_marks_empty(self):
        q = create_pattern()
        phi_a = GED(q, [], [ConstantLiteral("x", "t", "a")])
        phi_b = GED(q, [], [ConstantLiteral("x", "t", "b")])
        result = implied_constants(q, [], [phi_a, phi_b])
        assert result.empty


class TestStructuralDedup:
    def test_identical_rules_deduped(self):
        q = create_pattern()
        phi = GED(q, [], [ConstantLiteral("x", "a", 1)])
        phi_again = GED(q, [], [ConstantLiteral("x", "a", 1)])
        kept, dupes = structural_dedup([phi, phi_again])
        assert len(kept) == 1
        assert len(dupes) == 1

    def test_renamed_rule_deduped(self):
        q1 = create_pattern()
        q2 = Pattern({"u": "person", "w": "product"}, [("u", "create", "w")])
        phi1 = GED(q1, [], [ConstantLiteral("x", "a", 1)])
        phi2 = GED(q2, [], [ConstantLiteral("u", "a", 1)])
        kept, dupes = structural_dedup([phi1, phi2])
        assert len(kept) == 1
        assert dupes == [phi2]

    def test_different_constants_not_deduped(self):
        q = create_pattern()
        phi1 = GED(q, [], [ConstantLiteral("x", "a", 1)])
        phi2 = GED(q, [], [ConstantLiteral("x", "a", 2)])
        kept, dupes = structural_dedup([phi1, phi2])
        assert len(kept) == 2

    def test_different_topology_not_deduped(self):
        q1 = create_pattern()
        q2 = Pattern({"x": "person", "y": "product"}, [("y", "create", "x")])
        phi1 = GED(q1, [], [ConstantLiteral("x", "a", 1)])
        phi2 = GED(q2, [], [ConstantLiteral("x", "a", 1)])
        kept, _ = structural_dedup([phi1, phi2])
        assert len(kept) == 2


class TestComputeCover:
    def test_cover_drops_implied_rule(self):
        q = create_pattern()
        strong = GED(q, [], [ConstantLiteral("x", "type", "programmer")])
        weak = GED(
            q,
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
        )
        report = compute_cover([strong, weak])
        assert weak in report.implied
        assert report.cover == [strong]

    def test_cover_equivalent_to_input(self):
        q = create_pattern()
        strong = GED(q, [], [ConstantLiteral("x", "type", "programmer")])
        weak = GED(
            q,
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
        )
        report = compute_cover([strong, weak])
        for dropped in report.implied + report.structural_duplicates:
            assert implies(report.cover, dropped)

    def test_dedup_counts_in_report(self):
        q = create_pattern()
        phi = GED(q, [], [ConstantLiteral("x", "a", 1)])
        again = GED(q, [], [ConstantLiteral("x", "a", 1)])
        report = compute_cover([phi, again])
        assert report.removed == 1
        assert len(report.cover) == 1

    def test_dedup_disabled_still_correct(self):
        q = create_pattern()
        phi = GED(q, [], [ConstantLiteral("x", "a", 1)])
        again = GED(q, [], [ConstantLiteral("x", "a", 1)])
        report = compute_cover([phi, again], dedup_first=False)
        assert len(report.cover) == 1
        assert report.structural_duplicates == []
        assert len(report.implied) == 1

    def test_empty_sigma(self):
        report = compute_cover([])
        assert report.cover == []
        assert report.removed == 0
