"""Cover idempotence and fixpoint properties."""

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral
from repro.optimization.cover import compute_cover
from repro.patterns.pattern import Pattern


def rules() -> list[GED]:
    q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
    strong = GED(q, [], [ConstantLiteral("x", "type", "programmer")])
    weak = GED(
        q,
        [ConstantLiteral("y", "type", "video game")],
        [ConstantLiteral("x", "type", "programmer")],
    )
    dupe = GED(q, [], [ConstantLiteral("x", "type", "programmer")])
    return [strong, weak, dupe]


def test_cover_of_cover_is_fixpoint():
    first = compute_cover(rules())
    second = compute_cover(first.cover)
    assert second.cover == first.cover
    assert second.removed == 0


def test_cover_order_insensitive_semantics():
    """Different input orders may keep different representatives, but
    the covers are mutually implying (logically equal)."""
    from repro.reasoning.implication import implies

    forward = compute_cover(rules()).cover
    backward = compute_cover(list(reversed(rules()))).cover
    for ged in forward:
        assert implies(backward, ged)
    for ged in backward:
        assert implies(forward, ged)
