"""Tests for homomorphism-based pattern containment/equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.canonical import canonical_graph
from repro.matching.homomorphism import has_match
from repro.optimization.containment import (
    contained_in,
    equivalent_patterns,
    subsumes,
    witness_homomorphism,
)
from repro.patterns.pattern import Pattern
from repro.patterns.labels import WILDCARD


def triangle() -> Pattern:
    return Pattern(
        {"a": "v", "b": "v", "c": "v"},
        [("a", "e", "b"), ("b", "e", "c"), ("c", "e", "a")],
    )


def single_edge() -> Pattern:
    return Pattern({"x": "v", "y": "v"}, [("x", "e", "y")])


class TestSubsumption:
    def test_triangle_subsumes_edge(self):
        assert subsumes(triangle(), single_edge())

    def test_edge_does_not_subsume_triangle(self):
        assert not subsumes(single_edge(), triangle())

    def test_self_subsumption(self):
        for q in (triangle(), single_edge()):
            assert subsumes(q, q)

    def test_wildcard_pattern_subsumed_by_anything_with_edge(self):
        generic = Pattern({"x": WILDCARD, "y": WILDCARD}, [("x", WILDCARD, "y")])
        concrete = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        # every match of the concrete pattern induces a match of the generic one
        assert subsumes(concrete, generic)
        # but not vice versa: concrete labels don't match wildcard nodes (≼ is asymmetric)
        assert not subsumes(generic, concrete)

    def test_label_mismatch_blocks(self):
        q1 = Pattern({"x": "a", "y": "b"}, [("x", "e", "y")])
        q2 = Pattern({"x": "a", "y": "c"}, [("x", "e", "y")])
        assert not subsumes(q1, q2)
        assert not subsumes(q2, q1)

    def test_witness_composes_to_matches(self):
        """The Example 5 mechanism: witness f : Q2 -> Q1 turns matches of
        Q1 into matches of Q2 by composition."""
        q1, q2 = triangle(), single_edge()
        f = witness_homomorphism(q1, q2)
        assert f is not None
        g = canonical_graph(q1)  # any graph where q1 matches
        assert has_match(q2, g)

    def test_no_witness_when_not_subsumed(self):
        assert witness_homomorphism(single_edge(), triangle()) is None


class TestEquivalence:
    def test_renamed_pattern_equivalent(self):
        q1 = single_edge()
        q2 = Pattern({"u": "v", "w": "v"}, [("u", "e", "w")])
        assert equivalent_patterns(q1, q2)

    def test_pattern_equivalent_to_padded_version(self):
        """Adding a redundant generic limb preserves equivalence."""
        q1 = single_edge()
        padded = Pattern(
            {"x": "v", "y": "v", "z": "v"},
            [("x", "e", "y"), ("x", "e", "z")],
        )
        assert equivalent_patterns(q1, padded)

    def test_triangle_not_equivalent_to_edge(self):
        assert not equivalent_patterns(triangle(), single_edge())

    def test_contained_in_alias(self):
        assert contained_in(triangle(), single_edge())
        assert not contained_in(single_edge(), triangle())


@st.composite
def small_patterns(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    variables = [f"v{i}" for i in range(n)]
    labels = {v: draw(st.sampled_from(["a", "b", WILDCARD])) for v in variables}
    n_edges = draw(st.integers(min_value=0, max_value=4))
    edges = []
    for _ in range(n_edges):
        s = draw(st.sampled_from(variables))
        t = draw(st.sampled_from(variables))
        l = draw(st.sampled_from(["e", "f"]))
        edges.append((s, l, t))
    return Pattern(labels, edges)


class TestContainmentProperties:
    @given(small_patterns())
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, q):
        assert subsumes(q, q)

    @given(small_patterns(), small_patterns(), small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_transitive(self, q1, q2, q3):
        if subsumes(q1, q2) and subsumes(q2, q3):
            assert subsumes(q1, q3)

    @given(small_patterns(), small_patterns())
    @settings(max_examples=40, deadline=None)
    def test_subsumption_transfers_matches(self, q1, q2):
        """If q1 subsumes q2, then q2 matches in q1's canonical graph —
        and in fact in any graph where q1 matches (spot-checked on G_{q1})."""
        if subsumes(q1, q2):
            assert has_match(q2, canonical_graph(q1))
