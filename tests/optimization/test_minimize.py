"""Tests for pattern cores and chase-based minimization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, IdLiteral
from repro.optimization.containment import equivalent_patterns
from repro.optimization.minimize import core, is_core, minimize_pattern
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern


class TestCore:
    def test_single_node_is_core(self):
        assert is_core(Pattern({"x": "v"}))

    def test_triangle_is_core(self):
        q = Pattern(
            {"a": "v", "b": "v", "c": "v"},
            [("a", "e", "b"), ("b", "e", "c"), ("c", "e", "a")],
        )
        assert is_core(q)

    def test_redundant_limb_folds_away(self):
        q = Pattern(
            {"x": "v", "y": "v", "z": "v"},
            [("x", "e", "y"), ("x", "e", "z")],
        )
        folded, mapping = core(q)
        assert folded.num_variables == 2
        assert mapping["z"] in {"y", "z"}
        assert equivalent_patterns(q, folded)

    def test_generic_limb_folds_onto_concrete(self):
        """A wildcard copy of a concrete edge is redundant."""
        q = Pattern(
            {"x": "person", "y": "product", "u": WILDCARD, "w": WILDCARD},
            [("x", "create", "y"), ("u", "create", "w")],
        )
        folded, mapping = core(q)
        assert folded.num_variables == 2
        assert set(folded.variables) == {"x", "y"}
        assert equivalent_patterns(q, folded)

    def test_two_distinct_limbs_do_not_fold(self):
        q = Pattern(
            {"x": "a", "y": "b", "u": "a", "w": "c"},
            [("x", "e", "y"), ("u", "e", "w")],
        )
        folded, _ = core(q)
        assert folded.num_variables == 4

    def test_folding_map_is_total_and_lands_in_core(self):
        q = Pattern(
            {"x": "v", "y": "v", "z": "v", "w": "v"},
            [("x", "e", "y"), ("x", "e", "z"), ("x", "e", "w")],
        )
        folded, mapping = core(q)
        assert set(mapping) == set(q.variables)
        assert set(mapping.values()) <= set(folded.variables)

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_star_of_identical_limbs_folds_to_one_edge(self, k):
        nodes = {"c": "hub"}
        edges = []
        for i in range(k):
            nodes[f"l{i}"] = "leaf"
            edges.append(("c", "e", f"l{i}"))
        folded, _ = core(Pattern(nodes, edges))
        assert folded.num_variables == 2
        assert folded.num_edges == 1


class TestMinimizeWithSigma:
    def test_no_dependencies_no_change(self):
        q = Pattern({"x": "a", "y": "b"}, [("x", "e", "y")])
        result = minimize_pattern(q, [])
        assert result.pattern == q
        assert not result.merged_any
        assert not result.unsatisfiable

    def test_gkey_merges_query_variables(self):
        """With a key 'one capital per country' in Σ, a query joining two
        capitals of the same country collapses to a single capital."""
        q_key = Pattern(
            {"c": "country", "p": "city", "q": "city"},
            [("c", "capital", "p"), ("c", "capital", "q")],
        )
        key = GED(q_key, [], [IdLiteral("p", "q")], name="one-capital")
        query = Pattern(
            {"x": "country", "y": "city", "z": "city"},
            [("x", "capital", "y"), ("x", "capital", "z")],
        )
        result = minimize_pattern(query, [key])
        assert result.merged_any
        assert result.pattern.num_variables == 2
        assert result.pattern.num_edges == 1

    def test_constant_filters_surfaced(self):
        q1 = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
        phi = GED(q1, [], [ConstantLiteral("x", "verified", 1)])
        result = minimize_pattern(q1, [phi])
        assert ConstantLiteral("x", "verified", 1) in result.implied

    def test_unsatisfiable_query_detected(self):
        q1 = Pattern({"x": "person"})
        phi_a = GED(q1, [], [ConstantLiteral("x", "t", "a")])
        phi_b = GED(q1, [], [ConstantLiteral("x", "t", "b")])
        query = Pattern({"p": "person"})
        result = minimize_pattern(query, [phi_a, phi_b])
        assert result.unsatisfiable

    def test_also_core_composes(self):
        q_key = Pattern(
            {"c": "country", "p": "city", "q": "city"},
            [("c", "capital", "p"), ("c", "capital", "q")],
        )
        key = GED(q_key, [], [IdLiteral("p", "q")])
        # query with a Σ-mergeable pair AND a dependency-free redundant limb
        query = Pattern(
            {"x": "country", "y": "city", "z": "city", "u": WILDCARD, "w": WILDCARD},
            [("x", "capital", "y"), ("x", "capital", "z"), ("u", "capital", "w")],
        )
        result = minimize_pattern(query, [key], also_core=True)
        assert result.pattern.num_variables == 2
        assert result.pattern.num_edges == 1

    def test_mapping_respects_merges(self):
        q_key = Pattern(
            {"c": "country", "p": "city", "q": "city"},
            [("c", "capital", "p"), ("c", "capital", "q")],
        )
        key = GED(q_key, [], [IdLiteral("p", "q")])
        query = Pattern(
            {"x": "country", "y": "city", "z": "city"},
            [("x", "capital", "y"), ("x", "capital", "z")],
        )
        result = minimize_pattern(query, [key])
        assert result.mapping["y"] == result.mapping["z"]
        assert result.mapping["x"] != result.mapping["y"]

    def test_recursive_gkeys_minimize_album_join(self):
        """The paper's ψ1/ψ3 recursion: a query joining two albums with
        equal-named artists stays un-merged (no premise holds in G_Q —
        attribute values are unknown), so minimization is conservative."""
        from repro import paper

        query = paper.psi1().pattern
        result = minimize_pattern(query, [paper.psi1(), paper.psi3()])
        assert not result.merged_any  # X-literals are not satisfied in G_Q
        assert result.pattern == query
