"""Unit tests for the property-graph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph, GraphBuilder


def simple_graph() -> Graph:
    g = Graph()
    g.add_node("a", "person", name="Ada")
    g.add_node("b", "product", title="Game")
    g.add_edge("a", "create", "b")
    return g


class TestNodeConstruction:
    def test_node_has_label_and_attributes(self):
        g = simple_graph()
        node = g.node("a")
        assert node.label == "person"
        assert node.attributes == {"name": "Ada"}

    def test_id_is_not_an_attribute(self):
        g = simple_graph()
        assert not g.node("a").has_attribute("id")

    def test_setting_id_attribute_is_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("x", "person", id="boom")

    def test_empty_node_id_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("", "person")

    def test_empty_label_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("x", "")

    def test_duplicate_node_rejected(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_node("a", "person")

    def test_attrs_mapping_and_kwargs_merge(self):
        g = Graph()
        g.add_node("x", "v", {"a": 1}, b=2)
        assert g.node("x").attributes == {"a": 1, "b": 2}

    def test_get_with_default(self):
        g = simple_graph()
        assert g.node("a").get("name") == "Ada"
        assert g.node("a").get("missing", 7) == 7


class TestEdges:
    def test_edge_requires_existing_endpoints(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_edge("a", "r", "zzz")
        with pytest.raises(GraphError):
            g.add_edge("zzz", "r", "a")

    def test_edge_label_nonempty(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_edge("a", "", "b")

    def test_edges_are_a_set(self):
        g = simple_graph()
        g.add_edge("a", "create", "b")
        assert g.num_edges == 1

    def test_parallel_edges_with_distinct_labels(self):
        g = simple_graph()
        g.add_edge("a", "like", "b")
        assert g.num_edges == 2
        assert g.successors("a", "create") == {"b"}
        assert g.successors("a", "like") == {"b"}

    def test_self_loop_allowed(self):
        g = simple_graph()
        g.add_edge("a", "knows", "a")
        assert g.has_edge("a", "knows", "a")

    def test_successors_predecessors(self):
        g = simple_graph()
        assert g.successors("a") == {"b"}
        assert g.predecessors("b") == {"a"}
        assert g.successors("b") == set()
        assert g.predecessors("b", "create") == {"a"}
        assert g.predecessors("b", "like") == set()

    def test_degrees(self):
        g = simple_graph()
        assert g.out_degree("a") == 1
        assert g.in_degree("a") == 0
        assert g.in_degree("b") == 1

    def test_in_out_edges_iterators(self):
        g = simple_graph()
        assert list(g.out_edges("a")) == [("a", "create", "b")]
        assert list(g.in_edges("b")) == [("a", "create", "b")]

    def test_unknown_node_queries_raise(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.successors("zzz")
        with pytest.raises(GraphError):
            g.predecessors("zzz")
        with pytest.raises(GraphError):
            g.node("zzz")


class TestIndexes:
    def test_nodes_with_label(self):
        g = simple_graph()
        assert g.nodes_with_label("person") == {"a"}
        assert g.nodes_with_label("nothing") == set()

    def test_labels_property(self):
        g = simple_graph()
        assert g.labels == {"person", "product"}

    def test_edge_labels(self):
        g = simple_graph()
        assert g.edge_labels == {"create"}


class TestWholeGraphOps:
    def test_copy_is_independent(self):
        g = simple_graph()
        clone = g.copy()
        assert clone == g
        clone.set_attribute("a", "name", "Bob")
        assert g.node("a").get("name") == "Ada"

    def test_structural_equality(self):
        assert simple_graph() == simple_graph()
        other = simple_graph()
        other.add_edge("b", "owns", "a")
        assert simple_graph() != other

    def test_disjoint_union_with_prefixes(self):
        g = simple_graph()
        u = g.disjoint_union(g, "l:", "r:")
        assert u.num_nodes == 4
        assert u.has_edge("l:a", "create", "l:b")
        assert u.has_edge("r:a", "create", "r:b")

    def test_induced_subgraph(self):
        g = simple_graph()
        g.add_node("c", "person")
        g.add_edge("c", "create", "b")
        sub = g.induced_subgraph(["a", "b"])
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "create", "b")
        assert not sub.has_node("c")

    def test_size_counts_nodes_edges_attrs(self):
        g = simple_graph()
        # 2 nodes + 1 edge + 2 attribute entries
        assert g.size() == 5

    def test_set_attribute(self):
        g = simple_graph()
        g.set_attribute("b", "year", 1989)
        assert g.node("b").get("year") == 1989
        with pytest.raises(GraphError):
            g.set_attribute("b", "id", 3)


class TestBuilder:
    def test_fluent_builder(self):
        g = (
            GraphBuilder()
            .node("x", "account", is_fake=1)
            .nodes("blog", "b1", "b2")
            .edge("x", "post", "b1")
            .edges("like", ("x", "b1"), ("x", "b2"))
            .undirected_edge("b1", "rel", "b2")
            .attr("b1", "keyword", "scam")
            .build()
        )
        assert g.num_nodes == 3
        assert g.has_edge("x", "post", "b1")
        assert g.has_edge("b1", "rel", "b2") and g.has_edge("b2", "rel", "b1")
        assert g.node("b1").get("keyword") == "scam"
        assert g.node("x").get("is_fake") == 1
