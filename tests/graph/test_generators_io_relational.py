"""Tests for graph generators, JSON IO, and the relational encoding."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Relation,
    complete_graph,
    cycle_graph,
    graph_from_json,
    graph_to_json,
    graph_to_relation,
    path_graph,
    random_connected_undirected_graph,
    random_labeled_graph,
    relations_to_graph,
    star_graph,
    undirected_edge_set,
)


class TestGenerators:
    def test_complete_graph_edge_count(self):
        g = complete_graph(4)
        assert g.num_nodes == 4
        assert g.num_edges == 12  # n(n-1) directed edges

    def test_complete_graph_no_self_loops(self):
        g = complete_graph(5)
        assert all(s != t for (s, _, t) in g.edges)

    def test_cycle_graph_undirected(self):
        g = cycle_graph(5)
        assert g.num_edges == 10
        assert undirected_edge_set(g) == {
            ("n0", "n1"), ("n1", "n2"), ("n2", "n3"), ("n3", "n4"), ("n0", "n4"),
        }

    def test_cycle_graph_directed(self):
        g = cycle_graph(4, directed=True)
        assert g.num_edges == 4

    def test_path_graph(self):
        g = path_graph(3)
        assert g.num_edges == 4
        assert g.has_edge("n0", "adj", "n1") and g.has_edge("n1", "adj", "n0")

    def test_star_graph(self):
        g = star_graph(3)
        assert g.num_nodes == 4
        assert g.out_degree("c") == 3

    def test_random_labeled_graph_deterministic(self):
        a = random_labeled_graph(10, 0.3, rng=42, attribute_names=["p"])
        b = random_labeled_graph(10, 0.3, rng=42, attribute_names=["p"])
        assert a == b

    def test_random_connected_graph_is_connected(self):
        g = random_connected_undirected_graph(12, rng=7)
        seen = {"n0"}
        frontier = ["n0"]
        while frontier:
            current = frontier.pop()
            for nxt in g.successors(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert seen == set(g.node_ids)

    def test_random_connected_graph_no_self_loops(self):
        g = random_connected_undirected_graph(8, rng=3)
        assert all(s != t for (s, _, t) in g.edges)


class TestJsonIO:
    def test_round_trip(self):
        g = random_labeled_graph(8, 0.4, rng=1, attribute_names=["a", "b"])
        assert graph_from_json(graph_to_json(g)) == g

    def test_round_trip_preserves_attribute_values(self):
        g = complete_graph(2)
        g.set_attribute("n0", "score", 3)
        g.set_attribute("n1", "name", "x")
        back = graph_from_json(graph_to_json(g))
        assert back.node("n0").get("score") == 3
        assert back.node("n1").get("name") == "x"

    def test_malformed_dict_raises(self):
        from repro.graph import graph_from_dict

        with pytest.raises(GraphError):
            graph_from_dict({"edges": []})


class TestRelationalEncoding:
    def test_relation_insert_positional_and_mapping(self):
        r = Relation("R", ["A", "B"])
        r.insert([1, 2])
        r.insert({"A": 3, "B": 4})
        assert len(r) == 2
        assert r.tuples[1] == {"A": 3, "B": 4}

    def test_relation_validates_arity(self):
        r = Relation("R", ["A", "B"])
        with pytest.raises(GraphError):
            r.insert([1])
        with pytest.raises(GraphError):
            r.insert({"A": 1})
        with pytest.raises(GraphError):
            r.insert({"A": 1, "B": 2, "C": 3})

    def test_relation_rejects_duplicate_attributes(self):
        with pytest.raises(GraphError):
            Relation("R", ["A", "A"])

    def test_tuples_become_labeled_nodes(self):
        r = Relation("emp", ["name", "dept"])
        r.insert(["ada", "cs"])
        r.insert(["bob", "ee"])
        g = relations_to_graph([r])
        assert g.num_nodes == 2
        assert g.num_edges == 0
        assert g.nodes_with_label("emp") == {"emp#0", "emp#1"}
        assert g.node("emp#0").get("name") == "ada"

    def test_round_trip_through_graph(self):
        r = Relation("R", ["A", "B"])
        r.insert([1, "x"])
        r.insert([2, "y"])
        g = relations_to_graph([r])
        back = graph_to_relation(g, "R", ["A", "B"])
        assert sorted(t["A"] for t in back.tuples) == [1, 2]

    def test_decode_skips_incomplete_tuples(self):
        r = Relation("R", ["A"])
        r.insert([1])
        g = relations_to_graph([r])
        g.add_node("stray", "R")  # schemaless node without attribute A
        back = graph_to_relation(g, "R", ["A"])
        assert len(back) == 1
