"""The fragmented graph core: partition invariants, facade equivalence,
and update-routing coherence.

The satellite property of the fragment layer — a
:class:`~repro.graph.fragments.FragmentedGraph` answers the whole-graph
``Graph`` read API byte-identically to the monolithic graph, across
partitioner modes, fragment counts, and churn streams, with the
structural invariants (interior partition, border = exterior
neighborhood, local graph = induced subgraph) holding at every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import Graph
from repro.graph.fragments import (
    PARTITION_MODES,
    FragmentedGraph,
    fragment_stats,
    get_fragments,
    partition_graph,
)
from repro.graph.generators import random_labeled_graph
from repro.graph.update import GraphUpdate
from repro.indexing import attach_index, get_index
from repro.reasoning.incremental import apply_update
from repro.workloads import (
    churn_stream,
    clustered_workload,
    social_churn_stream,
    validation_workload,
)


def small_graph(seed: int, n: int = 24) -> Graph:
    return random_labeled_graph(
        n,
        0.25,
        node_labels=["user", "item", "shop"],
        edge_labels=["buys", "sells"],
        attribute_names=["score", "region"],
        attribute_values=[1, 2],
        rng=seed,
    )


def assert_facade_equivalent(fragmented: FragmentedGraph, reference: Graph) -> None:
    """Every read-API answer must match the monolithic graph."""
    assert fragmented.num_nodes == reference.num_nodes
    assert fragmented.num_edges == reference.num_edges
    assert fragmented.size() == reference.size()
    assert sorted(fragmented.node_ids) == sorted(reference.node_ids)
    assert fragmented.edges == reference.edges
    assert fragmented.labels == reference.labels
    assert fragmented.edge_labels == reference.edge_labels
    for label in reference.labels:
        assert fragmented.nodes_with_label(label) == reference.nodes_with_label(label)
    for node_id in reference.node_ids:
        expected = reference.node(node_id)
        got = fragmented.node(node_id)
        assert got.label == expected.label
        assert dict(got.attributes) == dict(expected.attributes)
        assert fragmented.successors(node_id) == reference.successors(node_id)
        assert fragmented.predecessors(node_id) == reference.predecessors(node_id)
        assert fragmented.out_degree(node_id) == reference.out_degree(node_id)
        assert fragmented.in_degree(node_id) == reference.in_degree(node_id)
        assert set(fragmented.out_edges(node_id)) == set(reference.out_edges(node_id))
        assert set(fragmented.in_edges(node_id)) == set(reference.in_edges(node_id))
        for label in reference.edge_labels:
            assert set(fragmented.out_row(node_id, label)) == set(
                reference.out_row(node_id, label)
            )
            assert set(fragmented.in_row(node_id, label)) == set(
                reference.in_row(node_id, label)
            )
            assert fragmented.out_degree(node_id, label) == reference.out_degree(
                node_id, label
            )


class TestPartitionInvariants:
    @pytest.mark.parametrize("mode", PARTITION_MODES)
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_structural_invariants(self, mode, k):
        graph = validation_workload(80, rng=3)
        fragmentation = partition_graph(graph, k, mode)
        fragmentation.check(graph)

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_every_edge_owned_exactly_once(self, mode):
        graph = validation_workload(60, rng=7)
        fragmentation = partition_graph(graph, 3, mode)
        owned = [
            edge
            for fragment in fragmentation.fragments
            for edge in fragment.graph.edges
            if fragmentation.owner[edge[0]] == fragment.index
        ]
        assert sorted(owned) == sorted(graph.edges)
        assert len(owned) == len(set(owned))

    def test_partition_is_deterministic(self):
        graph = clustered_workload(120, n_clusters=4, rng=5)
        for mode in PARTITION_MODES:
            first = partition_graph(graph, 4, mode)
            second = partition_graph(graph, 4, mode)
            assert first.owner == second.owner

    def test_greedy_beats_hash_on_clustered_data(self):
        graph = clustered_workload(240, n_clusters=8, rng=11)
        hash_cut = partition_graph(graph, 4, "hash").cut_edges()
        greedy_cut = partition_graph(graph, 4, "greedy").cut_edges()
        assert greedy_cut < hash_cut

    def test_greedy_stays_balanced(self):
        graph = clustered_workload(200, n_clusters=5, rng=2)
        stats = fragment_stats(partition_graph(graph, 4, "greedy"))
        assert stats["balance"] >= 0.8

    def test_bad_arguments_rejected(self):
        graph = small_graph(1)
        with pytest.raises(ValueError, match="fragment count"):
            partition_graph(graph, 0)
        with pytest.raises(ValueError, match="mode"):
            partition_graph(graph, 2, "metis")

    def test_unknown_node_raises(self):
        fragmented = FragmentedGraph.partition(small_graph(1), 2)
        with pytest.raises(GraphError, match="unknown node"):
            fragmented.node("nope")
        with pytest.raises(GraphError, match="unknown node"):
            fragmented.successors("nope")


class TestFacadeEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=5),
        mode=st.sampled_from(PARTITION_MODES),
    )
    @settings(max_examples=25, deadline=None)
    def test_read_api_matches_monolith(self, seed, k, mode):
        graph = small_graph(seed)
        fragmented = FragmentedGraph.partition(graph, k, mode)
        assert_facade_equivalent(fragmented, graph)

    def test_to_graph_roundtrip(self):
        graph = validation_workload(60, rng=9)
        fragmented = FragmentedGraph.partition(graph, 3, "greedy")
        assert fragmented.to_graph() == graph


class TestChurnEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        k=st.integers(min_value=2, max_value=4),
        mode=st.sampled_from(PARTITION_MODES),
        indexed=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_churn_stream(self, seed, k, mode, indexed):
        stream = churn_stream(n_nodes=60, batches=8, batch_size=6, rng=seed)
        reference = stream.base.copy()
        fragmented = FragmentedGraph.partition(reference, k, mode, indexed=indexed)
        version_before = fragmented.version
        for update in stream.updates:
            apply_update(reference, update)
            fragmented.apply_update(update)
            fragmented.fragmentation.check(reference)
        assert fragmented.version == version_before + len(stream.updates)
        assert_facade_equivalent(fragmented, reference)

    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_social_churn_stream(self, mode):
        stream = social_churn_stream(n_rings=3, batches=10, batch_size=6, rng=4)
        reference = stream.base.copy()
        fragmented = FragmentedGraph.partition(reference, 3, mode)
        for update in stream.updates:
            apply_update(reference, update)
            fragmented.apply_update(update)
        fragmented.fragmentation.check(reference)
        assert_facade_equivalent(fragmented, reference)

    def test_per_fragment_indexes_stay_synced(self):
        stream = churn_stream(n_nodes=60, batches=6, batch_size=6, rng=3)
        fragmented = FragmentedGraph.partition(stream.base.copy(), 3, "hash", indexed=True)
        for update in stream.updates:
            fragmented.apply_update(update)
        for fragment in fragmented.fragments:
            assert get_index(fragment.graph) is not None  # synced, not stale

    def test_routed_slices_smaller_than_full_replication(self):
        """The point of routing: per-worker log traffic ≪ k × batch."""
        stream = churn_stream(n_nodes=120, batches=10, batch_size=8, rng=13)
        fragmented = FragmentedGraph.partition(stream.base.copy(), 4, "greedy")
        routed_total = 0
        full_total = 0
        for update in stream.updates:
            routed = fragmented.apply_update(update)
            routed_total += routed.total_operations()
            full_total += 4 * update.size()
        assert routed_total < full_total

    def test_replace_retires_and_refreshes_cross_fragment_replicas(self):
        """Delete + re-add of a border-replicated node: without the
        cross edge both replicas retire (graph *and* border_owner
        bookkeeping); re-adding the edge keeps them, with fresh attrs."""
        import zlib

        ids = [f"n{i}" for i in range(20)]
        a = next(i for i in ids if zlib.crc32(i.encode()) % 2 == 0)
        b = next(i for i in ids if zlib.crc32(i.encode()) % 2 == 1)

        def fresh() -> Graph:
            graph = Graph()
            graph.add_node(a, "user")
            graph.add_node(b, "item")
            graph.add_edge(a, "buys", b)
            return graph

        from repro.graph.update import apply_update_plain

        drop = GraphUpdate(nodes=[(b, "item", {})], del_nodes=[b])
        fragmented = FragmentedGraph.partition(fresh(), 2, "hash")
        assert fragmented.fragmentation.replicated_nodes() == 2
        fragmented.apply_update(drop)
        reference = apply_update_plain(fresh(), drop)
        fragmented.fragmentation.check(reference)
        assert fragmented.fragmentation.replicated_nodes() == 0

        keep = GraphUpdate(
            nodes=[(b, "item", {"score": 2})], edges=[(a, "buys", b)], del_nodes=[b]
        )
        fragmented = FragmentedGraph.partition(fresh(), 2, "hash")
        fragmented.apply_update(keep)
        reference = apply_update_plain(fresh(), keep)
        fragmented.fragmentation.check(reference)
        assert fragmented.fragmentation.replicated_nodes() == 2
        assert fragmented.node(b).get("score") == 2

    def test_atomicity_bad_batch_leaves_fragments_untouched(self):
        graph = small_graph(5)
        fragmented = FragmentedGraph.partition(graph, 2, "hash")
        before_edges = fragmented.edges
        bad = GraphUpdate(edges=[(graph.node_ids[0], "buys", "missing-node")])
        with pytest.raises(GraphError):
            fragmented.apply_update(bad)
        assert fragmented.edges == before_edges
        fragmented.fragmentation.check(graph)


class TestFragmentationRegistry:
    def test_cache_hits_until_mutation(self):
        graph = validation_workload(50, rng=1)
        first = get_fragments(graph, 3, "hash")
        assert get_fragments(graph, 3, "hash") is first
        assert get_fragments(graph, 2, "hash") is not first
        graph.set_attribute(graph.node_ids[0], "score", 9)
        assert get_fragments(graph, 3, "hash") is not first

    def test_index_decision_mirrors_coordinator(self):
        graph = validation_workload(50, rng=1)
        assert not get_fragments(graph, 3, "hash").indexed
        attach_index(graph)
        fragmentation = get_fragments(graph, 3, "hash")
        assert fragmentation.indexed
        for fragment in fragmentation.fragments:
            assert get_index(fragment.graph) is not None
