"""Cross-procedure semantic soundness (property-based).

These tests tie the three decision procedures to the *model-theoretic*
definitions they implement:

* if Σ |= φ (per the Theorem 4 chase procedure), then every concrete
  graph satisfying Σ must satisfy φ — checked over pools of random
  graphs;
* if Σ ⊭ φ, models of Σ violating φ should exist — and indeed the
  procedures' own artifacts (chase coercions, built models) provide
  them in the common case;
* validation distributes over unions of rule sets.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps import ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.graph import random_labeled_graph
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import find_violations, implies, validates


def random_geds(seed: int, how_many: int) -> list[GED]:
    rng = random.Random(seed)
    q = Pattern({"x": rng.choice(["a", "b", WILDCARD]), "y": rng.choice(["a", WILDCARD])})
    result = []
    for _ in range(how_many):
        def lit():
            roll = rng.random()
            v1, v2 = rng.choice(["x", "y"]), rng.choice(["x", "y"])
            if roll < 0.45:
                return ConstantLiteral(v1, "A", rng.choice([1, 2]))
            if roll < 0.8:
                return VariableLiteral(v1, "A", v2, "B")
            return IdLiteral(v1, v2)
        lits = [lit() for _ in range(2)]
        result.append(GED(q, lits[:1], lits[1:]))
    return result


def graph_pool(seed: int, count: int = 12):
    rng = random.Random(seed)
    pool = []
    for _ in range(count):
        pool.append(
            random_labeled_graph(
                rng.randint(1, 4), 0.5, ["a", "b"], ["r"],
                rng=rng.randint(0, 10_000),
                attribute_names=["A", "B"], attribute_values=[1, 2],
            )
        )
    return pool


class TestImplicationSoundOverModels:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_implied_geds_hold_on_every_model(self, seed):
        sigma = random_geds(seed, 2)
        phi = random_geds(seed + 1, 1)[0]
        if phi.pattern != sigma[0].pattern:
            return
        if not implies(sigma, phi):
            return
        for graph in graph_pool(seed):
            if validates(graph, sigma):
                assert validates(graph, [phi]), (
                    f"Σ |= φ but a Σ-model violates φ\nΣ={list(map(str, sigma))}\nφ={phi}"
                )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_violating_model_refutes_implication(self, seed):
        """Contrapositive: a Σ-model violating φ certifies Σ ⊭ φ."""
        sigma = random_geds(seed, 2)
        phi = random_geds(seed + 1, 1)[0]
        for graph in graph_pool(seed + 2):
            if validates(graph, sigma) and not validates(graph, [phi]):
                assert not implies(sigma, phi)
                return


class TestValidationAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_union_of_rule_sets(self, seed):
        """G |= Σ1 ∪ Σ2 iff G |= Σ1 and G |= Σ2."""
        sigma1 = random_geds(seed, 1)
        sigma2 = random_geds(seed + 5, 1)
        for graph in graph_pool(seed + 9, count=4):
            both = validates(graph, sigma1 + sigma2)
            split = validates(graph, sigma1) and validates(graph, sigma2)
            assert both == split

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_violations_localize(self, seed):
        """Every violation witness, replayed, indeed fails its rule."""
        from repro.reasoning import literal_holds

        sigma = random_geds(seed, 2)
        for graph in graph_pool(seed + 3, count=4):
            for violation in find_violations(graph, sigma):
                match = violation.assignment
                assert all(literal_holds(graph, l, match) for l in violation.ged.X)
                for failed in violation.failed:
                    assert not literal_holds(graph, failed, match)
