"""Tests for Theorem 4/5 counterexample construction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.deps.ged import GED
from repro.deps.literals import FALSE, ConstantLiteral, IdLiteral, VariableLiteral
from repro.patterns.pattern import Pattern
from repro.reasoning.counterexample import find_counterexample, implication_with_witness
from repro.reasoning.implication import implies
from repro.reasoning.validation import find_violations, validates


def creators() -> Pattern:
    return Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])


class TestBasicWitnesses:
    def test_implied_returns_none(self):
        phi = GED(creators(), [], [ConstantLiteral("x", "t", 1)])
        assert find_counterexample([phi], phi) is None

    def test_unimplied_constant_rule(self):
        phi = GED(creators(), [], [ConstantLiteral("x", "t", 1)])
        other = GED(creators(), [], [ConstantLiteral("x", "u", 2)])
        witness = find_counterexample([other], phi)
        assert witness is not None
        assert validates(witness.graph, [other])
        assert not validates(witness.graph, [phi])
        assert witness.failed == [ConstantLiteral("x", "t", 1)]

    def test_witness_match_satisfies_x(self):
        phi = GED(
            creators(),
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
        )
        witness = find_counterexample([], phi)
        assert witness is not None
        from repro.reasoning.validation import literal_holds

        for literal in phi.X:
            assert literal_holds(witness.graph, literal, witness.match)

    def test_variable_literal_witness(self):
        phi2 = paper.phi2()
        witness = find_counterexample([], phi2)
        assert witness is not None
        names = {
            witness.graph.node(witness.match[v]).get("name") for v in ("y", "z")
        }
        # the two capitals got distinct fresh values
        assert len([v for v in find_violations(witness.graph, [phi2])]) >= 1

    def test_id_literal_witness(self):
        key = GED(
            Pattern(
                {"x": "album", "y": "album", "z": "artist"},
                [("x", "by", "z"), ("y", "by", "z")],
            ),
            [],
            [IdLiteral("x", "y")],
        )
        witness = find_counterexample([], key)
        assert witness is not None
        assert witness.match["x"] != witness.match["y"]

    def test_forbidding_constraint_witness(self):
        phi4 = paper.phi4()
        witness = find_counterexample([], phi4)
        assert witness is not None
        assert FALSE in witness.failed
        assert not validates(witness.graph, [phi4])

    def test_sigma_actually_used(self):
        """With the helping rule in Σ the implication holds; without it a
        witness appears."""
        phi1 = GED(
            creators(),
            [ConstantLiteral("y", "type", "video game")],
            [ConstantLiteral("x", "type", "programmer")],
        )
        assert find_counterexample([phi1], phi1) is None
        witness = find_counterexample([], phi1)
        assert witness is not None


class TestAgreementWithImplies:
    CASES = []
    _q = Pattern({"x": "person", "y": "product"}, [("x", "create", "y")])
    CASES.append(([], GED(_q, [], [ConstantLiteral("x", "a", 1)])))
    CASES.append(
        (
            [GED(_q, [], [ConstantLiteral("x", "a", 1)])],
            GED(_q, [ConstantLiteral("y", "b", 2)], [ConstantLiteral("x", "a", 1)]),
        )
    )
    CASES.append(
        (
            [GED(_q, [], [VariableLiteral("x", "n", "y", "n")])],
            GED(_q, [], [ConstantLiteral("x", "n", 3)]),
        )
    )
    CASES.append(([paper.phi1()], paper.phi2()))
    CASES.append(([paper.phi2()], paper.phi2()))

    @pytest.mark.parametrize("sigma,phi", CASES)
    def test_witness_iff_not_implied(self, sigma, phi):
        implied, witness = implication_with_witness(sigma, phi)
        assert implied == implies(sigma, phi)
        if implied:
            assert witness is None
        else:
            assert witness is not None
            assert validates(witness.graph, sigma)
            assert not validates(witness.graph, [phi])

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_random_constant_rules_agree(self, seed):
        rng = random.Random(seed)
        q = creators()
        attrs = ["a", "b"]
        values = [1, 2]

        def random_rule():
            X = []
            if rng.random() < 0.6:
                X.append(
                    ConstantLiteral(
                        rng.choice(["x", "y"]), rng.choice(attrs), rng.choice(values)
                    )
                )
            Y = [
                ConstantLiteral(
                    rng.choice(["x", "y"]), rng.choice(attrs), rng.choice(values)
                )
            ]
            return GED(q, X, Y)

        sigma = [random_rule() for _ in range(rng.randrange(3))]
        phi = random_rule()
        implied, witness = implication_with_witness(sigma, phi)
        assert implied == implies(sigma, phi)
        if witness is not None:
            assert validates(witness.graph, sigma)
            assert not validates(witness.graph, [phi])

    def test_witness_size_is_small(self):
        """The small-model flavor of the Theorem 5 upper bound: the
        witness is polynomial in |φ| + |Σ| (here: derived from G_Q, so
        no larger than the pattern plus generated attributes)."""
        phi = GED(creators(), [], [ConstantLiteral("x", "t", 1)])
        witness = find_counterexample([], phi)
        assert witness is not None
        assert witness.graph.num_nodes <= phi.pattern.num_variables
