"""Implication tests: Theorem 4/5, Example 7, redundancy elimination."""

from repro import paper
from repro.deps import ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.patterns import Pattern
from repro.reasoning import (
    check_implication,
    implies,
    minimal_cover,
    redundant_dependencies,
)


class TestExample7:
    """The paper's Example 7 (Figure 4)."""

    def test_sigma_implies_phi(self):
        outcome = check_implication(paper.example7_sigma(), paper.example7_phi())
        assert outcome.implied
        assert outcome.mode == "deduced"

    def test_wildcard_merge_is_consistent(self):
        """x3 (label a) merges with x1 (label _) — the ≼ comparison."""
        outcome = check_implication(paper.example7_sigma(), paper.example7_phi())
        eq = outcome.chase_result.eq
        assert eq.nodes_equal("x1", "x3")
        assert eq.nodes_equal("x2", "x4")
        assert eq.is_consistent

    def test_weakened_sigma_does_not_imply(self):
        """Dropping φ2 breaks the derivation chain for x2/x4."""
        phi_1 = paper.example7_sigma()[0]
        outcome = check_implication([phi_1], paper.example7_phi())
        assert not outcome.implied
        assert outcome.mode == "not-deduced"
        assert any(isinstance(l, IdLiteral) for l in outcome.missing)


class TestBasicImplication:
    def test_reflexivity(self):
        phi = paper.phi2()
        assert implies([phi], phi)

    def test_empty_sigma_implies_trivial(self):
        q = Pattern({"x": "a"})
        trivial = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "A", 1)])
        assert implies([], trivial)

    def test_empty_sigma_does_not_imply_nontrivial(self):
        q = Pattern({"x": "a"})
        assert not implies([], GED(q, [], [ConstantLiteral("x", "A", 1)]))

    def test_inconsistent_x_implies_anything(self):
        """Condition (1) of Theorem 4 with Eq_X inconsistent upfront."""
        q = Pattern({"x": "a"})
        phi = GED(
            q,
            [ConstantLiteral("x", "A", 1), ConstantLiteral("x", "A", 2)],
            [ConstantLiteral("x", "A", 3)],
        )
        outcome = check_implication([], phi)
        assert outcome.implied and outcome.mode == "inconsistent-X"

    def test_chase_driven_inconsistency_implies(self):
        """Condition (1) via the chase: Σ forces a conflict under X."""
        q = Pattern({"x": "item"})
        sigma = [
            GED(q, [ConstantLiteral("x", "t", 1)], [ConstantLiteral("x", "u", "a")]),
            GED(q, [ConstantLiteral("x", "t", 1)], [ConstantLiteral("x", "u", "b")]),
        ]
        phi = GED(q, [ConstantLiteral("x", "t", 1)], [ConstantLiteral("x", "zzz", 9)])
        outcome = check_implication(sigma, phi)
        assert outcome.implied and outcome.mode == "inconsistent-X"

    def test_transitivity_of_variable_literals(self):
        q = Pattern({"x": "a", "y": "a", "z": "a"})
        sigma = [
            GED(q, [VariableLiteral("x", "A", "y", "A")], [VariableLiteral("x", "B", "y", "B")]),
        ]
        phi = GED(
            q,
            [VariableLiteral("x", "A", "y", "A")],
            [VariableLiteral("y", "B", "x", "B")],  # symmetric form
        )
        assert implies(sigma, phi)

    def test_constant_propagation(self):
        q = Pattern({"x": "a"})
        sigma = [
            GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "B", 2)]),
            GED(q, [ConstantLiteral("x", "B", 2)], [ConstantLiteral("x", "C", 3)]),
        ]
        phi = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "C", 3)])
        assert implies(sigma, phi)
        assert not implies(sigma, GED(q, [], [ConstantLiteral("x", "C", 3)]))

    def test_id_literal_gives_attribute_equality(self):
        """Merged nodes share attributes (id semantics in deduction)."""
        q = Pattern({"x": "a", "y": "a"})
        sigma = [GED(q, [VariableLiteral("x", "K", "y", "K")], [IdLiteral("x", "y")])]
        phi = GED(
            q,
            [VariableLiteral("x", "K", "y", "K"), VariableLiteral("x", "V", "x", "V")],
            [VariableLiteral("x", "V", "y", "V")],
        )
        assert implies(sigma, phi)

    def test_pattern_embedding_matters(self):
        """Σ's pattern must embed into G_Q for its FD to fire."""
        edge_pattern = Pattern({"x": "a", "y": "a"}, [("x", "r", "y")])
        no_edge = Pattern({"x": "a", "y": "a"})
        sigma = [GED(edge_pattern, [], [VariableLiteral("x", "A", "y", "A")])]
        phi_with_edge = GED(edge_pattern, [], [VariableLiteral("x", "A", "y", "A")])
        phi_without = GED(no_edge, [], [VariableLiteral("x", "A", "y", "A")])
        assert implies(sigma, phi_with_edge)
        assert not implies(sigma, phi_without)

    def test_keys_recursive_implication(self):
        """ψ1 + ψ3 do not trivially imply ψ2 (independent keys)."""
        assert not implies([paper.psi1(), paper.psi3()], paper.psi2())


class TestRedundancy:
    def test_redundant_duplicate_removed(self):
        sigma = [paper.phi2(), paper.phi2()]
        assert len(redundant_dependencies(sigma)) == 1
        assert len(minimal_cover(sigma)) == 1

    def test_implied_weaker_rule_removed(self):
        q = Pattern({"x": "a"})
        strong = GED(q, [], [ConstantLiteral("x", "A", 1)])
        weak = GED(q, [ConstantLiteral("x", "B", 5)], [ConstantLiteral("x", "A", 1)])
        cover = minimal_cover([strong, weak])
        assert cover == [strong]

    def test_independent_rules_kept(self):
        sigma = [paper.phi1(), paper.phi2()]
        assert redundant_dependencies(sigma) == []
        assert minimal_cover(sigma) == sigma
