"""Satisfiability tests: Theorem 2/3, Examples 5 and 6, model building."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.deps import FALSE, ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.graph import random_labeled_graph
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import (
    build_model,
    check_satisfiability,
    is_model,
    is_satisfiable,
    matches_all_patterns,
    satisfiable_bruteforce,
    validates,
)


class TestExamples5And6:
    """The paper's Examples 5 and 6 (Figure 3)."""

    def test_phi1_alone_satisfiable(self):
        assert is_satisfiable([paper.example5_phi1()])

    def test_phi2_alone_satisfiable(self):
        assert is_satisfiable([paper.example5_phi2()])

    def test_sigma1_unsatisfiable(self):
        """Σ1 = {φ1, φ2}: the homomorphism f : Q2 → Q1 forces y, z
        (distinct labels) to merge — Example 6 confirms by the chase."""
        outcome = check_satisfiability(paper.example5_sigma1())
        assert not outcome.satisfiable
        assert "label conflict" in outcome.reason

    def test_sigma2_unsatisfiable_without_homomorphic_patterns(self):
        """Example 5 (2): Q1 and Q2' are not homomorphic either way,
        yet Σ2 is still unsatisfiable."""
        from repro.chase import canonical_graph
        from repro.matching import has_match

        q1, q2p = paper.example5_q1(), paper.example5_q2_prime()
        assert not has_match(q1, canonical_graph(q2p))
        assert not has_match(q2p, canonical_graph(q1))
        assert not is_satisfiable(paper.example5_sigma2())

    def test_build_model_returns_none_when_unsat(self):
        assert build_model(paper.example5_sigma1()) is None


class TestBasicSatisfiability:
    def test_empty_sigma(self):
        assert is_satisfiable([])
        model = build_model([])
        assert model is not None and model.num_nodes == 1

    def test_single_gfd_satisfiable(self):
        assert is_satisfiable([paper.phi1()])
        model = build_model([paper.phi1()])
        assert is_model(model, [paper.phi1()])

    def test_forbidding_constraint_with_empty_x_unsatisfiable(self):
        """ϕ4 = Q4(∅ → false): a model must match Q4, and then false
        applies — strong satisfiability fails."""
        assert not is_satisfiable([paper.phi4()])

    def test_forbidding_constraint_with_nonempty_x_satisfiable(self):
        q = Pattern({"x": "item"})
        ged = GED(q, [ConstantLiteral("x", "bad", 1)], [FALSE])
        assert is_satisfiable([ged])
        model = build_model([ged])
        assert is_model(model, [ged])

    def test_conflicting_constants_unsatisfiable(self):
        q = Pattern({"x": "item"})
        sigma = [
            GED(q, [], [ConstantLiteral("x", "grade", "A")]),
            GED(q, [], [ConstantLiteral("x", "grade", "B")]),
        ]
        assert not is_satisfiable(sigma)

    def test_gkey_uoe_example(self):
        """Section 3's ϕ = Q[x, y](∅ → x.id = y.id) over two UoE nodes:
        satisfiable under homomorphism semantics (both map to one node)."""
        q = Pattern({"x": "UoE", "y": "UoE"})
        ged = GED(q, [], [IdLiteral("x", "y")])
        assert is_satisfiable([ged])
        model = build_model([ged])
        # The model collapses the two pattern nodes into one.
        assert model.num_nodes == 1
        assert is_model(model, [ged])

    def test_id_literal_label_conflict_unsatisfiable(self):
        q = Pattern({"x": "a", "y": "b"})
        assert not is_satisfiable([GED(q, [], [IdLiteral("x", "y")])])

    def test_paper_keys_jointly_satisfiable(self):
        sigma = [paper.psi1(), paper.psi2(), paper.psi3()]
        assert is_satisfiable(sigma)
        model = build_model(sigma)
        assert is_model(model, sigma)


class TestGFDxShortcut:
    def test_gfdx_sets_always_satisfiable(self):
        """Theorem 3: O(1) for GFDxs — no chase needed."""
        sigma = [paper.phi2(), paper.phi3()]
        outcome = check_satisfiability(sigma)
        assert outcome.satisfiable
        assert outcome.chase_result is None  # shortcut taken
        assert "O(1)" in outcome.reason

    def test_shortcut_agrees_with_chase(self):
        sigma = [paper.phi2(), paper.phi3()]
        assert check_satisfiability(sigma, use_shortcut=False).satisfiable

    def test_shortcut_not_taken_with_constants(self):
        outcome = check_satisfiability([paper.phi1()])
        assert outcome.chase_result is not None


def _random_tiny_sigma(seed: int) -> list[GED]:
    """Tiny random GED sets for oracle cross-checking (|G_Σ| ≤ 5)."""
    rng = random.Random(seed)
    sigma = []
    budget = 5
    while budget > 0 and (not sigma or rng.random() < 0.6):
        k = rng.randint(1, min(2, budget))
        budget -= k
        labels = {f"x{i}": rng.choice(["a", "b", WILDCARD]) for i in range(k)}
        variables = list(labels)
        edges = []
        if k == 2 and rng.random() < 0.5:
            edges.append(("x0", "r", "x1"))
        lits = []
        for _ in range(rng.randint(1, 2)):
            roll = rng.random()
            v1, v2 = rng.choice(variables), rng.choice(variables)
            if roll < 0.45:
                lits.append(ConstantLiteral(v1, "A", rng.choice([1, 2])))
            elif roll < 0.75:
                lits.append(VariableLiteral(v1, "A", v2, "A"))
            else:
                lits.append(IdLiteral(v1, v2))
        split = rng.randint(0, len(lits) - 1)
        sigma.append(GED(Pattern(labels, edges), lits[:split], lits[split:]))
    return sigma


class TestAgainstBruteForceOracle:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_chase_agrees_with_quotient_oracle(self, seed):
        """Theorem 2's procedure == exhaustive quotient enumeration."""
        sigma = _random_tiny_sigma(seed)
        fast = is_satisfiable(sigma, use_shortcut=False)
        slow, witness = satisfiable_bruteforce(sigma)
        assert fast == slow
        if slow:
            assert is_model(witness, sigma)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_built_models_are_models(self, seed):
        """Soundness of the Theorem 2 construction: whenever the chase
        says satisfiable, the constructed graph is a genuine model."""
        sigma = _random_tiny_sigma(seed)
        model = build_model(sigma)
        if model is not None:
            assert validates(model, sigma)
            assert matches_all_patterns(model, sigma)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_completeness_on_known_models(self, seed):
        """If a random graph G happens to satisfy Σ and match all its
        patterns, Σ has a model, so the chase must report satisfiable
        (the hard direction of Theorem 2)."""
        rng = random.Random(seed)
        g = random_labeled_graph(
            rng.randint(1, 4), 0.5, ["a", "b"], ["r"], rng=seed,
            attribute_names=["A"], attribute_values=[1, 2],
        )
        sigma = [ged for ged in _random_tiny_sigma(seed) if ged.pattern.size() <= 6]
        if sigma and is_model(g, sigma):
            assert is_satisfiable(sigma, use_shortcut=False)
