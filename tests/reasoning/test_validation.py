"""Validation tests: Theorem 6 semantics, violation witnesses, bounded case."""

import pytest

from repro import paper
from repro.deps import FALSE, ConstantLiteral, GED, IdLiteral, VariableLiteral
from repro.errors import DependencyError
from repro.graph import GraphBuilder
from repro.patterns import Pattern
from repro.reasoning import (
    find_violations,
    literal_holds,
    satisfies_ged,
    validate_bounded,
    validates,
)


def knowledge_graph():
    """A small KB with the Example 1 inconsistencies planted."""
    return (
        GraphBuilder()
        # Ghetto Blaster credited to a psychologist (violates ϕ1).
        .node("game", "product", type="video game", title="Ghetto Blaster")
        .node("tony", "person", type="psychologist", name="Tony Gibson")
        .edge("tony", "create", "game")
        # Finland with two differently-named capitals (violates ϕ2).
        .node("fin", "country", name="Finland")
        .node("hel", "city", name="Helsinki")
        .node("spb", "city", name="Saint Petersburg")
        .edge("fin", "capital", "hel")
        .edge("fin", "capital", "spb")
        # Birds can fly; moa is a bird but flightless (violates ϕ3).
        .node("bird", "class", can_fly="yes")
        .node("moa", "species", can_fly="no")
        .edge("moa", "is_a", "bird")
        # Philip both child and parent of William (violates ϕ4).
        .node("philip", "person", name="Philip Sclater")
        .node("william", "person", name="William Sclater")
        .edge("philip", "child", "william")
        .edge("philip", "parent", "william")
        .build()
    )


class TestLiteralSemantics:
    def test_constant_literal_requires_existence(self):
        g = GraphBuilder().node("n", "a").build()
        assert not literal_holds(g, ConstantLiteral("x", "A", 1), {"x": "n"})
        g2 = GraphBuilder().node("n", "a", A=1).build()
        assert literal_holds(g2, ConstantLiteral("x", "A", 1), {"x": "n"})
        assert not literal_holds(g2, ConstantLiteral("x", "A", 2), {"x": "n"})

    def test_variable_literal_requires_both(self):
        g = GraphBuilder().node("n", "a", A=1).node("m", "a").build()
        lit = VariableLiteral("x", "A", "y", "A")
        assert not literal_holds(g, lit, {"x": "n", "y": "m"})
        g.set_attribute("m", "A", 1)
        assert literal_holds(g, lit, {"x": "n", "y": "m"})

    def test_id_literal(self):
        g = GraphBuilder().node("n", "a").node("m", "a").build()
        assert literal_holds(g, IdLiteral("x", "y"), {"x": "n", "y": "n"})
        assert not literal_holds(g, IdLiteral("x", "y"), {"x": "n", "y": "m"})

    def test_false_never_holds(self):
        g = GraphBuilder().node("n", "a").build()
        assert not literal_holds(g, FALSE, {})


class TestExample1Violations:
    def test_phi1_catches_ghetto_blaster(self):
        violations = find_violations(knowledge_graph(), [paper.phi1()])
        assert len(violations) == 1
        assert violations[0].assignment["x"] == "game"
        assert "programmer" in str(violations[0])

    def test_phi2_catches_two_capitals(self):
        violations = find_violations(knowledge_graph(), [paper.phi2()])
        # Matches (hel, spb) and (spb, hel) both violate.
        assert {v.assignment["y"] for v in violations} == {"hel", "spb"}

    def test_phi3_catches_moa(self):
        violations = find_violations(knowledge_graph(), [paper.phi3()])
        assert any(v.assignment["y"] == "moa" for v in violations)

    def test_phi4_catches_child_and_parent(self):
        violations = find_violations(knowledge_graph(), [paper.phi4()])
        assert len(violations) == 1
        assert violations[0].failed == (FALSE,)

    def test_clean_graph_validates(self):
        g = (
            GraphBuilder()
            .node("game", "product", type="video game")
            .node("dev", "person", type="programmer")
            .edge("dev", "create", "game")
            .build()
        )
        sigma = [paper.phi1(), paper.phi2(), paper.phi3(), paper.phi4()]
        assert validates(g, sigma)

    def test_unsatisfied_x_is_not_a_violation(self):
        """ϕ2's pattern matches (y=z=hel) but those matches satisfy Y."""
        g = (
            GraphBuilder()
            .node("fin", "country")
            .node("hel", "city", name="Helsinki")
            .edge("fin", "capital", "hel")
            .build()
        )
        assert satisfies_ged(g, paper.phi2())


class TestGKeyValidation:
    def albums(self, same_artist_node: bool):
        b = (
            GraphBuilder()
            .node("a1", "album", title="Bleach", release=1989)
            .node("a2", "album", title="Bleach", release=1989)
        )
        if same_artist_node:
            b.node("art", "artist", name="Nirvana")
            b.edge("a1", "primary_artist", "art").edge("a2", "primary_artist", "art")
        else:
            b.node("art1", "artist", name="Nirvana")
            b.node("art2", "artist", name="Nirvana UK")
            b.edge("a1", "primary_artist", "art1").edge("a2", "primary_artist", "art2")
        return b.build()

    def test_psi1_fires_on_duplicates_with_shared_artist(self):
        g = self.albums(same_artist_node=True)
        violations = find_violations(g, [paper.psi1()])
        assert violations, "two Bleach albums by the same artist node must merge"

    def test_psi1_silent_for_distinct_artists(self):
        g = self.albums(same_artist_node=False)
        assert validates(g, [paper.psi1()])

    def test_psi2_fires_on_same_title_and_release(self):
        g = self.albums(same_artist_node=False)
        assert not validates(g, [paper.psi2()])


class TestViolationAPI:
    def test_limit(self):
        violations = find_violations(knowledge_graph(), [paper.phi2()], limit=1)
        assert len(violations) == 1

    def test_violation_reports_failed_literals(self):
        v = find_violations(knowledge_graph(), [paper.phi1()])[0]
        assert v.failed == (ConstantLiteral("y", "type", "programmer"),)
        assert v.ged.name == "phi1"

    def test_multiple_geds_aggregate(self):
        sigma = [paper.phi1(), paper.phi2(), paper.phi3(), paper.phi4()]
        violations = find_violations(knowledge_graph(), sigma)
        assert {v.ged.name for v in violations} == {"phi1", "phi2", "phi3", "phi4"}


class TestBoundedFacade:
    def test_bounded_accepts_small_patterns(self):
        g = knowledge_graph()
        violations = validate_bounded(g, [paper.phi1()], k=4)
        assert len(violations) == 1

    def test_bounded_rejects_large_patterns(self):
        with pytest.raises(DependencyError):
            validate_bounded(knowledge_graph(), [paper.phi5(k=4)], k=4)

    def test_bounded_satisfiability_and_implication(self):
        from repro.reasoning import implies_bounded, satisfiable_bounded

        q = Pattern({"x": "a"})
        ged = GED(q, [], [ConstantLiteral("x", "A", 1)])
        assert satisfiable_bounded([ged], k=2)
        assert implies_bounded([ged], ged, k=2)
