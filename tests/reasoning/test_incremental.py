"""Incremental validation: equivalence with full re-validation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.deps import ConstantLiteral, GED, VariableLiteral
from repro.graph import GraphBuilder, random_labeled_graph
from repro.patterns import Pattern
from repro.reasoning import find_violations
from repro.reasoning.incremental import (
    GraphUpdate,
    IncrementalLedger,
    apply_update,
    incremental_violations,
)


class TestGraphUpdate:
    def test_touched_nodes(self):
        update = GraphUpdate(
            nodes=[("n", "a", {})],
            edges=[("n", "r", "m")],
            attrs=[("k", "A", 1)],
        )
        assert update.touched_nodes() == {"n", "m", "k"}

    def test_apply_update(self):
        g = GraphBuilder().node("m", "a").build()
        apply_update(
            g,
            GraphUpdate(nodes=[("n", "b", {"A": 1})], edges=[("n", "r", "m")],
                        attrs=[("m", "B", 2)]),
        )
        assert g.has_node("n") and g.has_edge("n", "r", "m")
        assert g.node("m").get("B") == 2


class TestIncrementalViolations:
    def capital_rule(self):
        return paper.phi2()

    def test_new_violation_detected(self):
        g = (
            GraphBuilder()
            .node("fin", "country")
            .node("hel", "city", name="Helsinki")
            .edge("fin", "capital", "hel")
            .build()
        )
        assert not find_violations(g, [self.capital_rule()])
        update = GraphUpdate(
            nodes=[("spb", "city", {"name": "Saint Petersburg"})],
            edges=[("fin", "capital", "spb")],
        )
        apply_update(g, update)
        incremental = incremental_violations(g, [self.capital_rule()], update)
        full = find_violations(g, [self.capital_rule()])
        assert {v.match for v in incremental} == {v.match for v in full}

    def test_untouched_matches_skipped(self):
        """An update far from the rule's matches reports nothing."""
        g = (
            GraphBuilder()
            .node("fin", "country")
            .node("hel", "city", name="A")
            .node("spb", "city", name="B")
            .edge("fin", "capital", "hel")
            .edge("fin", "capital", "spb")
            .build()
        )
        update = GraphUpdate(nodes=[("lonely", "island", {})])
        apply_update(g, update)
        assert incremental_violations(g, [self.capital_rule()], update) == []

    def test_attribute_write_can_fix_and_break(self):
        q = Pattern({"x": "item"})
        rule = GED(q, [ConstantLiteral("x", "state", "on")],
                   [ConstantLiteral("x", "power", 1)])
        g = GraphBuilder().node("i", "item", state="off", power=0).build()
        assert not find_violations(g, [rule])
        update = GraphUpdate(attrs=[("i", "state", "on")])
        apply_update(g, update)
        hits = incremental_violations(g, [rule], update)
        assert len(hits) == 1

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_incremental_equals_full_on_touched(self, seed):
        """Post-update violations touching the update = incremental
        result; violations avoiding it existed before (completeness of
        the delta argument)."""
        rng = random.Random(seed)
        g = random_labeled_graph(
            rng.randint(2, 5), 0.4, ["a", "b"], ["r"], rng=seed,
            attribute_names=["A"], attribute_values=[1, 2],
        )
        q = Pattern({"x": "a", "y": "b"}, [("x", "r", "y")])
        sigma = [GED(q, [], [VariableLiteral("x", "A", "y", "A")])]
        before = {v.match for v in find_violations(g, sigma)}
        new_id = "fresh"
        target = rng.choice(g.node_ids)
        update = GraphUpdate(
            nodes=[(new_id, rng.choice(["a", "b"]), {"A": rng.choice([1, 2])})],
            edges=[(new_id, "r", target)],
        )
        apply_update(g, update)
        after = {v.match for v in find_violations(g, sigma)}
        touched = update.touched_nodes()
        incremental = {v.match for v in incremental_violations(g, sigma, update)}
        # Completeness: every genuinely new violation is found.
        assert (after - before) <= incremental
        # Soundness: everything reported is a real post-update violation.
        assert incremental <= after
        # Sharpness: reported matches all touch the update.
        for match in incremental:
            assert any(node in touched for _, node in match)


class TestLedger:
    def test_backwards_compatible_alias(self):
        from repro.reasoning.incremental import ViolationLedger

        assert ViolationLedger is IncrementalLedger

    def test_ledger_lifecycle(self):
        g = (
            GraphBuilder()
            .node("fin", "country")
            .node("hel", "city", name="A")
            .edge("fin", "capital", "hel")
            .build()
        )
        ledger = IncrementalLedger(g, [paper.phi2()])
        assert ledger.bootstrap() == []
        # Break it.
        new = ledger.refresh(
            GraphUpdate(nodes=[("spb", "city", {"name": "B"})],
                        edges=[("fin", "capital", "spb")])
        )
        assert new
        # Refresh with a no-op update: nothing new.
        assert ledger.refresh(GraphUpdate()) == []
        # Fix it: renaming retires the stale violations.
        fixed = ledger.refresh(GraphUpdate(attrs=[("spb", "name", "A")]))
        assert fixed == []
        assert ledger.known == set()
