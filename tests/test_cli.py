"""CLI tests: round trips through files and exit codes."""

import json

import pytest

from repro import paper
from repro.cli import main
from repro.deps.io import ged_to_dict
from repro.graph.io import graph_from_json, graph_to_json
from repro.graph import GraphBuilder


@pytest.fixture
def kb_files(tmp_path):
    dirty = (
        GraphBuilder()
        .node("fin", "country")
        .node("hel", "city", name="Helsinki")
        .node("spb", "city", name="Saint Petersburg")
        .edge("fin", "capital", "hel")
        .edge("fin", "capital", "spb")
        .build()
    )
    graph_path = tmp_path / "kb.json"
    graph_path.write_text(graph_to_json(dirty))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps([ged_to_dict(paper.phi2())]))
    return graph_path, rules_path


class TestValidate:
    def test_dirty_graph_exits_1(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        code = main(["validate", "--graph", str(graph_path), "--rules", str(rules_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "violation" in out and "phi2" in out

    def test_clean_graph_exits_0(self, tmp_path, capsys):
        clean = GraphBuilder().node("fin", "country").build()
        graph_path = tmp_path / "clean.json"
        graph_path.write_text(graph_to_json(clean))
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(json.dumps([ged_to_dict(paper.phi2())]))
        code = main(["validate", "--graph", str(graph_path), "--rules", str(rules_path)])
        assert code == 0
        assert "0 violation" in capsys.readouterr().out

    def test_limit_flag(self, kb_files, capsys):
        graph_path, rules_path = kb_files
        main(["validate", "--graph", str(graph_path), "--rules", str(rules_path),
              "--limit", "1"])
        assert "1 violation" in capsys.readouterr().out


class TestSatisfiable:
    def test_satisfiable_rules(self, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(json.dumps([ged_to_dict(paper.phi2())]))
        assert main(["satisfiable", "--rules", str(rules_path)]) == 0
        assert "satisfiable" in capsys.readouterr().out

    def test_unsatisfiable_rules(self, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(
            json.dumps([ged_to_dict(g) for g in paper.example5_sigma1()])
        )
        assert main(["satisfiable", "--rules", str(rules_path)]) == 1
        assert "unsatisfiable" in capsys.readouterr().out


class TestImplies:
    def test_implied(self, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(json.dumps([ged_to_dict(g) for g in paper.example7_sigma()]))
        phi_path = tmp_path / "phi.json"
        phi_path.write_text(json.dumps(ged_to_dict(paper.example7_phi())))
        assert main(["implies", "--rules", str(rules_path), "--phi", str(phi_path)]) == 0
        assert "implied" in capsys.readouterr().out

    def test_not_implied(self, tmp_path, capsys):
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(json.dumps([ged_to_dict(paper.example7_sigma()[0])]))
        phi_path = tmp_path / "phi.json"
        phi_path.write_text(json.dumps(ged_to_dict(paper.example7_phi())))
        assert main(["implies", "--rules", str(rules_path), "--phi", str(phi_path)]) == 1
        assert "not implied" in capsys.readouterr().out


class TestChase:
    def test_chase_writes_coercion(self, tmp_path, capsys):
        dup = (
            GraphBuilder()
            .node("c1", "city", name="Helsinki")
            .node("c2", "city", name="Helsinki")
            .build()
        )
        graph_path = tmp_path / "g.json"
        graph_path.write_text(graph_to_json(dup))
        from repro.deps import make_gkey
        from repro.patterns import Pattern

        key = make_gkey(Pattern({"x": "city"}), "x", value_attrs={"x": ["name"]})
        rules_path = tmp_path / "keys.json"
        rules_path.write_text(json.dumps([ged_to_dict(key)]))
        out_path = tmp_path / "out.json"
        code = main(["chase", "--graph", str(graph_path), "--rules", str(rules_path),
                     "-o", str(out_path)])
        assert code == 0
        merged = graph_from_json(out_path.read_text())
        assert merged.num_nodes == 1

    def test_inconsistent_chase_exits_1(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        graph_path.write_text(graph_to_json(paper.example4_graph()))
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(
            json.dumps([ged_to_dict(paper.example4_phi1()),
                        ged_to_dict(paper.example4_phi2())])
        )
        assert main(["chase", "--graph", str(graph_path), "--rules", str(rules_path)]) == 1
        assert "inconsistent" in capsys.readouterr().out


class TestErrors:
    def test_missing_file_exits_2(self, capsys):
        code = main(["satisfiable", "--rules", "/does/not/exist.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["satisfiable", "--rules", str(bad)]) == 2
