"""Figure 4 / Example 7: implication via chase(G_Q, Eq_X, Σ).

Regenerates the figure's derivation (Σ1 |= ϕ through the A/B attribute
bridge and wildcard/label merges) and scales it: a chain of k
attribute-bridging rules whose composition the chase must discover.
"""

import pytest

from repro import paper
from repro.deps import GED, IdLiteral, VariableLiteral
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import check_implication


def chained_instance(k: int):
    """Σ: Ai-agreement implies A(i+1)-agreement for i < k; A(k)
    agreement implies identity.  ϕ: A0-agreement implies identity."""
    q = Pattern({"x1": WILDCARD, "x2": WILDCARD})
    sigma = [
        GED(q, [VariableLiteral("x1", f"A{i}", "x2", f"A{i}")],
            [VariableLiteral("x1", f"A{i+1}", "x2", f"A{i+1}")])
        for i in range(k)
    ]
    sigma.append(
        GED(q, [VariableLiteral("x1", f"A{k}", "x2", f"A{k}")], [IdLiteral("x1", "x2")])
    )
    phi = GED(q, [VariableLiteral("x1", "A0", "x2", "A0")], [IdLiteral("x1", "x2")])
    return sigma, phi


def test_example7_implication(benchmark):
    sigma, phi = paper.example7_sigma(), paper.example7_phi()

    outcome = benchmark(lambda: check_implication(sigma, phi))
    assert outcome.implied and outcome.mode == "deduced"
    benchmark.extra_info["chase_steps"] = len(outcome.chase_result.steps)


def test_example7_weakened_sigma(benchmark):
    sigma = paper.example7_sigma()[:1]

    outcome = benchmark(lambda: check_implication(sigma, paper.example7_phi()))
    assert not outcome.implied


@pytest.mark.parametrize("k", [2, 4, 8])
def test_chained_bridges(benchmark, k):
    sigma, phi = chained_instance(k)

    outcome = benchmark(lambda: check_implication(sigma, phi))
    assert outcome.implied
    benchmark.extra_info["chain"] = k
    benchmark.extra_info["chase_steps"] = len(outcome.chase_result.steps)
