"""Streaming benchmarks: ledger maintenance vs full revalidation.

The streaming claim (ISSUE 3): maintaining the violation set with
:class:`repro.streaming.ViolationLedger` — retirement re-checks confined
to ledger entries meeting the batch, introduction scans confined to a
pattern-radius ball around the batch's touched nodes — beats re-running
:func:`~repro.reasoning.validation.find_violations` from scratch after
every batch by **at least 5x per batch** on the churn workload, while
staying byte-identical to it.

:func:`run_streaming_bench` is the shared measurement kernel: the
pytest entry points below assert the correctness half and emit wall
clocks, and the CI perf gate (``benchmarks/perf_gate.py``) runs the
same kernel against the thresholds committed in
``benchmarks/baseline.json`` and writes ``BENCH_streaming.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py -q
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.indexing import attach_index  # noqa: E402
from repro.reasoning import find_violations  # noqa: E402
from repro.reasoning.incremental import apply_update  # noqa: E402
from repro.streaming import (  # noqa: E402
    ViolationLedger,
    canonical_report,
    violation_to_dict,
)
from repro.workloads import churn_stream  # noqa: E402

DEFAULT_CONFIG = {
    "nodes": 400,
    "batches": 12,
    "batch_size": 8,
    "delete_fraction": 0.35,
    "rng": 13,
    "indexed": True,
}


def run_streaming_bench(
    nodes: int = 400,
    batches: int = 12,
    batch_size: int = 8,
    delete_fraction: float = 0.35,
    rng: int = 13,
    indexed: bool = True,
) -> dict:
    """Replay one churn stream twice — ledger-maintained vs full
    revalidation per batch — and return records plus the speedup.

    Both paths see identical graphs and the same index policy; the full
    path pays ``find_violations`` on the whole graph after every batch,
    the ledger path pays only its delta.  Reports are asserted equal
    per batch (counts) and byte-identical at the end.
    """
    stream = churn_stream(
        n_nodes=nodes,
        batches=batches,
        batch_size=batch_size,
        delete_fraction=delete_fraction,
        rng=rng,
    )
    ledger_graph = stream.base.copy()
    full_graph = stream.base.copy()
    if indexed:
        attach_index(ledger_graph)
        attach_index(full_graph)

    ledger = ViolationLedger(ledger_graph, stream.sigma)
    started = time.perf_counter()
    ledger.bootstrap()
    bootstrap_seconds = time.perf_counter() - started

    records: list[dict] = []
    ledger_total = 0.0
    full_total = 0.0
    for batch_index, update in enumerate(stream.updates, start=1):
        started = time.perf_counter()
        delta = ledger.refresh(update)
        ledger_seconds = time.perf_counter() - started

        started = time.perf_counter()
        apply_update(full_graph, update)
        full_report = find_violations(full_graph, stream.sigma)
        full_seconds = time.perf_counter() - started

        assert len(ledger.violations()) == len(full_report), (
            f"batch {batch_index}: ledger {len(ledger.violations())} != "
            f"full {len(full_report)}"
        )
        ledger_total += ledger_seconds
        full_total += full_seconds
        records.append(
            {
                "batch": batch_index,
                "operations": update.size(),
                "touched": delta.touched,
                "introduced": len(delta.introduced),
                "retired": len(delta.retired),
                "updated": len(delta.updated),
                "rechecked": delta.rechecked,
                "ledger_wall_s": ledger_seconds,
                "full_wall_s": full_seconds,
                "violations": len(full_report),
            }
        )

    ledger_bytes = [violation_to_dict(v) for v in ledger.violations()]
    full_bytes = [
        violation_to_dict(v)
        for v in canonical_report(stream.sigma, find_violations(full_graph, stream.sigma))
    ]
    assert ledger_bytes == full_bytes, "ledger diverged from full revalidation"

    return {
        "config": {
            "nodes": nodes,
            "batches": batches,
            "batch_size": batch_size,
            "delete_fraction": delete_fraction,
            "rng": rng,
            "indexed": indexed,
        },
        "records": records,
        "bootstrap_wall_s": bootstrap_seconds,
        "ledger_wall_s": ledger_total,
        "full_wall_s": full_total,
        "speedup_per_batch": (full_total / ledger_total) if ledger_total else float("inf"),
        "final_violations": len(ledger_bytes),
    }


# ----------------------------------------------------------------------
# pytest entry points (run in CI's test job with --benchmark-disable)
# ----------------------------------------------------------------------


def test_ledger_matches_full_revalidation_per_batch():
    """The correctness half of the streaming claim, on the gate's
    workload shape (smaller size so the assertion-only run stays
    quick); byte-identity is asserted inside the kernel."""
    result = run_streaming_bench(nodes=150, batches=8, rng=13)
    assert result["final_violations"] >= 0
    assert len(result["records"]) == 8


def test_ledger_beats_full_revalidation(benchmark=None):
    """The performance half: ledger maintenance is faster per batch than
    full revalidation on the committed workload (the CI gate enforces
    the 5x floor; this in-suite check uses a conservative 2x so shared
    test runners stay green)."""
    result = run_streaming_bench(**DEFAULT_CONFIG)
    assert result["speedup_per_batch"] > 2.0, (
        f"ledger maintenance only {result['speedup_per_batch']:.1f}x faster "
        f"than full revalidation"
    )
    _emit(result)


def _emit(result: dict) -> None:
    from benchmarks._emit import emit_bench

    emit_bench(
        "streaming",
        result["records"],
        meta={
            "config": result["config"],
            "bootstrap_wall_s": result["bootstrap_wall_s"],
            "ledger_wall_s": result["ledger_wall_s"],
            "full_wall_s": result["full_wall_s"],
            "speedup_per_batch": result["speedup_per_batch"],
            "final_violations": result["final_violations"],
        },
    )


if __name__ == "__main__":
    import json

    outcome = run_streaming_bench(**DEFAULT_CONFIG)
    _emit(outcome)
    print(json.dumps({k: v for k, v in outcome.items() if k != "records"}, indent=2))
