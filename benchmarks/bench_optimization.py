"""Query-optimization benchmark: chase-based pattern minimization pays.

The paper's Section 4 use case (b): chase a graph representing a query
Q with Σ to optimize Q.  The measurable payoff is downstream: a merged
pattern has fewer variables, so match enumeration on the data graph
explores a smaller search tree.  We time (minimize + match) vs. plain
match on a workload where Σ's key merges two query variables, and
attach the match counts that explain the gap.

Also covers the core fold: patterns padded with redundant generic limbs
(the realistic artifact of machine-generated queries) shrink to their
core, with match-time savings proportional to the removed limbs.
"""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import IdLiteral
from repro.graph.graph import Graph
from repro.matching.homomorphism import count_matches
from repro.optimization.minimize import core, minimize_pattern
from repro.patterns.labels import WILDCARD
from repro.patterns.pattern import Pattern

COUNTRIES = [20, 40, 80]


def capitals_graph(n: int) -> Graph:
    g = Graph()
    for i in range(n):
        g.add_node(f"c{i}", "country")
        g.add_node(f"k{i}", "city", {"name": f"capital{i}"})
        g.add_edge(f"c{i}", "capital", f"k{i}")
    return g


def one_capital_key() -> GED:
    q = Pattern(
        {"c": "country", "p": "city", "q": "city"},
        [("c", "capital", "p"), ("c", "capital", "q")],
    )
    return GED(q, [], [IdLiteral("p", "q")], name="one-capital")


def join_query() -> Pattern:
    return Pattern(
        {"x": "country", "y": "city", "z": "city"},
        [("x", "capital", "y"), ("x", "capital", "z")],
    )


@pytest.mark.parametrize("n", COUNTRIES)
def test_match_without_minimization(benchmark, n):
    g = capitals_graph(n)
    q = join_query()
    matches = benchmark(lambda: count_matches(q, g))
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["query_vars"] = q.num_variables


@pytest.mark.parametrize("n", COUNTRIES)
def test_match_with_minimization(benchmark, n):
    g = capitals_graph(n)
    q = join_query()
    sigma = [one_capital_key()]

    def optimized() -> int:
        reduced = minimize_pattern(q, sigma).pattern
        return count_matches(reduced, g)

    matches = benchmark(optimized)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["query_vars"] = minimize_pattern(q, sigma).pattern.num_variables


@pytest.mark.parametrize("limbs", [1, 2, 4])
def test_core_fold_of_padded_patterns(benchmark, limbs):
    nodes = {"x": "country", "y": "city"}
    edges = [("x", "capital", "y")]
    for i in range(limbs):
        nodes[f"u{i}"] = WILDCARD
        nodes[f"w{i}"] = WILDCARD
        edges.append((f"u{i}", "capital", f"w{i}"))
    padded = Pattern(nodes, edges)

    folded, _ = benchmark(lambda: core(padded))
    assert folded.num_variables == 2
    benchmark.extra_info["input_vars"] = padded.num_variables


def test_shape_minimized_query_enumerates_less():
    """On graphs satisfying the key, the minimized query returns one
    row per country instead of one per (capital, capital) pair — same
    information, strictly less enumeration."""
    g = capitals_graph(30)
    q = join_query()
    sigma = [one_capital_key()]
    reduced = minimize_pattern(q, sigma)
    assert reduced.merged_any
    plain = count_matches(q, g)
    optimized = count_matches(reduced.pattern, g)
    assert optimized <= plain
    assert optimized == 30  # one per country
