"""Figure 2 / Example 4: chasing a graph, valid and invalid sequences.

Regenerates the figure's two chase runs (Σ1 valid with the v1/v2
merge; Σ2 invalid with the w1/w2 label conflict) and scales the same
structure to wider graphs: m source nodes sharing an attribute value,
each pointing at a distinctly-labeled sink — φ1 merges all sources,
then φ2 tries to merge the sinks and fails.
"""

import pytest

from repro import paper
from repro.chase import chase
from repro.deps import GED, IdLiteral, VariableLiteral
from repro.graph import Graph
from repro.patterns import Pattern


def wide_example4(m: int) -> Graph:
    g = Graph()
    for i in range(m):
        g.add_node(f"v{i}", "a", A=1)
        g.add_node(f"w{i}", f"sink{i}")  # pairwise distinct labels
        g.add_edge(f"v{i}", "r", f"w{i}")
    return g


def test_example4_sigma1_valid(benchmark):
    g = paper.example4_graph()
    sigma = [paper.example4_phi1()]

    result = benchmark(lambda: chase(g.copy(), sigma))
    assert result.consistent and result.graph.num_nodes == 3


def test_example4_sigma2_invalid(benchmark):
    g = paper.example4_graph()
    sigma = [paper.example4_phi1(), paper.example4_phi2()]

    result = benchmark(lambda: chase(g.copy(), sigma))
    assert not result.consistent and "label conflict" in result.reason


@pytest.mark.parametrize("m", [4, 8, 16])
def test_scaled_example4(benchmark, m):
    """The Example 4 structure at width m: m-1 merges, then ⊥."""
    g = wide_example4(m)
    sigma = [paper.example4_phi1(), paper.example4_phi2()]

    result = benchmark(lambda: chase(g.copy(), sigma))
    assert not result.consistent
    benchmark.extra_info["width"] = m
    benchmark.extra_info["steps"] = len(result.steps)


@pytest.mark.parametrize("m", [4, 8, 16])
def test_scaled_entity_merge_valid(benchmark, m):
    """The valid side at width m: all same-keyed wildcard entities merge
    into one (m-1 id steps), no conflicts."""
    g = Graph()
    for i in range(m):
        g.add_node(f"e{i}", "entity", key="K")
    pattern = Pattern({"x": "entity", "y": "entity"})
    key_rule = GED(pattern, [VariableLiteral("x", "key", "y", "key")],
                   [IdLiteral("x", "y")])

    result = benchmark(lambda: chase(g.copy(), [key_rule]))
    assert result.consistent and result.graph.num_nodes == 1
    benchmark.extra_info["merges"] = len(result.steps)
