"""The one machine-readable benchmark format (``BENCH_<name>.json``).

Every bench in this directory — and the CI perf gate — emits results
through :func:`emit_bench`, so trajectory tooling and the perf job
consume a single schema::

    {
      "bench": "<name>",
      "format": 1,
      "meta": {"python": "...", "cpu_count": N, ...},
      "records": [{...}, ...]
    }

Records are bench-specific dictionaries (wall-clock seconds, work
counters, backend/worker labels); ``meta`` carries the machine context
needed to interpret them.  Files land in ``benchmarks/out/`` by default
(git-ignored scratch output; CI uploads them as artifacts).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

DEFAULT_DIR = Path(__file__).resolve().parent / "out"

FORMAT_VERSION = 1


def git_sha() -> str | None:
    """The repo HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def measure(call, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall clock (noise-robust on shared runners).

    The one timing helper the perf gate and the bench kernels share, so
    a methodology change (warm-ups, median) reaches all of them at once.
    """
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = call()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_payload(
    name: str,
    records: list[dict[str, Any]],
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The full document written for one bench.

    ``meta`` always carries run provenance — the emitting commit, a UTC
    timestamp, and the interpreter/machine context — so an archived
    ``BENCH_*.json`` artifact is traceable without its CI run.
    """
    return {
        "bench": name,
        "format": FORMAT_VERSION,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "git_sha": git_sha(),
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            **(meta or {}),
        },
        "records": records,
    }


def emit_bench(
    name: str,
    records: list[dict[str, Any]],
    meta: dict[str, Any] | None = None,
    directory: str | os.PathLike | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path."""
    out_dir = Path(directory) if directory is not None else DEFAULT_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    payload = bench_payload(name, records, meta)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path


__all__ = [
    "DEFAULT_DIR",
    "FORMAT_VERSION",
    "bench_payload",
    "emit_bench",
    "git_sha",
    "measure",
]
