"""Table 1, GED∨ row (Theorem 9).

Paper's claims: satisfiability Σp2-complete, implication Πp2-complete,
validation coNP-complete — disjunction costs as much as built-in
predicates, while validation stays at the GED level.

Reproduced shape: the disjunctive chase explores a branch tree that
grows with the number of disjunctive choices — and must *exhaust* an
exponential tree on unsatisfiable interacting instances like the GGCP
reduction (counted via ``DisjunctiveChaseStats``); validation over
data graphs scales with |G| like plain GED validation.
"""

import pytest

from repro.deps import ConstantLiteral
from repro.extensions import (
    DisjunctiveChaseStats,
    GEDVee,
    disjunctive_chase_satisfiable,
    domain_constraint_vee,
    vee_find_violations,
    vee_implies,
)
from repro.graph import complete_graph, path_graph
from repro.patterns import Pattern
from repro.reductions import gedvee_ggcp_instance
from repro.workloads import validation_workload

GGCP_CASES = [("path2-k2", path_graph(2), 2), ("k3-k3", complete_graph(3), 3)]


def choice_chain(m: int) -> list[GEDVee]:
    """m independent binary choices, each with its first option
    forbidden — the chase must branch and recover m times."""
    sigma: list[GEDVee] = []
    for i in range(m):
        q = Pattern({f"x{i}": f"slot{i}"})
        sigma.append(
            GEDVee(
                q,
                [],
                [ConstantLiteral(f"x{i}", "bit", 0), ConstantLiteral(f"x{i}", "bit", 1)],
                name=f"choose{i}",
            )
        )
        sigma.append(
            GEDVee(q, [ConstantLiteral(f"x{i}", "bit", 0)], [], name=f"forbid0_{i}")
        )
    return sigma


@pytest.mark.parametrize("name,f,k", GGCP_CASES, ids=[c[0] for c in GGCP_CASES])
def test_gedvee_satisfiability_ggcp(benchmark, name, f, k):
    """Σp2 row: the three-GED∨ GGCP reduction via disjunctive chase."""
    sigma = gedvee_ggcp_instance(f, k)

    def run():
        stats = DisjunctiveChaseStats()
        ok, _ = disjunctive_chase_satisfiable(sigma, stats=stats)
        return ok, stats

    ok, stats = benchmark(run)
    assert ok
    benchmark.extra_info["branches"] = stats.branches
    benchmark.extra_info["max_depth"] = stats.max_depth


@pytest.mark.parametrize("m", [2, 4, 6])
def test_disjunctive_chase_branch_scaling(benchmark, m):
    """Σp2 row, second axis: branch counts grow with choice count."""
    sigma = choice_chain(m)

    def run():
        stats = DisjunctiveChaseStats()
        ok, _ = disjunctive_chase_satisfiable(sigma, stats=stats)
        return ok, stats

    ok, stats = benchmark(run)
    assert ok
    benchmark.extra_info["branches"] = stats.branches


@pytest.mark.parametrize("size", [100, 400])
def test_gedvee_validation_stays_cheap(benchmark, size):
    """coNP validation row: disjunctive checking is per-match work."""
    graph = validation_workload(size, rng=5)
    psi = domain_constraint_vee("item", "score", [1, 2, 3])

    violations = benchmark(lambda: vee_find_violations(graph, [psi]))
    benchmark.extra_info["data_nodes"] = size
    benchmark.extra_info["violations"] = len(violations)


def test_gedvee_implication_counterexample(benchmark):
    """Πp2 row: disjunction weakening / strengthening."""
    psi = domain_constraint_vee("item", "A", [0, 1])
    strong = GEDVee(Pattern({"x": "item"}), [], [ConstantLiteral("x", "A", 0)])

    def run():
        return vee_implies([psi], strong)

    implied, counterexample = benchmark(run)
    assert not implied and counterexample is not None


def test_shape_branches_grow_validation_does_not():
    """The Table 1 asymmetry for GED∨s, in work counters."""
    branch_counts = []
    for m in (2, 4, 6):
        stats = DisjunctiveChaseStats()
        ok, _ = disjunctive_chase_satisfiable(choice_chain(m), stats=stats)
        assert ok
        branch_counts.append(stats.branches)
    assert branch_counts == sorted(branch_counts)
    assert branch_counts[-1] > branch_counts[0]

    psi = domain_constraint_vee("item", "score", [1, 2, 3])
    small = len(vee_find_violations(validation_workload(50, rng=1), [psi]))
    big = len(vee_find_violations(validation_workload(200, rng=1), [psi]))
    assert big <= 4 * max(1, small) * 4  # linear-ish in the data
