#!/usr/bin/env python
"""The CI perf-regression gate for the matching core, the Σ-DAG,
engine runtime, streaming, the fragmented graph core, the telemetry
layer, and the push server.

Seven gates, all against thresholds committed in
``benchmarks/baseline.json``:

* **matching** — plan-compiled validation versus the seed interpreter
  on the committed reference workload (the kernel of
  ``benchmarks/bench_matching.py``, which also asserts byte-identical
  violation reports and match streams); fails when the compiled-plan
  speedup drops below its floor (≥ 3x).  Emits ``BENCH_matching.json``.
* **sigma** — the shared Σ-DAG (:mod:`repro.matching.sigma_dag`)
  versus per-rule plans on the committed Σ-overlapping workload (the
  kernel of ``benchmarks/bench_discovery.py``, which also asserts
  byte-identical violation reports and match counts); fails when
  either the multi-rule validation speedup or the discovery
  support-counting speedup drops below its floor (both ≥ 2x).  Emits
  ``BENCH_discovery.json``.
* **engine** — wall-clock for every validation backend over a worker
  sweep on the committed reference workload, asserting the violation
  reports are byte-identical across backends; fails when the warm
  engine's speedup over the serial backend drops below its floor.
  Emits ``BENCH_engine.json``.
* **streaming** — per-batch ledger maintenance
  (:class:`repro.streaming.ViolationLedger`) versus full revalidation
  on the committed churn workload (the kernel of
  ``benchmarks/bench_streaming.py``, which also asserts byte-identity
  of the maintained and recomputed reports); fails when the per-batch
  speedup drops below its floor (≥ 5x).  Emits ``BENCH_streaming.json``.
* **fragments** — the fragmented graph core (the kernel of
  ``benchmarks/bench_fragments.py``): the largest fragment-resident
  per-worker broadcast at 4 greedy fragments of the clustered workload
  must stay ≤ 0.5x the whole-graph snapshot, and the in-process
  ``fragment`` validation backend must stay ≥ 1.0x the warm ``engine``
  backend on the reference workload, byte-identically.  Emits
  ``BENCH_fragments.json``.
* **telemetry** — instrumentation overhead on serial validation of the
  reference workload: disabled (the null-sink default) must stay within
  5% of a back-to-back reference run, enabled within 15%, and the
  violation reports must be byte-identical either way.  Emits
  ``BENCH_telemetry.json`` plus the enabled run's NDJSON trace
  (``telemetry.ndjson``, uploaded as a CI artifact).
* **serve** — the violation-subscription push server (the kernel of
  ``benchmarks/bench_serve.py``): one server sustaining the committed
  load shape (50 subscribers, 20 update batches/s for 30 s) with every
  subscriber's delta stream gap-free and resync-free, a p99
  end-to-end push latency ≤ 250 ms, and per-batch delta maintenance
  ≥ 5x cheaper than per-subscriber full revalidation.  Emits
  ``BENCH_serve.json``.

Run it locally exactly as CI does::

    python benchmarks/perf_gate.py                # gate against baseline.json
    python benchmarks/perf_gate.py --no-gate      # measure + emit only

The thresholds are deliberately conservative: they hold on a 1-core
container and leave the multi-core CI runners ample margin.  Since the
plan-compiled matching core, the *serial* baseline enjoys the same
per-pattern compilation caching warm engine workers do, so on one core
the engine's contract is broadcast amortization (warm vs cold-process
floor) plus a bounded-dispatch-overhead sanity floor vs serial — its
vs-serial edge is real parallel scale-out, which a 1-core container
cannot show.  The ledger's edge is work proportional to each batch's
neighborhood instead of |G|.  See benchmarks/README.md for the refresh
procedure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks._emit import emit_bench, measure  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH, help="thresholds file")
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=Path(__file__).resolve().parent / "out",
        help="where the BENCH_*.json files land (default: benchmarks/out)",
    )
    parser.add_argument("--no-gate", action="store_true", help="measure and emit, never fail")
    args = parser.parse_args(argv)

    from repro.engine import get_pool, pool_for, shutdown_pools
    from repro.indexing import attach_index, detach_index
    from repro.parallel import parallel_find_violations
    from repro.workloads import bounded_rule_set, validation_workload

    baseline = json.loads(args.baseline.read_text())
    workload = baseline["workload"]
    gate_workers = baseline["gate_workers"]
    repeats = baseline["repeats"]
    thresholds = baseline["thresholds"]

    # ------------------------------------------------------------------
    # Matching gate: plan-compiled validation vs the seed interpreter.
    # ------------------------------------------------------------------
    from benchmarks.bench_matching import run_matching_bench

    matching_conf = baseline["matching"]
    matching_workload = matching_conf["workload"]
    matching_thresholds = matching_conf["thresholds"]
    print(
        f"matching workload: validation_workload({matching_workload['nodes']}, "
        f"rng={matching_workload['rng']}), best of {matching_conf['repeats']}"
    )
    matching = run_matching_bench(
        nodes=matching_workload["nodes"],
        rng=matching_workload["rng"],
        repeats=matching_conf["repeats"],
    )
    for record in matching["records"]:
        print(
            f"  {record['matcher']:<5} ({record['mode']:<9})  "
            f"{record['wall_s'] * 1000:8.2f} ms  "
            f"{record['violations']} violation(s)"
        )
    print(
        f"  plan_vs_seed: {matching['speedup_unindexed']:.2f}x unindexed, "
        f"{matching['speedup_indexed']:.2f}x indexed "
        f"(streams byte-identical)"
    )
    matching_path = emit_bench(
        "matching",
        matching["records"],
        meta={
            "workload": matching_workload,
            "repeats": matching_conf["repeats"],
            "speedup_unindexed": matching["speedup_unindexed"],
            "speedup_indexed": matching["speedup_indexed"],
            "thresholds": matching_thresholds,
        },
        directory=args.output_dir,
    )
    print(f"wrote {matching_path}")

    # ------------------------------------------------------------------
    # Sigma gate: the shared Σ-DAG vs per-rule plans, both consumers.
    # ------------------------------------------------------------------
    from benchmarks.bench_discovery import run_sigma_bench

    sigma_conf = baseline["sigma"]
    sigma_workload = sigma_conf["workload"]
    sigma_thresholds = sigma_conf["thresholds"]
    print(
        f"sigma workload: overlapping_workload({sigma_workload['nodes']}, "
        f"rng={sigma_workload['rng']}) + overlapping_rule_set"
        f"({sigma_workload['variants']}), best of {sigma_conf['repeats']}"
    )
    sigma_bench = run_sigma_bench(
        nodes=sigma_workload["nodes"],
        rng=sigma_workload["rng"],
        variants=sigma_workload["variants"],
        repeats=sigma_conf["repeats"],
    )
    for record in sigma_bench["records"]:
        detail = (
            f"{record['rules']} rule(s), {record['violations']} violation(s)"
            if record["section"] == "validation"
            else f"{record['patterns']} pattern(s), {record['total_matches']} match(es)"
        )
        print(
            f"  {record['section']:<10} {record['executor']:<9}  "
            f"{record['wall_s'] * 1000:8.2f} ms  {detail}"
        )
    print(
        f"  sigma_vs_per_rule: {sigma_bench['speedup_validation']:.2f}x validation, "
        f"{sigma_bench['speedup_discovery']:.2f}x discovery "
        f"(reports and counts byte-identical)"
    )
    sigma_path = emit_bench(
        "discovery",
        sigma_bench["records"],
        meta={
            "config": sigma_bench["config"],
            "dag_shape": sigma_bench["dag_shape"],
            "speedup_validation": sigma_bench["speedup_validation"],
            "speedup_discovery": sigma_bench["speedup_discovery"],
            "thresholds": sigma_thresholds,
        },
        directory=args.output_dir,
    )
    print(f"wrote {sigma_path}")

    graph = validation_workload(workload["nodes"], rng=workload["rng"])
    sigma = bounded_rule_set()

    records: list[dict] = []
    reports: dict[str, object] = {}

    def run(backend: str, workers: int, label: str, reps: int = repeats):
        wall, report = measure(
            lambda: parallel_find_violations(graph, sigma, workers=workers, backend=backend),
            reps,
        )
        records.append(
            {
                "backend": backend,
                "label": label,
                "workers": workers,
                "wall_s": wall,
                "violations": len(report.violations),
                "matches": report.total_matches(),
                "indexed": report.indexed,
            }
        )
        reports[f"{label}@{workers}"] = report
        print(f"  {label:<22} workers={workers}  {wall * 1000:8.2f} ms")
        return wall

    print(f"workload: validation_workload({workload['nodes']}, rng={workload['rng']})")
    print(f"repeats:  best of {repeats}")

    detach_index(graph)
    serial_by_workers = {}
    for workers in (1, 2, gate_workers, 8):
        serial_by_workers[workers] = run("serial", workers, "serial (unindexed)")
    thread_wall = run("thread", gate_workers, "thread (unindexed)")

    attach_index(graph)
    serial_indexed = run("serial", gate_workers, "serial (indexed)")

    # Cold = first engine call builds + broadcasts the pool.
    cold_wall, cold_report = measure(
        lambda: parallel_find_violations(graph, sigma, workers=gate_workers, backend="engine"),
        1,
    )
    records.append(
        {
            "backend": "engine",
            "label": "engine (cold start)",
            "workers": gate_workers,
            "wall_s": cold_wall,
            "violations": len(cold_report.violations),
            "matches": cold_report.total_matches(),
            "indexed": cold_report.indexed,
        }
    )
    reports[f"engine-cold@{gate_workers}"] = cold_report
    print(f"  {'engine (cold start)':<22} workers={gate_workers}  {cold_wall * 1000:8.2f} ms")

    engine_by_workers = {}
    for workers in (2, gate_workers, 8):
        parallel_find_violations(graph, sigma, workers=workers, backend="engine")  # warm
        engine_by_workers[workers] = run("engine", workers, "engine (warm)")
    process_wall = run("process", gate_workers, "process (one-shot)", reps=3)

    pool = get_pool(graph, gate_workers)
    broadcast_bytes = pool.broadcast_bytes
    assert pool_for(graph) is pool
    shutdown_pools()

    # ------------------------------------------------------------------
    # Correctness: every backend's report must be identical.
    # ------------------------------------------------------------------
    reference = reports[f"serial (unindexed)@{gate_workers}"].violations
    mismatched = [key for key, report in reports.items() if report.violations != reference]
    if mismatched:
        print(f"FAIL: backends diverged from serial: {mismatched}", file=sys.stderr)
        return 1
    print(f"violations: {len(reference)} — identical across all backends")

    serial_wall = serial_by_workers[gate_workers]
    engine_wall = engine_by_workers[gate_workers]
    speedups = {
        "engine_warm_vs_serial": serial_wall / engine_wall,
        "engine_warm_vs_serial_indexed": serial_indexed / engine_wall,
        "engine_warm_vs_thread": thread_wall / engine_wall,
        "engine_warm_vs_process_cold": process_wall / engine_wall,
    }
    for name, value in speedups.items():
        print(f"  {name}: {value:.2f}x")

    path = emit_bench(
        "engine",
        records,
        meta={
            "workload": workload,
            "gate_workers": gate_workers,
            "repeats": repeats,
            "speedups": speedups,
            "broadcast_bytes": broadcast_bytes,
            "thresholds": thresholds,
        },
        directory=args.output_dir,
    )
    print(f"wrote {path}")

    # ------------------------------------------------------------------
    # Streaming gate: ledger maintenance vs full revalidation per batch.
    # ------------------------------------------------------------------
    from benchmarks.bench_streaming import run_streaming_bench

    streaming_conf = baseline["streaming"]
    streaming_workload = streaming_conf["workload"]
    streaming_thresholds = streaming_conf["thresholds"]
    print(
        f"streaming workload: churn_stream(nodes={streaming_workload['nodes']}, "
        f"batches={streaming_workload['batches']}, rng={streaming_workload['rng']})"
    )
    streaming = run_streaming_bench(
        nodes=streaming_workload["nodes"],
        batches=streaming_workload["batches"],
        batch_size=streaming_workload["batch_size"],
        delete_fraction=streaming_workload["delete_fraction"],
        rng=streaming_workload["rng"],
        indexed=streaming_workload["indexed"],
    )
    print(
        f"  ledger maintenance   {streaming['ledger_wall_s'] * 1000:8.2f} ms "
        f"over {streaming_workload['batches']} batch(es)"
    )
    print(f"  full revalidation    {streaming['full_wall_s'] * 1000:8.2f} ms")
    print(
        f"  ledger_vs_full_per_batch: {streaming['speedup_per_batch']:.2f}x "
        f"(reports byte-identical; {streaming['final_violations']} final violation(s))"
    )
    streaming_path = emit_bench(
        "streaming",
        streaming["records"],
        meta={
            "workload": streaming_workload,
            "bootstrap_wall_s": streaming["bootstrap_wall_s"],
            "ledger_wall_s": streaming["ledger_wall_s"],
            "full_wall_s": streaming["full_wall_s"],
            "speedup_per_batch": streaming["speedup_per_batch"],
            "final_violations": streaming["final_violations"],
            "thresholds": streaming_thresholds,
        },
        directory=args.output_dir,
    )
    print(f"wrote {streaming_path}")

    # ------------------------------------------------------------------
    # Fragments gate: per-worker broadcast vs whole graph, and the
    # fragment backend vs the warm engine backend.
    # ------------------------------------------------------------------
    from benchmarks.bench_fragments import run_fragments_bench

    fragments_conf = baseline["fragments"]
    fragments_workload = fragments_conf["workload"]
    fragments_thresholds = fragments_conf["thresholds"]
    print(
        f"fragments workload: clustered_workload({fragments_workload['nodes']}, "
        f"clusters={fragments_workload['clusters']}) + validation_workload"
        f"({fragments_workload['nodes']}), {fragments_workload['fragments']} fragment(s)"
    )
    fragments = run_fragments_bench(
        nodes=fragments_workload["nodes"],
        rng=fragments_workload["rng"],
        fragments=fragments_workload["fragments"],
        clusters=fragments_workload["clusters"],
        repeats=fragments_conf["repeats"],
    )
    for record in fragments["records"]:
        if record["kind"] == "broadcast":
            print(
                f"  broadcast {record['workload']:<9} {record['mode']:<6} "
                f"max fragment {record['max_fragment_bytes']:>6} B "
                f"({record['max_fragment_ratio']:.2f}x whole graph, "
                f"{record['cut_edges']} cut edge(s))"
            )
    print(
        f"  fragment backend {fragments['fragment_wall_s'] * 1000:8.2f} ms vs "
        f"engine {fragments['engine_wall_s'] * 1000:8.2f} ms — "
        f"{fragments['fragment_vs_engine']:.2f}x (reports byte-identical)"
    )
    fragments_path = emit_bench(
        "fragments",
        fragments["records"],
        meta={
            "config": fragments["config"],
            "broadcast_ratio": fragments["broadcast_ratio"],
            "fragment_wall_s": fragments["fragment_wall_s"],
            "engine_wall_s": fragments["engine_wall_s"],
            "fragment_vs_engine": fragments["fragment_vs_engine"],
            "thresholds": fragments_thresholds,
        },
        directory=args.output_dir,
    )
    print(f"wrote {fragments_path}")

    # ------------------------------------------------------------------
    # Telemetry gate: instrumentation overhead, disabled and enabled.
    # ------------------------------------------------------------------
    from repro import telemetry

    telemetry_conf = baseline["telemetry"]
    telemetry_repeats = telemetry_conf["repeats"]
    telemetry_thresholds = telemetry_conf["thresholds"]
    print(
        f"telemetry workload: validation_workload({workload['nodes']}, "
        f"rng={workload['rng']}), serial, best of {telemetry_repeats}"
    )
    detach_index(graph)
    telemetry.disable()
    telemetry.reset()
    telemetry.clear_spans()

    def serial_run():
        return parallel_find_violations(graph, sigma, workers=1, backend="serial")

    # Interleaved best-of sampling: one reference, one disabled, and one
    # enabled run per round, so slow drift on a shared runner hits all
    # three modes alike instead of skewing whichever was measured last.
    # Reference and disabled are the same code path (the null sink is
    # the default); their ratio is pure measurement noise, which the 5%
    # gate bounds.
    reference_samples: list[float] = []
    disabled_samples: list[float] = []
    enabled_samples: list[float] = []
    try:
        for _ in range(telemetry_repeats):
            wall, reference_report = measure(serial_run, 1)
            reference_samples.append(wall)
            wall, disabled_report = measure(serial_run, 1)
            disabled_samples.append(wall)
            telemetry.enable()
            wall, enabled_report = measure(serial_run, 1)
            enabled_samples.append(wall)
            telemetry.disable()
        telemetry.enable()
        telemetry_snapshot = telemetry.snapshot()
        ndjson_path = Path(args.output_dir) / "telemetry.ndjson"
        ndjson_lines = telemetry.export_ndjson(str(ndjson_path))
    finally:
        telemetry.disable()
    reference_wall = min(reference_samples)
    disabled_wall = min(disabled_samples)
    enabled_wall = min(enabled_samples)
    if (
        disabled_report.violations != reference_report.violations
        or enabled_report.violations != reference_report.violations
    ):
        print(
            "FAIL: telemetry perturbed the violation report "
            "(enabled/disabled runs must be byte-identical)",
            file=sys.stderr,
        )
        return 1
    disabled_overhead = disabled_wall / reference_wall
    enabled_overhead = enabled_wall / reference_wall
    print(f"  serial reference       {reference_wall * 1000:8.2f} ms")
    print(
        f"  telemetry disabled     {disabled_wall * 1000:8.2f} ms "
        f"({disabled_overhead:.3f}x)"
    )
    print(
        f"  telemetry enabled      {enabled_wall * 1000:8.2f} ms "
        f"({enabled_overhead:.3f}x, "
        f"{len(telemetry_snapshot['counters'])} counter(s) collected)"
    )
    print(f"wrote {ndjson_path} ({ndjson_lines} line(s))")
    telemetry_path = emit_bench(
        "telemetry",
        [
            {"mode": "reference", "wall_s": reference_wall},
            {"mode": "disabled", "wall_s": disabled_wall, "overhead": disabled_overhead},
            {"mode": "enabled", "wall_s": enabled_wall, "overhead": enabled_overhead},
        ],
        meta={
            "workload": workload,
            "repeats": telemetry_repeats,
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
            "counters_collected": len(telemetry_snapshot["counters"]),
            "thresholds": telemetry_thresholds,
        },
        directory=args.output_dir,
    )
    print(f"wrote {telemetry_path}")

    # ------------------------------------------------------------------
    # Serve gate: push-server load — latency tail, stream integrity,
    # and delta push vs per-subscriber full revalidation.
    # ------------------------------------------------------------------
    from benchmarks.bench_serve import run_serve_bench

    serve_conf = baseline["serve"]
    serve_workload = serve_conf["workload"]
    serve_thresholds = serve_conf["thresholds"]
    print(
        f"serve workload: {serve_workload['subscribers']} subscriber(s), "
        f"{serve_workload['updates_per_s']} update(s)/s for "
        f"{serve_workload['duration_s']:.0f} s over churn_stream"
        f"(nodes={serve_workload['nodes']}, rng={serve_workload['rng']})"
    )
    serve = run_serve_bench(
        subscribers=serve_workload["subscribers"],
        updates_per_s=serve_workload["updates_per_s"],
        duration_s=serve_workload["duration_s"],
        nodes=serve_workload["nodes"],
        batch_size=serve_workload["batch_size"],
        rng=serve_workload["rng"],
    )
    print(
        f"  applied {serve['batches']} batch(es) at "
        f"{serve['achieved_updates_per_s']:.2f}/s — "
        f"{serve['gaps']} gap(s), {serve['resyncs']} resync(s)"
    )
    print(
        f"  push latency p50/p95/p99: "
        f"{serve['push_p50_s'] * 1000:.2f} / "
        f"{serve['push_p95_s'] * 1000:.2f} / "
        f"{serve['push_p99_s'] * 1000:.2f} ms"
    )
    print(f"  delta_vs_full_per_batch: {serve['delta_vs_full']:.2f}x")
    serve_path = emit_bench(
        "serve",
        serve["records"],
        meta={
            "config": serve["config"],
            "push_p50_s": serve["push_p50_s"],
            "push_p95_s": serve["push_p95_s"],
            "push_p99_s": serve["push_p99_s"],
            "delta_vs_full": serve["delta_vs_full"],
            "achieved_updates_per_s": serve["achieved_updates_per_s"],
            "thresholds": serve_thresholds,
        },
        directory=args.output_dir,
    )
    print(f"wrote {serve_path}")

    if args.no_gate:
        return 0

    failures = []
    if fragments["broadcast_ratio"] > fragments_thresholds["max_fragment_broadcast_ratio"]:
        failures.append(
            f"fragment-resident broadcast "
            f"{fragments['broadcast_ratio']:.2f}x of whole graph > "
            f"{fragments_thresholds['max_fragment_broadcast_ratio']}x "
            f"(clustered workload, greedy, "
            f"{fragments_workload['fragments']} fragments)"
        )
    if fragments["fragment_vs_engine"] < fragments_thresholds["min_fragment_speedup_vs_engine"]:
        failures.append(
            f"fragment backend speedup over warm engine "
            f"{fragments['fragment_vs_engine']:.2f}x < "
            f"{fragments_thresholds['min_fragment_speedup_vs_engine']}x"
        )
    if matching["speedup_unindexed"] < matching_thresholds["min_plan_speedup_vs_seed"]:
        failures.append(
            f"plan-compiled validation speedup over the seed interpreter "
            f"{matching['speedup_unindexed']:.2f}x < "
            f"{matching_thresholds['min_plan_speedup_vs_seed']}x"
        )
    if sigma_bench["speedup_validation"] < sigma_thresholds["min_sigma_speedup_validation"]:
        failures.append(
            f"Σ-DAG multi-rule validation speedup over per-rule plans "
            f"{sigma_bench['speedup_validation']:.2f}x < "
            f"{sigma_thresholds['min_sigma_speedup_validation']}x"
        )
    if sigma_bench["speedup_discovery"] < sigma_thresholds["min_sigma_speedup_discovery"]:
        failures.append(
            f"Σ-DAG discovery support-counting speedup over per-pattern "
            f"counting {sigma_bench['speedup_discovery']:.2f}x < "
            f"{sigma_thresholds['min_sigma_speedup_discovery']}x"
        )
    if streaming["speedup_per_batch"] < streaming_thresholds["min_ledger_speedup_vs_full"]:
        failures.append(
            f"streaming ledger speedup over full revalidation "
            f"{streaming['speedup_per_batch']:.2f}x < "
            f"{streaming_thresholds['min_ledger_speedup_vs_full']}x"
        )
    if speedups["engine_warm_vs_serial"] < thresholds["min_engine_warm_speedup_vs_serial"]:
        failures.append(
            f"engine warm speedup over serial "
            f"{speedups['engine_warm_vs_serial']:.2f}x < "
            f"{thresholds['min_engine_warm_speedup_vs_serial']}x"
        )
    if (
        speedups["engine_warm_vs_serial_indexed"]
        < thresholds["min_engine_warm_speedup_vs_serial_indexed"]
    ):
        failures.append(
            f"engine warm speedup over indexed serial "
            f"{speedups['engine_warm_vs_serial_indexed']:.2f}x < "
            f"{thresholds['min_engine_warm_speedup_vs_serial_indexed']}x"
        )
    if (
        speedups["engine_warm_vs_process_cold"]
        < thresholds["min_engine_warm_speedup_vs_process_cold"]
    ):
        failures.append(
            f"engine warm speedup over a cold one-shot process pool "
            f"{speedups['engine_warm_vs_process_cold']:.2f}x < "
            f"{thresholds['min_engine_warm_speedup_vs_process_cold']}x"
        )
    if disabled_overhead > telemetry_thresholds["max_disabled_overhead"]:
        failures.append(
            f"telemetry-disabled serial validation overhead "
            f"{disabled_overhead:.3f}x > "
            f"{telemetry_thresholds['max_disabled_overhead']}x"
        )
    if enabled_overhead > telemetry_thresholds["max_enabled_overhead"]:
        failures.append(
            f"telemetry-enabled serial validation overhead "
            f"{enabled_overhead:.3f}x > "
            f"{telemetry_thresholds['max_enabled_overhead']}x"
        )
    if serve["gaps"] or serve["resyncs"]:
        failures.append(
            f"serve streams not clean under the committed load: "
            f"{serve['gaps']} gap(s), {serve['resyncs']} resync(s) "
            f"(every subscriber must see every delta in order)"
        )
    if serve["push_p99_s"] > serve_thresholds["max_p99_push_s"]:
        failures.append(
            f"serve p99 push latency {serve['push_p99_s'] * 1000:.2f} ms > "
            f"{serve_thresholds['max_p99_push_s'] * 1000:.0f} ms"
        )
    if serve["delta_vs_full"] < serve_thresholds["min_delta_vs_full"]:
        failures.append(
            f"serve delta push advantage over per-subscriber full "
            f"revalidation {serve['delta_vs_full']:.2f}x < "
            f"{serve_thresholds['min_delta_vs_full']}x"
        )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
