"""Theorem 8: the GDC small-model property.

The upper-bound proof shows a satisfiable GDC set has a model of size
≤ 4·|Σ|³.  The bench runs the small-model search on satisfiable GDC
sets and reports the witness size against the bound — witnesses are
tiny (quotients of G_Σ), comfortably inside the paper's bound.
"""

import pytest

from repro.extensions import ComparisonLiteral, GDC, SearchStats, gdc_satisfiable
from repro.graph import path_graph
from repro.patterns import Pattern
from repro.reductions import gdc_ggcp_instance


def sigma_size_gdc(sigma) -> int:
    return sum(gdc.pattern.size() + len(gdc.X) + len(gdc.Y) for gdc in sigma)


def window_sigma(n_attrs: int):
    q = Pattern({"x": "item"})
    return [
        GDC(q, [], [ComparisonLiteral("x", f"v{i}", ">", i),
                    ComparisonLiteral("x", f"v{i}", "<", i + 1)])
        for i in range(n_attrs)
    ]


@pytest.mark.parametrize("n_attrs", [1, 2, 3])
def test_window_witness_size(benchmark, n_attrs):
    sigma = window_sigma(n_attrs)

    def run():
        stats = SearchStats()
        ok, witness = gdc_satisfiable(sigma, stats=stats)
        return ok, witness, stats

    ok, witness, stats = benchmark(run)
    assert ok
    bound = 4 * sigma_size_gdc(sigma) ** 3
    assert witness.size() <= bound
    benchmark.extra_info["witness_size"] = witness.size()
    benchmark.extra_info["paper_bound"] = bound


def test_ggcp_witness_size(benchmark):
    sigma = gdc_ggcp_instance(path_graph(2), 2)

    def run():
        return gdc_satisfiable(sigma, max_nodes=9)

    ok, witness = benchmark(run)
    assert ok
    bound = 4 * sigma_size_gdc(sigma) ** 3
    assert witness.size() <= bound
    benchmark.extra_info["witness_size"] = witness.size()
    benchmark.extra_info["paper_bound"] = bound
