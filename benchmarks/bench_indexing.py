"""Indexing benchmarks: pruning power, validation speed, maintenance cost.

Three claims, each with a machine-independent structural counter next
to the wall-clock number:

* **Pruning** — on ``validation_workload(400)`` the indexed candidate
  pools are strictly smaller (summed over the bounded rule set's
  pattern variables) than the unindexed pools, while the violation sets
  are identical.  Candidate-pool size is exactly the number of nodes
  the backtracking matcher may touch at depth 0 of each variable, so
  "strictly fewer candidate nodes enumerated" is asserted, not eyeballed.
* **Validation** — end-to-end ``find_violations`` timed with and
  without the index (same workload, same rules, asserted-equal output).
* **Maintenance** — patching the index under a ``GraphUpdate`` batch
  (dirty-region work, O(|batch|)) vs. rebuilding it from scratch
  (O(|G|)); the patched index is asserted equal to the rebuilt one.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_indexing.py -q
"""


from repro.indexing import (
    IndexMaintenance,
    attach_index,
    build_indexes,
    detach_index,
)
from repro.matching import candidate_sets
from repro.reasoning import find_violations
from repro.reasoning.incremental import GraphUpdate
from repro.workloads import bounded_rule_set, validation_workload

WORKLOAD_SIZE = 400
WORKLOAD_SEED = 13


def total_candidates(graph, sigma) -> int:
    """Sum of candidate-pool sizes over every rule's pattern variables —
    the depth-0 node count the matcher enumerates."""
    return sum(
        len(pool)
        for ged in sigma
        for pool in candidate_sets(ged.pattern, graph).values()
    )


def update_batch(tag: str) -> GraphUpdate:
    """A small mixed batch against the standard workload graph."""
    return GraphUpdate(
        nodes=[
            (f"bn_{tag}_0", "user", {"score": 3}),
            (f"bn_{tag}_1", "item", {"score": 1}),
        ],
        edges=[
            (f"bn_{tag}_0", "buys", f"bn_{tag}_1"),
            ("n0", "rates", f"bn_{tag}_1"),
        ],
        attrs=[(f"bn_{tag}_0", "region", 2), ("n1", "score", 3)],
    )


class TestPruning:
    def test_indexed_enumerates_strictly_fewer_candidates(self):
        """The acceptance claim: same violations, strictly fewer
        candidate nodes on validation_workload(400)."""
        graph = validation_workload(WORKLOAD_SIZE, rng=WORKLOAD_SEED)
        sigma = bounded_rule_set()
        detach_index(graph)
        unindexed_candidates = total_candidates(graph, sigma)
        unindexed_violations = find_violations(graph, sigma)
        attach_index(graph)
        indexed_candidates = total_candidates(graph, sigma)
        indexed_violations = find_violations(graph, sigma)
        detach_index(graph)
        assert set(indexed_violations) == set(unindexed_violations)
        assert len(indexed_violations) == len(unindexed_violations)
        assert indexed_candidates < unindexed_candidates


class TestValidationSpeed:
    def test_unindexed_validation(self, benchmark):
        graph = validation_workload(WORKLOAD_SIZE, rng=WORKLOAD_SEED)
        sigma = bounded_rule_set()
        detach_index(graph)
        violations = benchmark(lambda: find_violations(graph, sigma))
        benchmark.extra_info["candidate_nodes"] = total_candidates(graph, sigma)
        benchmark.extra_info["violations"] = len(violations)

    def test_indexed_validation(self, benchmark):
        graph = validation_workload(WORKLOAD_SIZE, rng=WORKLOAD_SEED)
        sigma = bounded_rule_set()
        attach_index(graph)
        violations = benchmark(lambda: find_violations(graph, sigma))
        benchmark.extra_info["candidate_nodes"] = total_candidates(graph, sigma)
        benchmark.extra_info["violations"] = len(violations)
        detach_index(graph)


class TestMaintenance:
    def test_index_rebuild_from_scratch(self, benchmark):
        """The O(|G|) baseline the maintenance layer avoids."""
        graph = validation_workload(WORKLOAD_SIZE, rng=WORKLOAD_SEED)
        index = benchmark(lambda: build_indexes(graph))
        benchmark.extra_info["graph_size"] = graph.size()
        benchmark.extra_info["signature_pairs"] = sum(
            len(p) for p in index.out_pairs.values()
        )

    def test_incremental_maintenance_per_batch(self, benchmark):
        """O(|batch|) patching; each round gets a fresh graph copy so
        the timed target applies exactly one batch."""

        def fresh():
            graph = validation_workload(WORKLOAD_SIZE, rng=WORKLOAD_SEED)
            return (graph, build_indexes(graph)), {}

        def patch(graph, index):
            IndexMaintenance(graph, index).apply(update_batch("bench"))
            return graph, index

        graph, index = benchmark.pedantic(patch, setup=fresh, rounds=10)
        assert index.snapshot() == build_indexes(graph).snapshot()
        benchmark.extra_info["batch_operations"] = 6

    def test_maintained_index_equals_rebuilt_after_stream(self):
        """Structural check without timing: a stream of batches patched
        incrementally ends bit-identical to a rebuild."""
        graph = validation_workload(200, rng=WORKLOAD_SEED)
        index = attach_index(graph)
        for round_no in range(8):
            IndexMaintenance(graph, index).apply(update_batch(str(round_no)))
        assert index.snapshot() == build_indexes(graph).snapshot()
        detach_index(graph)
