"""GFD discovery benchmark: levelwise mining cost vs. data and LHS size
— plus the Σ-DAG vs per-rule section (ISSUE 9).

Shape claims:

* mining time grows with the number of matches (linear table build)
  and combinatorially with ``max_lhs`` (levelwise lattice), which is
  why the default is a small LHS budget — mirroring the bounded-size
  argument of Section 5.3;
* every exact rule discovered validates on the profiled graph
  (soundness of the miner, asserted);
* the discovered set shrinks under the implication cover (discovery
  over-generates; the Theorem 4/5 machinery de-duplicates it).

The Σ-DAG claim: compiling the dependency *set* once
(:mod:`repro.matching.sigma_dag`) and sharing pattern prefixes across
every rule beats per-rule :class:`~repro.matching.plan.MatchPlan`
execution by **at least 2x** on the committed Σ-overlapping workload —
for multi-rule validation *and* for discovery's candidate support
counting — while producing byte-identical violation reports and match
counts.  :func:`run_sigma_bench` is the shared measurement kernel: the
pytest entry points below assert the correctness half with conservative
speedup floors, and the CI perf gate (``benchmarks/perf_gate.py``) runs
the same kernel against the thresholds in ``benchmarks/baseline.json``
and writes ``BENCH_discovery.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_discovery.py -q
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks._emit import measure  # noqa: E402
from repro.discovery import discover_gfds, enumerate_candidate_patterns  # noqa: E402
from repro.graph.graph import Graph  # noqa: E402
from repro.reasoning import validates  # noqa: E402

SCALES = [10, 20, 40]

DEFAULT_SIGMA_CONFIG = {"nodes": 600, "rng": 0, "variants": 24, "repeats": 5}


def typed_workload(n: int) -> Graph:
    """n creator pairs with regular attributes (exact rules exist)."""
    g = Graph()
    for i in range(n):
        g.add_node(f"p{i}", "person", {"type": "programmer", "senior": i % 2})
        g.add_node(f"g{i}", "product", {"type": "video game", "platform": "pc"})
        g.add_edge(f"p{i}", "create", f"g{i}")
    return g


@pytest.mark.parametrize("n", SCALES)
def test_discovery_scaling_with_data(benchmark, n):
    g = typed_workload(n)
    rules = benchmark(lambda: discover_gfds(g, max_lhs=1, min_support=2))
    assert rules
    benchmark.extra_info["nodes"] = g.num_nodes
    benchmark.extra_info["rules"] = len(rules)


@pytest.mark.parametrize("max_lhs", [0, 1, 2])
def test_discovery_scaling_with_lhs_budget(benchmark, max_lhs):
    g = typed_workload(15)
    rules = benchmark(lambda: discover_gfds(g, max_lhs=max_lhs, min_support=2))
    benchmark.extra_info["max_lhs"] = max_lhs
    benchmark.extra_info["rules"] = len(rules)


def test_shape_soundness_and_cover():
    g = typed_workload(12)
    discovered = discover_gfds(g, max_lhs=1, min_support=2)
    assert discovered
    for rule in discovered:
        assert rule.exact
        assert validates(g, [rule.ged])

    from repro.optimization.cover import compute_cover

    report = compute_cover([r.ged for r in discovered])
    assert len(report.cover) < len(discovered)


# ----------------------------------------------------------------------
# Σ-DAG vs per-rule plans (the ISSUE 9 section)
# ----------------------------------------------------------------------


def _per_rule_find_violations(graph, sigma):
    """``find_violations`` re-spelled as the pre-Σ per-rule plan loop
    (one compiled :class:`MatchPlan` walk per dependency)."""
    from repro.matching.plan import compile_plan
    from repro.reasoning.validation import (
        Violation,
        evaluate_match,
        x_literal_restrictions,
    )

    found = []
    for ged in sigma:
        restrict = x_literal_restrictions(graph, ged)
        plan = compile_plan(graph, ged.pattern)
        for match in plan.matches(restrict=restrict):
            failed = evaluate_match(graph, ged, match)
            if failed:
                found.append(Violation(ged, tuple(sorted(match.items())), failed))
    return found


def run_sigma_bench(
    nodes: int = 600, rng: int = 0, variants: int = 12, repeats: int = 5
) -> dict:
    """Both Σ consumers through both executors on the committed
    Σ-overlapping workload, returning records plus the two headline
    speedups.

    * **validation** — the per-rule plan loop vs the Σ-batched
      :func:`~repro.reasoning.find_violations`, byte-identical
      violation reports asserted inside the kernel;
    * **discovery** — per-pattern :func:`count_matches` vs one
      :func:`~repro.matching.sigma_dag.count_sigma` pass over the
      workload's schema candidates, equal counts asserted.

    Both sides run warm (plans and DAG cached on the view), so the
    measured gap is pure shared-prefix enumeration, not compilation.
    """
    from repro.matching.homomorphism import count_matches
    from repro.matching.sigma_dag import compile_sigma, count_sigma
    from repro.reasoning import find_violations
    from repro.workloads import overlapping_rule_set, overlapping_workload

    graph = overlapping_workload(nodes, rng)
    sigma = overlapping_rule_set(variants)
    candidates = enumerate_candidate_patterns(
        graph, min_support=1, include_paths=True, include_forks=True
    )
    patterns = [c.pattern for c in candidates if c.shape != "node"]

    # Interleaved best-of sampling (the telemetry gate's idiom): one
    # sample of each side per round, so drift on a shared runner hits
    # both executors alike instead of skewing whichever ran last.
    per_rule_wall = sigma_wall = loop_wall = dag_wall = None
    for _ in range(repeats):
        wall, per_rule_report = measure(
            lambda: _per_rule_find_violations(graph, sigma), 1
        )
        per_rule_wall = wall if per_rule_wall is None else min(per_rule_wall, wall)
        wall, sigma_report = measure(lambda: find_violations(graph, sigma), 1)
        sigma_wall = wall if sigma_wall is None else min(sigma_wall, wall)
        wall, loop_counts = measure(
            lambda: [count_matches(pattern, graph) for pattern in patterns], 1
        )
        loop_wall = wall if loop_wall is None else min(loop_wall, wall)
        wall, dag_counts = measure(lambda: count_sigma(graph, patterns), 1)
        dag_wall = wall if dag_wall is None else min(dag_wall, wall)
    assert sigma_report == per_rule_report, (
        "Σ-DAG validation diverged from per-rule plans"
    )
    assert dag_counts == loop_counts, (
        "Σ-DAG counts diverged from per-pattern counting"
    )

    shape = compile_sigma(graph, [ged.pattern for ged in sigma]).stats()
    records = [
        {
            "section": "validation",
            "executor": "per_rule",
            "wall_s": per_rule_wall,
            "rules": len(sigma),
            "violations": len(per_rule_report),
        },
        {
            "section": "validation",
            "executor": "sigma_dag",
            "wall_s": sigma_wall,
            "rules": len(sigma),
            "violations": len(sigma_report),
        },
        {
            "section": "discovery",
            "executor": "per_rule",
            "wall_s": loop_wall,
            "patterns": len(patterns),
            "total_matches": sum(loop_counts),
        },
        {
            "section": "discovery",
            "executor": "sigma_dag",
            "wall_s": dag_wall,
            "patterns": len(patterns),
            "total_matches": sum(dag_counts),
        },
    ]
    return {
        "config": {"nodes": nodes, "rng": rng, "variants": variants, "repeats": repeats},
        "records": records,
        "dag_shape": shape,
        "speedup_validation": per_rule_wall / sigma_wall if sigma_wall else float("inf"),
        "speedup_discovery": loop_wall / dag_wall if dag_wall else float("inf"),
    }


def test_sigma_validation_matches_per_rule():
    """The correctness half on a smaller instance (assertions run
    inside the kernel; quick enough for the plain test job)."""
    result = run_sigma_bench(nodes=200, rng=0, variants=6, repeats=1)
    assert len(result["records"]) == 4
    assert result["dag_shape"]["steps_saved"] > 0


def test_sigma_beats_per_rule():
    """The performance half: the shared DAG beats per-rule plans on
    both consumers (the CI gate enforces the 2x floors; this in-suite
    check uses a conservative 1.4x so shared test runners stay green)."""
    result = run_sigma_bench(**DEFAULT_SIGMA_CONFIG)
    assert result["speedup_validation"] > 1.4, (
        f"Σ-DAG validation only {result['speedup_validation']:.1f}x "
        f"faster than per-rule plans"
    )
    assert result["speedup_discovery"] > 1.4, (
        f"Σ-DAG support counting only {result['speedup_discovery']:.1f}x "
        f"faster than per-pattern counting"
    )
    _emit(result)


def _emit(result: dict) -> None:
    from benchmarks._emit import emit_bench

    emit_bench(
        "discovery",
        result["records"],
        meta={
            "config": result["config"],
            "dag_shape": result["dag_shape"],
            "speedup_validation": result["speedup_validation"],
            "speedup_discovery": result["speedup_discovery"],
        },
    )


if __name__ == "__main__":
    import json

    outcome = run_sigma_bench(**DEFAULT_SIGMA_CONFIG)
    _emit(outcome)
    print(json.dumps({k: v for k, v in outcome.items() if k != "records"}, indent=2))
