"""GFD discovery benchmark: levelwise mining cost vs. data and LHS size.

Shape claims:

* mining time grows with the number of matches (linear table build)
  and combinatorially with ``max_lhs`` (levelwise lattice), which is
  why the default is a small LHS budget — mirroring the bounded-size
  argument of Section 5.3;
* every exact rule discovered validates on the profiled graph
  (soundness of the miner, asserted);
* the discovered set shrinks under the implication cover (discovery
  over-generates; the Theorem 4/5 machinery de-duplicates it).
"""

import pytest

from repro.discovery import discover_gfds
from repro.graph.graph import Graph
from repro.reasoning import validates

SCALES = [10, 20, 40]


def typed_workload(n: int) -> Graph:
    """n creator pairs with regular attributes (exact rules exist)."""
    g = Graph()
    for i in range(n):
        g.add_node(f"p{i}", "person", {"type": "programmer", "senior": i % 2})
        g.add_node(f"g{i}", "product", {"type": "video game", "platform": "pc"})
        g.add_edge(f"p{i}", "create", f"g{i}")
    return g


@pytest.mark.parametrize("n", SCALES)
def test_discovery_scaling_with_data(benchmark, n):
    g = typed_workload(n)
    rules = benchmark(lambda: discover_gfds(g, max_lhs=1, min_support=2))
    assert rules
    benchmark.extra_info["nodes"] = g.num_nodes
    benchmark.extra_info["rules"] = len(rules)


@pytest.mark.parametrize("max_lhs", [0, 1, 2])
def test_discovery_scaling_with_lhs_budget(benchmark, max_lhs):
    g = typed_workload(15)
    rules = benchmark(lambda: discover_gfds(g, max_lhs=max_lhs, min_support=2))
    benchmark.extra_info["max_lhs"] = max_lhs
    benchmark.extra_info["rules"] = len(rules)


def test_shape_soundness_and_cover():
    g = typed_workload(12)
    discovered = discover_gfds(g, max_lhs=1, min_support=2)
    assert discovered
    for rule in discovered:
        assert rule.exact
        assert validates(g, [rule.ged])

    from repro.optimization.cover import compute_cover

    report = compute_cover([r.ged for r in discovered])
    assert len(report.cover) < len(discovered)
