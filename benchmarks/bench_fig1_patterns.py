"""Figure 1: the paper's patterns Q1–Q7 matched on realistic workloads.

The figure defines the running patterns; this bench regenerates it as
executable artifacts — each pattern is built, matched against the
synthetic knowledge-base / social workloads, and its rule (ϕ1–ϕ5,
ψ1–ψ3) is evaluated.  Match counts are attached as extra_info.
"""

import pytest

from repro import paper
from repro.matching import count_matches
from repro.reasoning import find_violations

KB_PATTERNS = [
    ("Q1", paper.q1),
    ("Q2", paper.q2),
    ("Q3", paper.q3),
    ("Q4", paper.q4),
]


@pytest.mark.parametrize("name,factory", KB_PATTERNS, ids=[p[0] for p in KB_PATTERNS])
def test_match_kb_pattern(benchmark, kb_workload, name, factory):
    graph, _ = kb_workload
    pattern = factory()

    matches = benchmark(lambda: count_matches(pattern, graph))
    assert matches > 0
    benchmark.extra_info["matches"] = matches


def test_match_q5_spam_pattern(benchmark, social_workload):
    graph, _ = social_workload
    pattern = paper.q5(k=2)

    matches = benchmark(lambda: count_matches(pattern, graph))
    assert matches > 0
    benchmark.extra_info["matches"] = matches


def test_match_q6_q7_key_patterns(benchmark, kb_workload):
    graph, _ = kb_workload
    q6 = paper.psi1().pattern  # Q6 composed with its copy
    q7 = paper.psi2().pattern

    total = benchmark(lambda: count_matches(q6, graph) + count_matches(q7, graph))
    assert total > 0
    benchmark.extra_info["matches"] = total


def test_rules_over_figure1_patterns(benchmark, kb_workload):
    """End-to-end: all Example 3 rules evaluated on the KB."""
    graph, planted = kb_workload
    sigma = [paper.phi1(), paper.phi2(), paper.phi3(), paper.phi4(),
             paper.psi1(), paper.psi2(), paper.psi3()]

    violations = benchmark(lambda: find_violations(graph, sigma))
    assert len(violations) >= planted.total() - len(planted.duplicate_albums)
    benchmark.extra_info["violations"] = len(violations)
