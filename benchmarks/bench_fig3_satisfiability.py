"""Figure 3 / Examples 5-6: the satisfiability interaction of patterns.

Regenerates the figure's Σ1 (patterns homomorphic, unsatisfiable) and
Σ2 (patterns *not* homomorphic either way, still unsatisfiable), plus
a scaled family where the Q2-side consists of m wildcard copies — the
homomorphism space the chase must cover grows with m.
"""

import pytest

from repro import paper
from repro.deps import GED, VariableLiteral
from repro.patterns import WILDCARD, Pattern
from repro.reasoning import check_satisfiability


def scaled_sigma(m: int) -> list[GED]:
    """φ1 as in Example 5; φ2's pattern has m wildcard copies of Q1's
    shape (the paper's Q2 is the m = 2 case)."""
    nodes = {}
    edges = []
    for c in range(m):
        nodes[f"x{c}"] = WILDCARD
        nodes[f"y{c}"] = WILDCARD
        nodes[f"z{c}"] = WILDCARD
        edges.append((f"x{c}", "r", f"y{c}"))
        edges.append((f"x{c}", "r", f"z{c}"))
    phi2 = GED(Pattern(nodes, edges), [], [VariableLiteral("x0", "A", "x0", "B")])
    return [paper.example5_phi1(), phi2]


def test_example5_sigma1(benchmark):
    outcome = benchmark(lambda: check_satisfiability(paper.example5_sigma1()))
    assert not outcome.satisfiable


def test_example5_sigma2_non_homomorphic(benchmark):
    outcome = benchmark(lambda: check_satisfiability(paper.example5_sigma2()))
    assert not outcome.satisfiable


def test_components_alone_satisfiable(benchmark):
    outcome = benchmark(
        lambda: (
            check_satisfiability([paper.example5_phi1()]).satisfiable,
            check_satisfiability([paper.example5_phi2()]).satisfiable,
        )
    )
    assert outcome == (True, True)


@pytest.mark.parametrize("m", [2, 3, 4])
def test_scaled_interaction(benchmark, m):
    sigma = scaled_sigma(m)

    outcome = benchmark(lambda: check_satisfiability(sigma, use_shortcut=False))
    assert not outcome.satisfiable
    benchmark.extra_info["copies"] = m
