"""Repair engine benchmark (the Example 1 cleaning loop, end to end).

Not a paper table — the paper stops at detection — but the repair
engine is the consumer the paper's intro promises ("detect semantic
inconsistencies and repair data"), so we track:

* repair cost/ops scale linearly with the number of planted errors
  (each Example 1 error is locally repairable);
* the repaired graph validates (soundness — asserted, not timed);
* forward-only mode is cheaper than full mode when no forbidding
  constraints fire, since backward plan generation is skipped work.
"""

import pytest

from repro.quality.inconsistencies import example1_rules
from repro.repair import repair
from repro.reasoning import validates
from repro.workloads import synthetic_knowledge_base

SCALES = [2, 4, 8]


def kb_instance(scale: int):
    graph, errors = synthetic_knowledge_base(
        n_products=2 * scale,
        n_countries=scale,
        n_species=scale,
        n_families=scale,
        n_albums=scale,
        error_rate=0.5,
        rng=scale,
    )
    return graph, errors


@pytest.mark.parametrize("scale", SCALES)
def test_repair_scaling_with_planted_errors(benchmark, scale):
    graph, errors = kb_instance(scale)
    rules = example1_rules()

    report = benchmark(lambda: repair(graph, rules, max_operations=400))
    assert report.clean
    assert validates(report.graph, rules)
    benchmark.extra_info["planted_errors"] = errors.total()
    benchmark.extra_info["operations"] = len(report.applied)
    benchmark.extra_info["cost"] = report.total_cost
    benchmark.extra_info["rounds"] = report.rounds


def test_shape_operations_track_errors():
    """Machine-independent shape: applied operations grow with planted
    errors and never exceed a small multiple of them (repairs stay
    local; no cascade blow-up on this rule set)."""
    points = []
    for scale in SCALES:
        graph, errors = kb_instance(scale)
        report = repair(graph, example1_rules(), max_operations=400)
        assert report.clean
        points.append((errors.total(), len(report.applied)))
    for planted, ops in points:
        assert ops <= max(4 * planted, 8), (planted, ops)
    assert points[-1][1] >= points[0][1]
