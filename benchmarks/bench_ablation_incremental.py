"""Ablation: incremental validation vs. full re-validation.

DESIGN.md's "practical special cases" engineering claim: a violation
introduced by an update must touch the update's neighborhood, so
re-enumerating only matches through touched nodes is sound — and its
cost tracks the *update*, not the graph.

The bench streams single-country updates into a growing capitals KB
and measures detection cost both ways.  The shape claim is the
crossover: full re-validation grows with |G| while the incremental
check stays flat, so the gap widens with graph size.
"""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import VariableLiteral
from repro.graph.graph import Graph
from repro.patterns.pattern import Pattern
from repro.reasoning.incremental import GraphUpdate, apply_update, incremental_violations
from repro.reasoning.validation import find_violations

SIZES = [50, 200, 800]


def capital_rule() -> GED:
    q = Pattern(
        {"x": "country", "y": "city", "z": "city"},
        [("x", "capital", "y"), ("x", "capital", "z")],
    )
    return GED(q, [], [VariableLiteral("y", "name", "z", "name")], name="one-capital")


def base_graph(n: int) -> Graph:
    g = Graph()
    for i in range(n):
        g.add_node(f"c{i}", "country")
        g.add_node(f"k{i}", "city", {"name": f"cap{i}"})
        g.add_edge(f"c{i}", "capital", f"k{i}")
    return g


def dirty_update(n: int) -> GraphUpdate:
    """Add one country with two disagreeing capitals."""
    return GraphUpdate(
        nodes=[
            (f"c{n}", "country", {}),
            (f"k{n}a", "city", {"name": "A"}),
            (f"k{n}b", "city", {"name": "B"}),
        ],
        edges=[(f"c{n}", "capital", f"k{n}a"), (f"c{n}", "capital", f"k{n}b")],
    )


@pytest.mark.parametrize("n", SIZES)
def test_full_revalidation_after_update(benchmark, n):
    g = base_graph(n)
    apply_update(g, dirty_update(n))
    rules = [capital_rule()]

    violations = benchmark(lambda: find_violations(g, rules))
    assert violations
    benchmark.extra_info["graph_nodes"] = g.num_nodes


@pytest.mark.parametrize("n", SIZES)
def test_incremental_validation_after_update(benchmark, n):
    g = base_graph(n)
    update = dirty_update(n)
    apply_update(g, update)
    rules = [capital_rule()]

    violations = benchmark(lambda: incremental_violations(g, rules, update))
    assert violations
    benchmark.extra_info["graph_nodes"] = g.num_nodes
    benchmark.extra_info["touched"] = len(update.touched_nodes())


def test_shape_incremental_finds_same_new_violations():
    """Soundness across sizes: the incremental check reports exactly the
    violations the full scan attributes to the update."""
    rules = [capital_rule()]
    for n in SIZES:
        g = base_graph(n)
        before = {v.match for v in find_violations(g, rules)}
        update = dirty_update(n)
        apply_update(g, update)
        after = {v.match for v in find_violations(g, rules)}
        new_full = after - before
        new_incremental = {
            v.match for v in incremental_violations(g, rules, update)
        }
        assert new_full <= new_incremental  # complete for new violations
        assert new_incremental <= after  # sound: every report is real
