"""Table 1, implication column.

Paper's claim: NP-complete for GEDs, GFDs, GKeys, GFDxs and GEDxs —
intractable *even without constants and ids* (GFDxs), because deciding
deducibility requires enumerating homomorphisms of Σ's patterns into
the canonical graph G_Q.

Reproduced shape: the Theorem 5 reduction with odd-cycle instances
C_n — 3-colorable with Θ(2^n) proper colorings — makes the chase apply
one step per coloring, so cost grows exponentially in n for both the
GFDx and the GKey encodings.  A bounded-pattern control family stays
flat (Section 5.3).
"""

import pytest

from benchmarks.conftest import odd_cycle
from repro.deps import ConstantLiteral, GED
from repro.patterns import Pattern
from repro.reasoning import check_implication, implies
from repro.reductions import gfdx_implication_instance, gkey_implication_instance

CYCLES = [5, 7, 9]


@pytest.mark.parametrize("n", CYCLES)
def test_gfdx_implication_hard_family(benchmark, n):
    """NP row (GFDxs): one chase step per proper 3-coloring of C_n."""
    sigma, phi = gfdx_implication_instance(odd_cycle(n))

    outcome = benchmark(lambda: check_implication(sigma, phi))
    assert outcome.implied  # odd cycles are 3-colorable
    benchmark.extra_info["cycle"] = n
    benchmark.extra_info["chase_steps"] = len(outcome.chase_result.steps)


@pytest.mark.parametrize("n", CYCLES)
def test_gkey_implication_hard_family(benchmark, n):
    """NP row (GKeys): the id-literal variant of the same reduction."""
    sigma, phi = gkey_implication_instance(odd_cycle(n))

    outcome = benchmark(lambda: check_implication(sigma, phi))
    assert outcome.implied
    benchmark.extra_info["cycle"] = n
    benchmark.extra_info["chase_steps"] = len(outcome.chase_result.steps)


@pytest.mark.parametrize("chain", [4, 8, 16])
def test_bounded_pattern_implication_easy_family(benchmark, chain):
    """Control: constant-propagation chains with size-1 patterns grow
    only linearly (the Section 5.3 tractable regime)."""
    q = Pattern({"x": "a"})
    sigma = [
        GED(q, [ConstantLiteral("x", f"A{i}", 1)], [ConstantLiteral("x", f"A{i+1}", 1)])
        for i in range(chain)
    ]
    phi = GED(q, [ConstantLiteral("x", "A0", 1)], [ConstantLiteral("x", f"A{chain}", 1)])

    implied = benchmark(lambda: implies(sigma, phi))
    assert implied
    benchmark.extra_info["chain"] = chain


def test_shape_steps_grow_with_colorings():
    """Chase steps track the number of proper 3-colorings of C_n
    (= 2^n + 2·(-1)^n), the exponential driver of the NP row."""
    observed = []
    for n in CYCLES:
        sigma, phi = gfdx_implication_instance(odd_cycle(n))
        outcome = check_implication(sigma, phi)
        observed.append(len(outcome.chase_result.steps))
    assert observed == sorted(observed)
    # From C5 to C9 the coloring count grows 30 -> 510: expect a big jump.
    assert observed[-1] > 4 * observed[0], observed
