"""Theorem 7: the axiom system A_GED — synthesis and checking cost.

Proof synthesis implements the completeness construction (chase trace
→ GED6 replay → GED2/3/4 saturation → subset extraction); the checker
re-derives every line including the semantic side conditions.  The
bench reports proof sizes and the cost of both directions on the
paper's Example 7/8 derivations and on growing implication chains.
"""

import pytest

from repro import paper
from repro.axioms import Proof, ProofChecker, augmentation, premise, prove, transitivity
from repro.deps import ConstantLiteral, GED
from repro.patterns import Pattern


def chain_instance(length: int):
    q = Pattern({"x": "a"})
    sigma = [
        GED(q, [ConstantLiteral("x", f"A{i}", 1)], [ConstantLiteral("x", f"A{i+1}", 1)])
        for i in range(length)
    ]
    phi = GED(q, [ConstantLiteral("x", "A0", 1)], [ConstantLiteral("x", f"A{length}", 1)])
    return sigma, phi


def test_synthesize_example7_proof(benchmark):
    sigma, phi = paper.example7_sigma(), paper.example7_phi()

    proof = benchmark(lambda: prove(sigma, phi))
    assert proof.conclusion == phi
    benchmark.extra_info["lines"] = len(proof)
    benchmark.extra_info["rules"] = sorted(proof.rules_used())


def test_check_example7_proof(benchmark):
    sigma, phi = paper.example7_sigma(), paper.example7_phi()
    proof = prove(sigma, phi)

    ok = benchmark(lambda: ProofChecker(sigma).check_concludes(proof, phi))
    assert ok
    benchmark.extra_info["lines"] = len(proof)


@pytest.mark.parametrize("length", [2, 4, 8])
def test_chain_proof_scaling(benchmark, length):
    sigma, phi = chain_instance(length)

    def run():
        proof = prove(sigma, phi)
        ProofChecker(sigma).check_concludes(proof, phi)
        return proof

    proof = benchmark(run)
    benchmark.extra_info["chain"] = length
    benchmark.extra_info["lines"] = len(proof)


def test_derived_rule_costs(benchmark):
    """Example 8: augmentation + transitivity as primitive sequences."""
    q = Pattern({"x": "a"})
    xy = GED(q, [ConstantLiteral("x", "A", 1)], [ConstantLiteral("x", "B", 2)])
    yz = GED(q, [ConstantLiteral("x", "B", 2)], [ConstantLiteral("x", "C", 3)])

    def run():
        proof = Proof(premises=[xy, yz])
        l1, l2 = premise(proof, xy), premise(proof, yz)
        transitivity(proof, l1, l2)
        aug_source = premise(proof, xy)
        augmentation(proof, aug_source, [ConstantLiteral("x", "Z", 9)])
        ProofChecker([xy, yz]).check(proof)
        return proof

    proof = benchmark(run)
    benchmark.extra_info["lines"] = len(proof)
