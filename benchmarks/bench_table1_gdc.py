"""Table 1, GDC row (Theorem 8).

Paper's claims: satisfiability Σp2-complete, implication Πp2-complete,
validation coNP-complete (no harder than GEDs).

Reproduced shape: the small-model search behind satisfiability /
implication explores a candidate space that explodes with the instance
(counted machine-independently via ``SearchStats``), while validation
of the same constraints over data graphs scales like plain GED
validation.  Instances come from the GGCP reduction (the paper's
Σp2-hardness source) and from growing attribute-window families.
"""

import pytest

from repro.deps import FALSE
from repro.extensions import (
    ComparisonLiteral,
    GDC,
    SearchStats,
    gdc_find_violations,
    gdc_implies,
    gdc_satisfiable,
)
from repro.graph import complete_graph, path_graph
from repro.patterns import Pattern
from repro.reductions import gdc_ggcp_instance
from repro.workloads import validation_workload

GGCP_CASES = [("path2-k2", path_graph(2), 2), ("k3-k3", complete_graph(3), 3)]


@pytest.mark.parametrize("name,f,k", GGCP_CASES, ids=[c[0] for c in GGCP_CASES])
def test_gdc_satisfiability_ggcp(benchmark, name, f, k):
    """Σp2 row: the four-GDC GGCP reduction."""
    sigma = gdc_ggcp_instance(f, k)

    def run():
        stats = SearchStats()
        ok, _ = gdc_satisfiable(sigma, max_nodes=9, stats=stats)
        return ok, stats

    ok, stats = benchmark(run)
    assert ok  # both cases have good 2-colorings
    benchmark.extra_info["partitions"] = stats.partitions
    benchmark.extra_info["candidates"] = stats.candidates
    benchmark.extra_info["pruned"] = stats.pruned


@pytest.mark.parametrize("n_attrs", [1, 2, 3])
def test_gdc_satisfiability_attribute_scaling(benchmark, n_attrs):
    """Σp2 row, second axis: candidates grow exponentially with the
    number of attribute slots."""
    q = Pattern({"x": "item"})
    sigma = [
        GDC(q, [], [ComparisonLiteral("x", f"v{i}", ">", 0),
                    ComparisonLiteral("x", f"v{i}", "<", 2)])
        for i in range(n_attrs)
    ]

    def run():
        stats = SearchStats()
        ok, _ = gdc_satisfiable(sigma, stats=stats)
        return ok, stats

    ok, stats = benchmark(run)
    assert ok
    benchmark.extra_info["candidates"] = stats.candidates


@pytest.mark.parametrize("size", [100, 400])
def test_gdc_validation_stays_cheap(benchmark, size):
    """coNP validation row: data-graph checking scales with |G| like
    GED validation — no Σp2 blowup."""
    graph = validation_workload(size, rng=5)
    q = Pattern({"i": "item"})
    sigma = [
        GDC(q, [], [ComparisonLiteral("i", "score", "<=", 3)], name="score-cap"),
        GDC(q, [ComparisonLiteral("i", "score", ">", 99)], [FALSE], name="no-outliers"),
    ]

    violations = benchmark(lambda: gdc_find_violations(graph, sigma))
    benchmark.extra_info["data_nodes"] = size
    benchmark.extra_info["violations"] = len(violations)


def test_gdc_implication_counterexample_search(benchmark):
    """Πp2 row: non-implication witnessed by counterexample search."""
    q = Pattern({"x": "item"})
    sigma = [GDC(q, [], [ComparisonLiteral("x", "v", "<", 10)])]
    phi = GDC(q, [], [ComparisonLiteral("x", "v", "<", 2)])

    def run():
        stats = SearchStats()
        implied, _ = gdc_implies(sigma, phi, stats=stats)
        return implied, stats

    implied, stats = benchmark(run)
    assert not implied
    benchmark.extra_info["candidates"] = stats.candidates


def test_shape_satisfiability_explodes_validation_does_not():
    """The Table 1 asymmetry for GDCs, in work counters."""
    q = Pattern({"x": "item"})
    candidate_counts = []
    for n_attrs in (1, 2, 3):
        sigma = [
            GDC(q, [], [ComparisonLiteral("x", f"v{i}", ">", 0)])
            for i in range(n_attrs)
        ]
        stats = SearchStats()
        gdc_satisfiable(sigma, stats=stats)
        candidate_counts.append(stats.candidates + stats.pruned)
    assert candidate_counts == sorted(candidate_counts)
    assert candidate_counts[-1] > candidate_counts[0]
    # Validation work is just match enumeration: linear in the data.
    small = validation_workload(50, rng=1)
    big = validation_workload(200, rng=1)
    rule = [GDC(q, [], [ComparisonLiteral("x", "score", "<=", 3)])]
    assert len(gdc_find_violations(big, rule)) <= 10 * max(
        1, len(gdc_find_violations(small, rule))
    ) * 4
