"""Matching benchmarks: the plan-compiled core vs the seed interpreter.

The matching claim (ISSUE 4): routing validation through compiled
match plans — interned CSR graph views, candidate pools materialized
once as sorted slot arrays, an iterative intersection-driven executor —
beats the seed recursive enumerator (kept as
:func:`repro.matching.seed_find_homomorphisms`) by **at least 3x** on
``validation_workload(400)``, while yielding byte-identical match
streams and violation reports.

:func:`run_matching_bench` is the shared measurement kernel: the pytest
entry points below assert the correctness half and emit wall clocks,
and the CI perf gate (``benchmarks/perf_gate.py``) runs the same kernel
against the thresholds committed in ``benchmarks/baseline.json`` and
writes ``BENCH_matching.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_matching.py -q
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks._emit import measure  # noqa: E402
from repro.indexing import attach_index, detach_index  # noqa: E402
from repro.matching import find_homomorphisms, seed_find_homomorphisms  # noqa: E402
from repro.reasoning.validation import (  # noqa: E402
    Violation,
    evaluate_match,
    find_violations,
    x_literal_restrictions,
)
from repro.workloads import bounded_rule_set, validation_workload  # noqa: E402

DEFAULT_CONFIG = {"nodes": 400, "rng": 13, "repeats": 5}


def _seed_find_violations(graph, sigma):
    """find_violations re-spelled over the seed enumerator (the exact
    pre-plan interpretation: candidate sets re-derived per call)."""
    found = []
    for ged in sigma:
        restrict = x_literal_restrictions(graph, ged)
        for match in seed_find_homomorphisms(ged.pattern, graph, restrict=restrict):
            failed = evaluate_match(graph, ged, match)
            if failed:
                found.append(Violation(ged, tuple(sorted(match.items())), failed))
    return found


def run_matching_bench(nodes: int = 400, rng: int = 13, repeats: int = 5) -> dict:
    """Validate the committed workload through both matcher generations
    — seed interpreter vs compiled plans, unindexed and indexed — and
    return records plus the headline (unindexed) speedup.

    Correctness is asserted inside the kernel: violation reports are
    byte-identical in every configuration, and each dependency's raw
    match stream is compared elementwise.
    """
    graph = validation_workload(nodes, rng=rng)
    sigma = bounded_rule_set()

    records: list[dict] = []
    speedups: dict[str, float] = {}
    for indexed in (False, True):
        if indexed:
            attach_index(graph)
        else:
            detach_index(graph)
        try:
            seed_wall, seed_report = measure(
                lambda: _seed_find_violations(graph, sigma), repeats
            )
            plan_wall, plan_report = measure(
                lambda: find_violations(graph, sigma), repeats
            )
            assert plan_report == seed_report, "plan validation diverged from seed"
            for ged in sigma:
                plan_stream = list(find_homomorphisms(ged.pattern, graph))
                seed_stream = list(seed_find_homomorphisms(ged.pattern, graph))
                assert plan_stream == seed_stream, (
                    f"{ged.name}: match stream not byte-identical"
                )
            label = "indexed" if indexed else "unindexed"
            speedups[label] = seed_wall / plan_wall if plan_wall else float("inf")
            records.append(
                {
                    "mode": label,
                    "matcher": "seed",
                    "wall_s": seed_wall,
                    "violations": len(seed_report),
                }
            )
            records.append(
                {
                    "mode": label,
                    "matcher": "plan",
                    "wall_s": plan_wall,
                    "violations": len(plan_report),
                }
            )
        finally:
            detach_index(graph)

    return {
        "config": {"nodes": nodes, "rng": rng, "repeats": repeats},
        "records": records,
        "speedup_unindexed": speedups["unindexed"],
        "speedup_indexed": speedups["indexed"],
    }


# ----------------------------------------------------------------------
# pytest entry points (run in CI's test job with --benchmark-disable)
# ----------------------------------------------------------------------


def test_plan_validation_matches_seed():
    """The correctness half on a smaller instance (assertions run
    inside the kernel; quick enough for the plain test job)."""
    result = run_matching_bench(nodes=150, rng=13, repeats=1)
    assert len(result["records"]) == 4


def test_plan_validation_beats_seed():
    """The performance half: compiled plans beat the seed interpreter
    on the committed workload (the CI gate enforces the 3x floor; this
    in-suite check uses a conservative 1.5x so shared test runners stay
    green)."""
    result = run_matching_bench(**DEFAULT_CONFIG)
    assert result["speedup_unindexed"] > 1.5, (
        f"plan-executed validation only {result['speedup_unindexed']:.1f}x "
        f"faster than the seed interpreter"
    )
    _emit(result)


def _emit(result: dict) -> None:
    from benchmarks._emit import emit_bench

    emit_bench(
        "matching",
        result["records"],
        meta={
            "config": result["config"],
            "speedup_unindexed": result["speedup_unindexed"],
            "speedup_indexed": result["speedup_indexed"],
        },
    )


if __name__ == "__main__":
    import json

    outcome = run_matching_bench(**DEFAULT_CONFIG)
    _emit(outcome)
    print(json.dumps({k: v for k, v in outcome.items() if k != "records"}, indent=2))
