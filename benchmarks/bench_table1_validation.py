"""Table 1, validation column.

Paper's claims: coNP-complete in general — even for a single GFDx /
GKey — but PTIME when patterns have bounded size k (Section 5.3; the
paper motivates k ≤ 4-5 from real SPARQL workloads).

Reproduced shape: the Theorem 6 reduction family (pattern = C_n, data
= attributed K3) costs one match check per proper 3-coloring — growing
exponentially in the *pattern* size — while the bounded-k rule set on
growing *data* graphs scales like a low polynomial in |G|.
"""

import pytest

from benchmarks.conftest import odd_cycle
from repro.reasoning import find_violations, validate_bounded, validates
from repro.reductions import gfdx_validation_instance, gkey_validation_instance
from repro.workloads import bounded_rule_set, validation_workload

CYCLES = [5, 7, 9]
DATA_SIZES = [100, 400, 1600]


@pytest.mark.parametrize("n", CYCLES)
def test_gfdx_validation_hard_family(benchmark, n):
    """coNP row: the single-GFDx reduction, pattern size = n."""
    graph, sigma = gfdx_validation_instance(odd_cycle(n))

    ok = benchmark(lambda: validates(graph, sigma))
    assert not ok  # odd cycles are 3-colorable -> violations exist
    benchmark.extra_info["pattern_size"] = sigma[0].pattern.size()
    benchmark.extra_info["violations"] = len(find_violations(graph, sigma))


@pytest.mark.parametrize("n", CYCLES)
def test_gkey_validation_hard_family(benchmark, n):
    """coNP row: the single-GKey reduction (double-sized pattern)."""
    graph, sigma = gkey_validation_instance(odd_cycle(n))

    ok = benchmark(lambda: validates(graph, sigma))
    assert not ok
    benchmark.extra_info["pattern_size"] = sigma[0].pattern.size()


@pytest.mark.parametrize("size", DATA_SIZES)
def test_bounded_k_validation_easy_family(benchmark, size):
    """PTIME row: fixed k ≤ 4 rules over data graphs of growing size."""
    graph = validation_workload(size, rng=13)
    sigma = bounded_rule_set()

    violations = benchmark(lambda: validate_bounded(graph, sigma, k=4))
    benchmark.extra_info["data_nodes"] = size
    benchmark.extra_info["violations"] = len(violations)


def test_shape_pattern_size_dominates_data_size():
    """The asymmetry Table 1 predicts: growing the *pattern* by 4 nodes
    multiplies the match space; growing the *data* 16x with bounded
    patterns only scales polynomially.  Match counts make the claim
    machine-independent."""
    from repro.matching import count_matches

    hard_matches = []
    for n in CYCLES:
        graph, sigma = gfdx_validation_instance(odd_cycle(n))
        hard_matches.append(count_matches(sigma[0].pattern, graph))
    # ~2^n growth (proper 3-colorings of C_n): 30, 126, 510.
    assert hard_matches[1] >= 3 * hard_matches[0]
    assert hard_matches[2] >= 3 * hard_matches[1]

    easy_matches = []
    for size in DATA_SIZES:
        graph = validation_workload(size, rng=13)
        easy_matches.append(
            sum(count_matches(g.pattern, graph) for g in bounded_rule_set())
        )
    # Quadrupling the data should not blow up super-polynomially: the
    # expected-degree-preserving workload keeps match growth ~linear.
    assert easy_matches[2] <= 40 * easy_matches[0]
