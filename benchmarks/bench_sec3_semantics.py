"""Section 3: homomorphism vs subgraph-isomorphism semantics.

The paper's argument for homomorphism matching: GKey ψ3 catches no
violations under injective semantics (two pattern copies can never map
onto the same node), and the '∅ → x.id = y.id' style of key has no
sensible model under isomorphism.  The bench compares match counts and
costs of the two matchers on the album workload, and shows the
detection asymmetry end to end.
"""

import pytest

from repro import paper
from repro.graph import GraphBuilder
from repro.matching import (
    count_injective_matches,
    count_matches,
    find_injective_matches,
)
from repro.reasoning import find_violations


def album_catalog(n: int, duplicated: bool):
    b = GraphBuilder()
    for i in range(n):
        b.node(f"alb{i}", "album", title=f"T{i}", release=1990)
        b.node(f"art{i}", "artist", name=f"N{i}")
        b.edge(f"alb{i}", "primary_artist", f"art{i}")
        if duplicated:
            b.node(f"alb{i}d", "album", title=f"T{i}", release=1990)
            b.edge(f"alb{i}d", "primary_artist", f"art{i}")
    return b.build()


@pytest.mark.parametrize("n", [4, 8])
def test_homomorphism_matching_cost(benchmark, n):
    graph = album_catalog(n, duplicated=True)
    pattern = paper.psi1().pattern

    matches = benchmark(lambda: count_matches(pattern, graph))
    benchmark.extra_info["matches"] = matches


@pytest.mark.parametrize("n", [4, 8])
def test_injective_matching_cost(benchmark, n):
    graph = album_catalog(n, duplicated=True)
    pattern = paper.psi1().pattern

    matches = benchmark(lambda: count_injective_matches(pattern, graph))
    benchmark.extra_info["matches"] = matches


def test_semantics_detection_asymmetry(benchmark):
    """ψ1 finds duplicates under homomorphism; the injective matcher
    cannot certify artist identity for single-copy artists, so the same
    check under isomorphism semantics misses them."""
    graph = album_catalog(6, duplicated=True)
    psi1 = paper.psi1()

    def run():
        hom_violations = find_violations(graph, [psi1])
        injective_hits = 0
        for match in find_injective_matches(psi1.pattern, graph):
            # Under isomorphism, X's id literal xp.id = xp'.id can never
            # hold (distinct variables -> distinct nodes), so the key
            # never fires.
            if match["xp"] == match["xp'"]:
                injective_hits += 1
        return hom_violations, injective_hits

    hom_violations, injective_hits = benchmark(run)
    assert len(hom_violations) > 0
    assert injective_hits == 0
    benchmark.extra_info["hom_violations"] = len(hom_violations)
    benchmark.extra_info["iso_detections"] = injective_hits
