"""Load harness for the violation-subscription push server.

The serving claim (ISSUE 7): one :class:`repro.serve.ViolationServer`
sustains **50 subscribers at 20 update batches/s for 30 s** with a p99
end-to-end push latency under 250 ms, while every subscriber's delta
stream stays gap-free — and pushing per-batch deltas is **≥ 5x
cheaper** than handing each subscriber a fresh full revalidation per
batch (the coordinator-entity payoff: the ledger computes each delta
once, filtering and fan-out are cheap per subscriber, so serving cost
grows with the *delta*, not with |G| × subscribers).

:func:`run_serve_bench` is the shared measurement kernel: the pytest
entry point below runs a scaled-down smoke shape and asserts the
correctness half (gap-free streams, zero resyncs, every batch acked);
the CI perf gate (``benchmarks/perf_gate.py``) runs the committed
``baseline.json`` shape against its thresholds and writes
``BENCH_serve.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.reasoning import find_violations  # noqa: E402
from repro.serve import ServeClient, ViolationServer  # noqa: E402
from repro.workloads import churn_stream  # noqa: E402

DEFAULT_CONFIG = {
    "subscribers": 50,
    "updates_per_s": 20,
    "duration_s": 30.0,
    "nodes": 200,
    "batch_size": 4,
    "rng": 13,
}


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (0 for an empty sample set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


async def _subscriber_loop(
    client: ServeClient,
    publish_times: dict[int, float],
    latencies: list[float],
    stats: dict,
) -> None:
    """Consume the push stream, verifying seq continuity and timing
    each delta against the moment its batch was acknowledged."""
    bootstrap = await client.subscribe()
    next_seq = bootstrap["seq"] + 1
    while True:
        event = await client.next_event()
        kind = event.get("type")
        if kind == "bye":
            return
        if kind == "resync":
            stats["resyncs"] += 1
            rebase = await client.next_event()
            assert rebase["type"] == "bootstrap"
            next_seq = rebase["seq"] + 1
            continue
        if kind != "delta":
            continue
        if event["seq"] != next_seq:
            stats["gaps"] += 1
        next_seq = event["seq"] + 1
        published = publish_times.get(event["seq"])
        if published is not None:
            latencies.append(max(0.0, time.perf_counter() - published))
        stats["deltas"] += 1


def run_serve_bench(
    subscribers: int = 50,
    updates_per_s: float = 20,
    duration_s: float = 30.0,
    nodes: int = 200,
    batch_size: int = 4,
    rng: int = 13,
    queue_size: int = 256,
) -> dict:
    """Drive one server with paced publishes and N live subscribers.

    Push latency is measured end to end *per (batch, subscriber)*: the
    clock starts when the publisher receives the batch's ``ack`` (the
    batch is applied and every subscriber's frame is enqueued) and
    stops when that subscriber's reader task has the delta frame in
    hand — covering queueing, the socket write, and the client read.
    """
    total_batches = int(updates_per_s * duration_s)
    stream = churn_stream(
        n_nodes=nodes, batches=total_batches, batch_size=batch_size, rng=rng
    )
    graph = stream.base.copy()

    publish_times: dict[int, float] = {}
    latencies: list[float] = []
    stats = {"deltas": 0, "gaps": 0, "resyncs": 0}

    async def drive() -> dict:
        server = ViolationServer(graph, stream.sigma, queue_size=queue_size)
        await server.start()
        clients = [
            await ServeClient.connect("127.0.0.1", server.port)
            for _ in range(subscribers)
        ]
        consumers = [
            asyncio.get_running_loop().create_task(
                _subscriber_loop(client, publish_times, latencies, stats)
            )
            for client in clients
        ]
        publisher = await ServeClient.connect("127.0.0.1", server.port)
        await publisher.send_update(stream.updates[0])  # warm the path
        publish_times[1] = time.perf_counter()

        interval = 1.0 / updates_per_s
        started = time.perf_counter()
        behind = 0
        for n, update in enumerate(stream.updates[1:], start=2):
            target = started + (n - 1) * interval
            now = time.perf_counter()
            if now < target:
                await asyncio.sleep(target - now)
            else:
                behind += 1
            ack = await publisher.send_update(update)
            publish_times[ack["seq"]] = time.perf_counter()
        wall = time.perf_counter() - started

        # Let the slowest queue drain, then shut down (bye ends consumers).
        await asyncio.sleep(0.25)
        server_stats = server.stats()
        await publisher.close()
        await server.stop()
        await asyncio.gather(*consumers, return_exceptions=True)
        for client in clients:
            await client.close()
        return {"wall": wall, "server": server_stats}

    outcome = asyncio.run(drive())
    server_stats = outcome["server"]

    # The comparison cost: one full revalidation of the final graph —
    # what each subscriber would pay per batch without the delta push.
    full_started = time.perf_counter()
    find_violations(graph, stream.sigma)
    full_wall = time.perf_counter() - full_started

    batches = server_stats["batches_applied"]
    delta_cost_per_batch = server_stats["apply_seconds"] / batches
    full_cost_per_batch = full_wall * subscribers
    achieved_rate = (batches - 1) / outcome["wall"] if outcome["wall"] else 0.0

    return {
        "config": {
            "subscribers": subscribers,
            "updates_per_s": updates_per_s,
            "duration_s": duration_s,
            "nodes": nodes,
            "batch_size": batch_size,
            "rng": rng,
            "queue_size": queue_size,
        },
        "records": [
            {
                "batches": batches,
                "achieved_updates_per_s": achieved_rate,
                "deltas_received": stats["deltas"],
                "gaps": stats["gaps"],
                "resyncs": stats["resyncs"],
                "latency_samples": len(latencies),
                "push_p50_s": percentile(latencies, 0.50),
                "push_p95_s": percentile(latencies, 0.95),
                "push_p99_s": percentile(latencies, 0.99),
                "apply_seconds": server_stats["apply_seconds"],
                "full_revalidation_wall_s": full_wall,
            }
        ],
        "batches": batches,
        "achieved_updates_per_s": achieved_rate,
        "gaps": stats["gaps"],
        "resyncs": stats["resyncs"],
        "push_p50_s": percentile(latencies, 0.50),
        "push_p95_s": percentile(latencies, 0.95),
        "push_p99_s": percentile(latencies, 0.99),
        "delta_vs_full": full_cost_per_batch / delta_cost_per_batch
        if delta_cost_per_batch
        else float("inf"),
    }


# ----------------------------------------------------------------------
# pytest entry point (scaled-down smoke; the CI gate runs the full shape)
# ----------------------------------------------------------------------


def test_serve_sustains_load_gap_free():
    """Correctness half on a small shape: every subscriber's stream is
    gap-free with zero resyncs, every batch reaches every subscriber,
    and the latency tail stays sane (a loose 2 s bound — the honest
    250 ms p99 floor is enforced by the CI perf gate on the committed
    shape, where timing noise is gated, not asserted per-run)."""
    result = run_serve_bench(
        subscribers=5, updates_per_s=25, duration_s=1.2, nodes=80, rng=13
    )
    assert result["gaps"] == 0
    assert result["resyncs"] == 0
    assert result["batches"] >= 10
    assert result["push_p99_s"] < 2.0
    assert result["delta_vs_full"] > 1.0


def _emit(result: dict) -> None:
    from benchmarks._emit import emit_bench

    emit_bench(
        "serve",
        result["records"],
        meta={
            "config": result["config"],
            "push_p50_s": result["push_p50_s"],
            "push_p95_s": result["push_p95_s"],
            "push_p99_s": result["push_p99_s"],
            "delta_vs_full": result["delta_vs_full"],
            "achieved_updates_per_s": result["achieved_updates_per_s"],
        },
    )


if __name__ == "__main__":
    import json

    outcome = run_serve_bench(**DEFAULT_CONFIG)
    _emit(outcome)
    print(json.dumps({k: v for k, v in outcome.items() if k != "records"}, indent=2))
