"""Ablation: structural deduplication before the implication cover.

DESIGN.md calls out the two-phase cover (cheap renaming-isomorphism
dedup, then chase-based implication) as a design choice.  This bench
quantifies it: on a rule set bloated with renamed copies — the
realistic redundancy in hand-curated rule collections — dedup-first
removes most duplicates without a single chase, so total cover time
drops although both variants return equivalent covers.
"""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import ConstantLiteral, VariableLiteral
from repro.optimization.cover import compute_cover
from repro.patterns.pattern import Pattern


def bloated_rule_set(copies: int) -> list[GED]:
    """A base of 3 distinct rules plus `copies` renamed duplicates each."""
    rules: list[GED] = []
    for c in range(copies + 1):
        sfx = "" if c == 0 else f"_{c}"
        q1 = Pattern(
            {f"x{sfx}": "person", f"y{sfx}": "product"},
            [(f"x{sfx}", "create", f"y{sfx}")],
        )
        rules.append(
            GED(
                q1,
                [ConstantLiteral(f"y{sfx}", "type", "video game")],
                [ConstantLiteral(f"x{sfx}", "type", "programmer")],
            )
        )
        q2 = Pattern(
            {f"c{sfx}": "country", f"p{sfx}": "city", f"q{sfx}": "city"},
            [(f"c{sfx}", "capital", f"p{sfx}"), (f"c{sfx}", "capital", f"q{sfx}")],
        )
        rules.append(
            GED(q2, [], [VariableLiteral(f"p{sfx}", "name", f"q{sfx}", "name")])
        )
        q3 = Pattern({f"a{sfx}": "account"})
        rules.append(GED(q3, [], [ConstantLiteral(f"a{sfx}", "checked", 1)]))
    return rules


COPIES = [2, 4, 8]


@pytest.mark.parametrize("copies", COPIES)
def test_cover_with_dedup(benchmark, copies):
    rules = bloated_rule_set(copies)
    report = benchmark(lambda: compute_cover(rules, dedup_first=True))
    assert len(report.cover) == 3
    benchmark.extra_info["input_rules"] = len(rules)
    benchmark.extra_info["structural_dupes"] = len(report.structural_duplicates)
    benchmark.extra_info["implication_checks_avoided"] = len(
        report.structural_duplicates
    )


@pytest.mark.parametrize("copies", COPIES)
def test_cover_without_dedup(benchmark, copies):
    rules = bloated_rule_set(copies)
    report = benchmark(lambda: compute_cover(rules, dedup_first=False))
    assert len(report.cover) == 3
    benchmark.extra_info["input_rules"] = len(rules)


def test_shape_both_variants_equivalent():
    """Ablation soundness: with and without dedup, covers are logically
    equivalent (each implies every dropped rule of the other)."""
    from repro.reasoning.implication import implies

    rules = bloated_rule_set(3)
    with_dedup = compute_cover(rules, dedup_first=True)
    without = compute_cover(rules, dedup_first=False)
    for dropped in without.implied:
        assert implies(with_dedup.cover, dropped)
    for dropped in with_dedup.implied + with_dedup.structural_duplicates:
        assert implies(without.cover, dropped)
