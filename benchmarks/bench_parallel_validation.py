"""Parallel validation (the Section 9 future-work claim).

The paper's conclusion asks for "parallel scalable algorithms for
reasoning about GEDs, to warrant speedup with the increase of
processors".  Sharded validation (``repro.parallel``) partitions the
match space exactly, so the relevant shape claims are:

* per-shard maximum work (matches enumerated by the busiest worker)
  falls as worker count grows — the algorithmic speedup bound, which
  is machine- and GIL-independent;
* shard balance stays near 1.0 on uniform workloads (the round-robin
  pivot split is even);
* total matches across shards equals the unsharded count (no work
  inflation from sharding).

Wall time: the serial backend is the reference; the ``engine`` backend
(persistent worker pool, one-time snapshot broadcast, warm workers
holding graph + index + candidate caches — see :mod:`repro.engine`)
is benchmarked against it per worker count.  The CI perf gate
(``benchmarks/perf_gate.py``) turns the same comparison into a
regression check against ``benchmarks/baseline.json``.
"""

import pytest

from repro.engine import shutdown_pools
from repro.indexing import attach_index
from repro.parallel import parallel_find_violations
from repro.reasoning import find_violations
from repro.workloads import bounded_rule_set, validation_workload

WORKERS = [1, 2, 4, 8]
DATA_NODES = 400


@pytest.fixture(scope="module")
def workload():
    graph = validation_workload(DATA_NODES, rng=13)
    sigma = bounded_rule_set()
    yield graph, sigma
    shutdown_pools()


@pytest.fixture(scope="module")
def indexed_workload():
    graph = validation_workload(DATA_NODES, rng=13)
    attach_index(graph)
    sigma = bounded_rule_set()
    yield graph, sigma
    shutdown_pools()


@pytest.mark.parametrize("workers", WORKERS)
def test_sharded_validation_scaling(benchmark, workload, workers):
    """Max-shard work shrinks as the worker count grows."""
    graph, sigma = workload

    report = benchmark(
        lambda: parallel_find_violations(graph, sigma, workers=workers, backend="serial")
    )
    max_shard = max((s.matches for s in report.stats), default=0)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["total_matches"] = report.total_matches()
    benchmark.extra_info["max_shard_matches"] = max_shard
    benchmark.extra_info["balance"] = round(report.balance(), 3)


def test_shape_speedup_with_workers(workload):
    """The scalability claim, machine-independently: the busiest shard's
    match count drops roughly linearly in the worker count, while total
    work stays constant (exact sharding)."""
    graph, sigma = workload
    reference = len(find_violations(graph, sigma))

    totals = {}
    max_shards = {}
    for workers in WORKERS:
        report = parallel_find_violations(graph, sigma, workers=workers)
        assert len(report.violations) == reference
        totals[workers] = report.total_matches()
        max_shards[workers] = max((s.matches for s in report.stats), default=0)

    assert len(set(totals.values())) == 1, "sharding must not change total work"
    assert max_shards[8] * 4 <= max_shards[1] * 1.5, (
        f"busiest shard should shrink ~linearly: {max_shards}"
    )
    assert max_shards[4] < max_shards[1]


@pytest.mark.parametrize("workers", [2, 4])
def test_engine_backend_wall_clock(benchmark, indexed_workload, workers):
    """Warm engine-pool validation per worker count (the pool is built
    on the first round; subsequent rounds measure the warm path)."""
    graph, sigma = indexed_workload

    report = benchmark(
        lambda: parallel_find_violations(graph, sigma, workers=workers, backend="engine")
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["backend"] = "engine"
    benchmark.extra_info["indexed"] = report.indexed
    benchmark.extra_info["violations"] = len(report.violations)


def test_engine_report_equals_serial(workload):
    """The engine backend's report is byte-identical to serial's."""
    graph, sigma = workload
    serial = parallel_find_violations(graph, sigma, workers=4, backend="serial")
    engine = parallel_find_violations(graph, sigma, workers=4, backend="engine")
    assert engine.violations == serial.violations
    assert engine.total_matches() == serial.total_matches()
