"""Shared fixtures and instance families for the benchmark harness.

Table 1 of the paper is a complexity landscape, not a timing table, so
each benchmark measures the *shape* of the cost curve on a scaling
family of instances:

* hardness families come from the Section 5/7 reductions (odd wheels
  are not 3-colorable, odd cycles are — both scale cleanly);
* tractable families come from the paper's own tractability claims
  (GFDx satisfiability, bounded-pattern-size validation).

Wall-clock numbers land in the pytest-benchmark table; structural work
counters (matches enumerated, chase steps, search candidates, branch
counts) are attached as ``extra_info`` so the EXPERIMENTS.md shape
claims do not depend on machine speed.

Two harness-wide guarantees:

* **determinism** — an autouse fixture reseeds ``random`` before every
  bench, so instance families and any sampling inside a bench are
  identical run to run (workload generators already take explicit
  ``rng`` seeds; this covers incidental randomness);
* **machine-readable output** — at session end every module's recorded
  benchmarks are written as ``BENCH_<module>.json`` in the shared
  :mod:`benchmarks._emit` format, the same schema the CI perf gate
  emits and checks.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.graph.graph import Graph

#: One fixed seed for the whole harness (the paper's PODS'17 vintage).
BENCH_SEED = 20170513


@pytest.fixture(autouse=True)
def _seed_rng():
    """Reseed the global RNG so every bench is reproducible bit-for-bit."""
    random.seed(BENCH_SEED)
    yield


def pytest_sessionfinish(session, exitstatus):
    """Emit every module's recorded benchmarks as BENCH_<module>.json."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    by_module: dict[str, list[dict]] = {}
    for bench in benchmark_session.benchmarks:
        stats = bench.stats
        if stats is None:  # --benchmark-disable runs record nothing
            continue
        module = Path(bench.fullname.split("::", 1)[0]).stem
        name = module.removeprefix("bench_")
        by_module.setdefault(name, []).append(
            {
                "test": bench.name,
                "group": bench.group,
                "min_s": stats.min,
                "mean_s": stats.mean,
                "stddev_s": stats.stddev,
                "rounds": stats.rounds,
                "extra_info": dict(bench.extra_info),
            }
        )
    from benchmarks._emit import emit_bench

    for name, records in sorted(by_module.items()):
        emit_bench(name, records, meta={"seed": BENCH_SEED})


def odd_wheel(rim: int) -> Graph:
    """W_rim: an odd cycle plus a hub — not 3-colorable for odd rim ≥ 3.

    These are the satisfiable instances of the Theorem 3 reductions
    (satisfiable iff NOT 3-colorable), so the chase runs to a full
    fixpoint instead of aborting at the first conflict.
    """
    if rim % 2 == 0:
        raise ValueError("wheel rim must be odd for non-3-colorability")
    g = Graph()
    g.add_node("hub", "v")
    for i in range(rim):
        g.add_node(f"r{i}", "v")
    for i in range(rim):
        j = (i + 1) % rim
        g.add_edge(f"r{i}", "adj", f"r{j}")
        g.add_edge(f"r{j}", "adj", f"r{i}")
        g.add_edge("hub", "adj", f"r{i}")
        g.add_edge(f"r{i}", "adj", "hub")
    return g


def odd_cycle(n: int) -> Graph:
    """C_n for odd n — 3-colorable with ~2^n proper colorings, the
    expensive YES-instances of the implication/validation reductions."""
    from repro.graph.generators import cycle_graph

    if n % 2 == 0:
        raise ValueError("use odd cycles")
    return cycle_graph(n)


@pytest.fixture(scope="session")
def kb_workload():
    from repro.workloads import synthetic_knowledge_base

    return synthetic_knowledge_base(error_rate=0.25, rng=42)


@pytest.fixture(scope="session")
def social_workload():
    from repro.workloads import synthetic_social_network

    return synthetic_social_network(n_rings=5, n_benign_pairs=8, rng=7)
