"""Shared fixtures and instance families for the benchmark harness.

Table 1 of the paper is a complexity landscape, not a timing table, so
each benchmark measures the *shape* of the cost curve on a scaling
family of instances:

* hardness families come from the Section 5/7 reductions (odd wheels
  are not 3-colorable, odd cycles are — both scale cleanly);
* tractable families come from the paper's own tractability claims
  (GFDx satisfiability, bounded-pattern-size validation).

Wall-clock numbers land in the pytest-benchmark table; structural work
counters (matches enumerated, chase steps, search candidates, branch
counts) are attached as ``extra_info`` so the EXPERIMENTS.md shape
claims do not depend on machine speed.
"""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph


def odd_wheel(rim: int) -> Graph:
    """W_rim: an odd cycle plus a hub — not 3-colorable for odd rim ≥ 3.

    These are the satisfiable instances of the Theorem 3 reductions
    (satisfiable iff NOT 3-colorable), so the chase runs to a full
    fixpoint instead of aborting at the first conflict.
    """
    if rim % 2 == 0:
        raise ValueError("wheel rim must be odd for non-3-colorability")
    g = Graph()
    g.add_node("hub", "v")
    for i in range(rim):
        g.add_node(f"r{i}", "v")
    for i in range(rim):
        j = (i + 1) % rim
        g.add_edge(f"r{i}", "adj", f"r{j}")
        g.add_edge(f"r{j}", "adj", f"r{i}")
        g.add_edge("hub", "adj", f"r{i}")
        g.add_edge(f"r{i}", "adj", "hub")
    return g


def odd_cycle(n: int) -> Graph:
    """C_n for odd n — 3-colorable with ~2^n proper colorings, the
    expensive YES-instances of the implication/validation reductions."""
    from repro.graph.generators import cycle_graph

    if n % 2 == 0:
        raise ValueError("use odd cycles")
    return cycle_graph(n)


@pytest.fixture(scope="session")
def kb_workload():
    from repro.workloads import synthetic_knowledge_base

    return synthetic_knowledge_base(error_rate=0.25, rng=42)


@pytest.fixture(scope="session")
def social_workload():
    from repro.workloads import synthetic_social_network

    return synthetic_social_network(n_rings=5, n_benign_pairs=8, rng=7)
