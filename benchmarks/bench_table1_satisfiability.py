"""Table 1, satisfiability column.

Paper's claims:
  GEDs / GFDs / GKeys / GEDxs — coNP-complete;
  GFDxs — O(1).

Reproduced shape: on the Theorem 3 reduction families the chase-based
check grows super-polynomially with the instance size (the canonical
graph's match enumeration is the exponential engine), while GFDx sets
are answered in constant time regardless of size.
"""

import pytest

from benchmarks.conftest import odd_wheel
from repro.deps import GED, VariableLiteral
from repro.patterns import Pattern
from repro.reasoning import check_satisfiability, is_satisfiable
from repro.reductions import gfd_satisfiability_instance, gkey_satisfiability_instance

WHEEL_RIMS = [3, 5, 7]


@pytest.mark.parametrize("rim", WHEEL_RIMS)
def test_gfd_satisfiability_hard_family(benchmark, rim):
    """coNP row (GFDs): chase G_Σ for the 3-colorability reduction."""
    h = odd_wheel(rim)
    sigma = gfd_satisfiability_instance(h)

    result = benchmark(lambda: check_satisfiability(sigma, use_shortcut=False))
    assert result.satisfiable  # odd wheels are not 3-colorable
    benchmark.extra_info["instance_nodes"] = h.num_nodes
    benchmark.extra_info["chase_steps"] = len(result.chase_result.steps)


@pytest.mark.parametrize("rim", WHEEL_RIMS)
def test_gkey_satisfiability_hard_family(benchmark, rim):
    """coNP row (GKeys, no constants): id-literal driven conflicts."""
    h = odd_wheel(rim)
    sigma = gkey_satisfiability_instance(h)

    result = benchmark(lambda: check_satisfiability(sigma, use_shortcut=False))
    assert result.satisfiable
    benchmark.extra_info["instance_nodes"] = h.num_nodes
    benchmark.extra_info["chase_steps"] = len(result.chase_result.steps)


@pytest.mark.parametrize("n_rules", [10, 40, 160])
def test_gfdx_satisfiability_constant_time(benchmark, n_rules):
    """O(1) row (GFDxs): the shortcut answers without any chase."""
    pattern = Pattern({"x": "a", "y": "a"}, [("x", "r", "y")])
    sigma = [
        GED(pattern, [], [VariableLiteral("x", f"A{i}", "y", f"A{i}")])
        for i in range(n_rules)
    ]

    outcome = benchmark(lambda: check_satisfiability(sigma))
    assert outcome.satisfiable and outcome.chase_result is None
    benchmark.extra_info["n_rules"] = n_rules


def test_shape_hard_vs_easy():
    """The structural claim behind the row: reduction instances cost
    chase work that grows with the instance, GFDx sets cost none."""
    steps = []
    for rim in WHEEL_RIMS:
        outcome = check_satisfiability(
            gfd_satisfiability_instance(odd_wheel(rim)), use_shortcut=False
        )
        steps.append(len(outcome.chase_result.steps))
    assert steps == sorted(steps) and steps[-1] > steps[0], steps
    # GFDx: literally no chase performed.
    pattern = Pattern({"x": "a"})
    easy = [GED(pattern, [], [VariableLiteral("x", "A", "x", "A")])]
    assert check_satisfiability(easy).chase_result is None
    assert is_satisfiable(easy)
