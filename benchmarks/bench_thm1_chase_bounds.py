"""Theorem 1: the chase is finite, bounded, and Church-Rosser.

Measures (a) chase cost against the paper's bounds — |Eq| ≤ 4·|G|·|Σ|
and sequence length ≤ 8·|G|·|Σ| — on random instances, reporting the
observed/bound ratios; (b) the cost of differently-ordered runs, whose
results must coincide (Church-Rosser), including the entity-resolution
chase on the album workload.
"""

import random

import pytest

from repro.chase import chase
from repro.deps import GED, ConstantLiteral, IdLiteral, VariableLiteral, sigma_size
from repro.graph import graph_to_dict, random_labeled_graph
from repro.patterns import WILDCARD, Pattern
from repro.quality import album_keys


def random_instance(seed: int, n: int):
    rng = random.Random(seed)
    g = random_labeled_graph(
        n, 0.3, node_labels=["a", "b"], edge_labels=["r"], rng=rng.randint(0, 999),
        attribute_names=["A", "B"], attribute_values=[1, 2],
    )
    sigma = []
    for _ in range(3):
        labels = {f"x{i}": rng.choice(["a", "b", WILDCARD]) for i in range(2)}
        edges = [("x0", "r", "x1")] if rng.random() < 0.6 else []
        lits = [
            VariableLiteral("x0", "A", "x1", "A"),
            rng.choice(
                [IdLiteral("x0", "x1"), ConstantLiteral("x0", "B", 1),
                 VariableLiteral("x0", "B", "x1", "B")]
            ),
        ]
        sigma.append(GED(Pattern(labels, edges), lits[:1], lits[1:]))
    return g, sigma


@pytest.mark.parametrize("n", [6, 12, 24])
def test_chase_cost_scaling(benchmark, n):
    g, sigma = random_instance(11, n)

    result = benchmark(lambda: chase(g.copy(), sigma))
    bound = 8 * max(1, g.size()) * max(1, sigma_size(sigma))
    benchmark.extra_info["steps"] = len(result.steps)
    benchmark.extra_info["bound"] = bound
    benchmark.extra_info["utilization"] = round(len(result.steps) / bound, 4)
    assert len(result.steps) <= bound
    assert result.eq.element_count() <= 4 * max(1, g.size()) * max(1, sigma_size(sigma))


@pytest.mark.parametrize("order_seed", [None, 1, 2])
def test_church_rosser_order_cost(benchmark, order_seed):
    """Different application orders: same result, comparable cost."""
    g, sigma = random_instance(23, 10)
    baseline = chase(g.copy(), sigma)

    result = benchmark(lambda: chase(g.copy(), sigma, rng=order_seed))
    assert result.consistent == baseline.consistent
    if baseline.consistent:
        assert graph_to_dict(result.graph) == graph_to_dict(baseline.graph)


def test_entity_resolution_chase(benchmark):
    """The recursive-key chase on a duplicated album catalog."""
    from repro.graph import GraphBuilder

    b = GraphBuilder()
    for i in range(6):
        for copy in ("x", "y"):
            b.node(f"alb{i}{copy}", "album", title=f"T{i}", release=1990 + i)
            b.node(f"art{i}{copy}", "artist", name=f"N{i}")
            b.edge(f"alb{i}{copy}", "primary_artist", f"art{i}{copy}")
    g = b.build()

    result = benchmark(lambda: chase(g.copy(), album_keys()))
    assert result.consistent
    # Every duplicated album/artist pair merged: 24 nodes -> 12.
    assert result.graph.num_nodes == 12
    benchmark.extra_info["merges"] = len(result.steps)
