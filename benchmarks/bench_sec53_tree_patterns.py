"""Section 5.3: tree patterns do NOT make GED reasoning tractable.

The paper: "even for GEDs defined in terms of tree patterns, the
satisfiability, implication and validation problems remain intractable
... because the analyses require to enumerate and examine all matches
of a pattern Q in a graph G in the worst case, not just to check
whether there exists a match."

The witness family is elementary: a path pattern P_n (a tree) over an
attributed triangle K3 has 3·2ⁿ homomorphisms — finding *one* match is
trivial, but a GFDx whose Y fails on specific colorings forces the
validator through the whole match set.  Bounded pattern size, not
acyclicity, is what buys tractability (the same module's bounded-k
facade stays polynomial; see bench_table1_validation).
"""

import pytest

from repro.deps.ged import GED
from repro.deps.literals import VariableLiteral
from repro.graph.graph import Graph
from repro.matching.homomorphism import count_matches, has_match
from repro.patterns.pattern import Pattern
from repro.reasoning.validation import validates

DEPTHS = [6, 9, 12]


def attributed_triangle() -> Graph:
    g = Graph()
    for i, value in enumerate([0, 1, 2]):
        g.add_node(f"v{i}", "v", {"c": value})
    for i in range(3):
        for j in range(3):
            if i != j:
                g.add_edge(f"v{i}", "adj", f"v{j}")
    return g


def path_pattern(n: int) -> Pattern:
    nodes = {f"x{i}": "v" for i in range(n + 1)}
    edges = [(f"x{i}", "adj", f"x{i+1}") for i in range(n)]
    return Pattern(nodes, edges)


def ends_agree_rule(n: int) -> GED:
    """A GFDx over the tree pattern: the path's endpoints agree on c.
    Fails on most walks of the triangle -> the validator must search."""
    return GED(
        path_pattern(n), [], [VariableLiteral("x0", "c", f"x{n}", "c")]
    )


@pytest.mark.parametrize("n", DEPTHS)
def test_tree_pattern_validation_hard(benchmark, n):
    g = attributed_triangle()
    sigma = [ends_agree_rule(n)]

    ok = benchmark(lambda: validates(g, sigma))
    assert not ok
    benchmark.extra_info["pattern_size"] = sigma[0].pattern.size()
    benchmark.extra_info["matches"] = count_matches(sigma[0].pattern, g)


@pytest.mark.parametrize("n", DEPTHS)
def test_tree_pattern_existence_easy(benchmark, n):
    """The contrast: *existence* of a match is instantaneous."""
    g = attributed_triangle()
    q = path_pattern(n)

    found = benchmark(lambda: has_match(q, g))
    assert found
    benchmark.extra_info["pattern_size"] = q.size()


def test_shape_match_count_exponential_in_tree_depth():
    """3·2ⁿ homomorphisms: the match space doubles per added edge even
    though the pattern is a tree — the paper's stated reason."""
    g = attributed_triangle()
    counts = [count_matches(path_pattern(n), g) for n in DEPTHS]
    for n, count in zip(DEPTHS, counts):
        assert count == 3 * 2 ** n
    assert counts[1] / counts[0] == 2 ** (DEPTHS[1] - DEPTHS[0])
