"""Fragment benchmarks: per-worker broadcast and fragment-local validation.

The fragmented-core claims (ISSUE 5):

* **Broadcast** — a fragment-resident worker receives only its
  fragment's snapshot.  On community-structured data (the regime the
  partitioner is built for — uniform random graphs have no cuts worth
  finding, and the records report them honestly) the **largest**
  per-worker payload at 4 greedy fragments is at most **0.5x** the
  whole-graph snapshot every :class:`~repro.engine.pool.EnginePool`
  worker replicates today.
* **Validation** — the in-process ``fragment`` backend (fragment-local
  plan execution plus cut escalation) is at least as fast as the warm
  ``engine`` backend on the committed reference workload (≥ 1.0x; its
  report is byte-identical to serial, asserted here and in
  ``tests/parallel``).
* **Routing** — streamed update batches route to owning fragments: the
  per-fragment replication log ships fewer operations than the k-way
  full replication the engine delta path pays (reported per stream).

:func:`run_fragments_bench` is the shared measurement kernel: the pytest
entry points assert the correctness halves, and the CI perf gate
(``benchmarks/perf_gate.py``) runs the same kernel against the
thresholds in ``benchmarks/baseline.json`` and writes
``BENCH_fragments.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fragments.py -q
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks._emit import measure  # noqa: E402

from repro.engine.snapshot import (  # noqa: E402
    snapshot_fragments,
    snapshot_graph,
    snapshot_size,
)
from repro.graph.fragments import (  # noqa: E402
    FragmentedGraph,
    fragment_stats,
    partition_graph,
)
from repro.indexing import detach_index  # noqa: E402
from repro.parallel import parallel_find_violations  # noqa: E402
from repro.workloads import (  # noqa: E402
    bounded_rule_set,
    churn_stream,
    clustered_workload,
    validation_workload,
)

DEFAULT_CONFIG = {
    "nodes": 400,
    "rng": 13,
    "fragments": 4,
    "clusters": 8,
    "repeats": 5,
}


def run_fragments_bench(
    nodes: int = 400,
    rng: int = 13,
    fragments: int = 4,
    clusters: int = 8,
    repeats: int = 5,
) -> dict:
    """Measure broadcast ratios, backend wall clocks, and routed-stream
    traffic; assert byte-identity of the fragment backend throughout."""
    records: list[dict] = []

    # -- broadcast: per-worker payload vs the whole-graph snapshot -----
    broadcast_ratio = None
    for workload_name, graph in (
        ("clustered", clustered_workload(nodes, n_clusters=clusters, rng=rng)),
        ("random", validation_workload(nodes, rng=rng)),
    ):
        whole_bytes = snapshot_size(snapshot_graph(graph))
        for mode in ("greedy", "hash"):
            fragmentation = partition_graph(graph, fragments, mode)
            payloads = [len(s.payload()) for s in snapshot_fragments(fragmentation)]
            stats = fragment_stats(fragmentation)
            ratio = max(payloads) / whole_bytes
            records.append(
                {
                    "kind": "broadcast",
                    "workload": workload_name,
                    "mode": mode,
                    "fragments": fragments,
                    "whole_graph_bytes": whole_bytes,
                    "max_fragment_bytes": max(payloads),
                    "total_fragment_bytes": sum(payloads),
                    "max_fragment_ratio": ratio,
                    "cut_edges": stats["cut_edges"],
                    "replicated_nodes": stats["replicated_nodes"],
                    "balance": stats["balance"],
                }
            )
            if workload_name == "clustered" and mode == "greedy":
                broadcast_ratio = ratio  # the gated number

    # -- validation: fragment backend vs the warm engine backend -------
    graph = validation_workload(nodes, rng=rng)
    detach_index(graph)
    sigma = bounded_rule_set()
    serial = parallel_find_violations(graph, sigma, workers=1, backend="serial")

    def run_backend(backend: str) -> tuple[float, object]:
        parallel_find_violations(graph, sigma, workers=fragments, backend=backend)  # warm
        return measure(
            lambda: parallel_find_violations(
                graph, sigma, workers=fragments, backend=backend
            ),
            repeats,
        )

    fragment_wall, fragment_report = run_backend("fragment")
    engine_wall, engine_report = run_backend("engine")
    from repro.engine import shutdown_pools

    shutdown_pools()
    assert fragment_report.violations == serial.violations, (
        "fragment backend diverged from serial"
    )
    assert engine_report.violations == serial.violations, (
        "engine backend diverged from serial"
    )
    for backend, wall, report in (
        ("fragment", fragment_wall, fragment_report),
        ("engine", engine_wall, engine_report),
    ):
        records.append(
            {
                "kind": "validation",
                "backend": backend,
                "workers": fragments,
                "wall_s": wall,
                "violations": len(report.violations),
                "matches": report.total_matches(),
            }
        )

    # -- routing: per-fragment slices vs k-way full replication --------
    stream = churn_stream(n_nodes=nodes, batches=10, batch_size=8, rng=rng)
    fragmented = FragmentedGraph.partition(stream.base.copy(), fragments, "greedy")
    ops_routed = 0
    ops_full = 0
    for update in stream.updates:
        routed = fragmented.apply_update(update)
        ops_routed += routed.total_operations()
        ops_full += fragments * update.size()
    records.append(
        {
            "kind": "stream-routing",
            "fragments": fragments,
            "batches": stream.num_batches,
            "ops_routed": ops_routed,
            "ops_full_replication": ops_full,
            "routed_share": ops_routed / ops_full if ops_full else 1.0,
        }
    )

    return {
        "config": {
            "nodes": nodes,
            "rng": rng,
            "fragments": fragments,
            "clusters": clusters,
            "repeats": repeats,
        },
        "records": records,
        "broadcast_ratio": broadcast_ratio,
        "fragment_wall_s": fragment_wall,
        "engine_wall_s": engine_wall,
        "fragment_vs_engine": engine_wall / fragment_wall if fragment_wall else float("inf"),
        "violations": len(serial.violations),
    }


# ----------------------------------------------------------------------
# pytest entry points (run in CI's test job with --benchmark-disable)
# ----------------------------------------------------------------------


def test_fragment_backend_byte_identity_and_broadcast_shrink():
    """The correctness half on a smaller shape: reports byte-identical
    (asserted inside the kernel) and clustered greedy broadcast strictly
    below the whole graph."""
    result = run_fragments_bench(nodes=200, clusters=4, repeats=2)
    assert result["broadcast_ratio"] < 1.0
    routing = next(r for r in result["records"] if r["kind"] == "stream-routing")
    assert routing["ops_routed"] < routing["ops_full_replication"]


def test_fragment_broadcast_meets_committed_floor(benchmark=None):
    """The performance half on the committed shape (the CI gate enforces
    both thresholds; the in-suite speedup check is skipped because a
    shared runner's engine pools time unreliably)."""
    result = run_fragments_bench(**DEFAULT_CONFIG)
    assert result["broadcast_ratio"] <= 0.5, (
        f"max per-worker broadcast {result['broadcast_ratio']:.2f}x of whole graph"
    )
    _emit(result)


def _emit(result: dict) -> None:
    from benchmarks._emit import emit_bench

    emit_bench(
        "fragments",
        result["records"],
        meta={
            "config": result["config"],
            "broadcast_ratio": result["broadcast_ratio"],
            "fragment_wall_s": result["fragment_wall_s"],
            "engine_wall_s": result["engine_wall_s"],
            "fragment_vs_engine": result["fragment_vs_engine"],
            "violations": result["violations"],
        },
    )


if __name__ == "__main__":
    import json

    outcome = run_fragments_bench(**DEFAULT_CONFIG)
    _emit(outcome)
    print(json.dumps({k: v for k, v in outcome.items() if k != "records"}, indent=2))
